"""Section III.A claim — hardware profiler accuracy (ablation).

"The use of 12 bit partial tags combined with 1-in-32 set sampling produced
error rates within 5 % of the profiling accuracy obtained using a full tag
implementation."  This bench sweeps tag width and sampling ratio against the
exact profiler.
"""

from benchmarks.common import bench_config, once
from repro.analysis import format_table, profiler_accuracy


def test_profiler_accuracy_sweep(benchmark):
    cfg = bench_config()
    rows = once(
        benchmark,
        lambda: profiler_accuracy(
            "twolf",
            cfg,
            accesses=60_000,
            tag_bits=(6, 8, 12, 16),
            samplings=(1, 4, 32),
        ),
    )
    print()
    print(
        format_table(
            ["Tag bits", "1-in-N sampling", "Mean relative error"],
            rows,
            title="Profiler accuracy vs. exact MSA profile (twolf-like)",
            float_format="{:.4f}",
        )
    )
    err = {(b, s): e for b, s, e in rows}
    assert err[(12, 32)] < 0.05  # the paper's configuration and claim
    assert err[(12, 1)] <= err[(12, 32)] + 1e-9  # sampling adds error
    assert err[(16, 32)] <= err[(6, 32)] + 1e-9  # wider tags never hurt
