"""Ablation — Bank-aware vs. dynamic Unrestricted, in the detailed simulator.

The paper compares its scheme against the Unrestricted (UCP-lookahead)
algorithm only analytically (Fig. 7).  Our simulator can also *run* the
Unrestricted scheme dynamically, materialised as contiguous private way
regions that straddle banks arbitrarily — physically unbuildable, which is
the point: it bounds what the Bank-aware restrictions can cost at runtime,
with real cache contents, stale lines across epochs and migration effects
included.
"""

from benchmarks.common import bench_config, detailed_settings, once
from repro.analysis import format_table
from repro.sim import run_mix
from repro.workloads import TABLE_III_SETS


def _run():
    cfg = bench_config(epoch_cycles=2_000_000)
    st = detailed_settings(seed=7)
    rows = []
    for idx in (1, 4):  # Sets 2 and 5 (heavy and FP-heavy)
        per = {}
        for scheme in ("bank-aware", "unrestricted"):
            r = run_mix(TABLE_III_SETS[idx], scheme, cfg, st)
            per[scheme] = r.total_misses / max(r.total_instructions, 1)
        rows.append(
            (
                f"Set{idx + 1}",
                per["unrestricted"],
                per["bank-aware"],
                per["bank-aware"] / per["unrestricted"],
            )
        )
    return rows


def test_bank_aware_tracks_unrestricted_in_simulation(benchmark):
    rows = once(benchmark, _run)
    print()
    print(
        format_table(
            ["Set", "Unrestricted MPI", "Bank-aware MPI", "ratio"],
            rows,
            title="Ablation — detailed-simulation cost of the bank restrictions",
            float_format="{:.4f}",
        )
    )
    for _set, _ur, _ba, ratio in rows:
        # the paper's analytic gap is ~3 points; allow runtime noise
        assert ratio < 1.15
