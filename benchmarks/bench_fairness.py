"""Extension — fairness / QoS comparison of the three schemes.

The paper's introduction motivates partitioning with *unfair* destructive
interference; this bench quantifies it on one heavy mix with the standard
multiprogramming metrics (per-core slowdown vs. running alone, weighted
speedup, fairness index).  Partitioned schemes should protect the victims:
higher fairness index and lower worst-case slowdown than the shared cache.
"""

from benchmarks.common import bench_config, detailed_settings, once
from repro.analysis import format_table
from repro.analysis.fairness import fairness_report, standalone_cpi
from repro.workloads import TABLE_III_SETS


def _run():
    cfg = bench_config(epoch_cycles=2_000_000)
    st = detailed_settings(seed=9)
    mix = TABLE_III_SETS[1]  # crafty+gap+mcf+art+equake x3+bzip2
    alone = {name: standalone_cpi(name, cfg, st) for name in set(mix.names)}
    reports = [
        fairness_report(mix, scheme, cfg, st, alone_cpis=alone)
        for scheme in ("no-partitions", "equal-partitions", "bank-aware")
    ]
    return mix, reports


def test_fairness_metrics(benchmark):
    mix, reports = once(benchmark, _run)
    rows = [
        (
            r.scheme,
            r.weighted_speedup,
            r.fairness_index,
            r.worst_slowdown,
        )
        for r in reports
    ]
    print()
    print(
        format_table(
            ["Scheme", "Weighted speedup", "Fairness index", "Worst slowdown"],
            rows,
            title=f"Fairness metrics on Set 2 ({mix})",
        )
    )
    by = {r.scheme: r for r in reports}
    shared = by["no-partitions"]
    for scheme in ("equal-partitions", "bank-aware"):
        assert by[scheme].worst_slowdown <= shared.worst_slowdown * 1.05
        assert by[scheme].fairness_index >= shared.fairness_index * 0.9
    assert by["bank-aware"].weighted_speedup >= shared.weighted_speedup
