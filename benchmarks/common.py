"""Shared settings for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and prints it
(run ``pytest benchmarks/ --benchmark-only -s`` to see the tables inline).

Scaling knobs (environment variables):

* ``REPRO_FULL=1``        — run the analytic experiments (profiles, Monte
  Carlo, Table III) on the full 2048-set paper machine instead of the
  1/8-scale default.
* ``REPRO_BENCH_DURATION`` — simulated cycles per detailed run
  (default 6,000,000; the EXPERIMENTS.md numbers use 12,000,000).
* ``REPRO_BENCH_MIXES``    — Monte Carlo mix count (default 300; paper 1000).
* ``REPRO_JOBS``           — worker processes for the parallel sweeps
  (default 1 = serial; results are bit-identical for every value).
"""

from __future__ import annotations

import os

from repro.config import SystemConfig, scaled_config
from repro.parallel.executor import resolve_jobs
from repro.sim.runner import RunSettings


def bench_scale() -> int:
    return 1 if os.environ.get("REPRO_FULL") else 8


def bench_config(epoch_cycles: int | None = None) -> SystemConfig:
    kwargs = {} if epoch_cycles is None else {"epoch_cycles": epoch_cycles}
    return scaled_config(bench_scale(), **kwargs)


def detailed_duration() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", 6_000_000))


def detailed_settings(seed: int = 7) -> RunSettings:
    return RunSettings(duration_cycles=detailed_duration(), seed=seed)


def monte_carlo_mixes() -> int:
    return int(os.environ.get("REPRO_BENCH_MIXES", 300))


def bench_jobs() -> int:
    """Worker count for the sweep benchmarks (``REPRO_JOBS``, default 1)."""
    return resolve_jobs(None)


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
