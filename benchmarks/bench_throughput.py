"""Simulator performance micro-benchmarks.

These are the only benches where pytest-benchmark's statistics matter —
they track the simulator's own speed (accesses/second through the NUCA,
observations/second through the profilers), guarding against performance
regressions in the hot paths.
"""

from repro.cache.nuca import NucaL2
from repro.cache.partition_map import equal_partition_map
from repro.config import scaled_config
from repro.profiling.msa import MSAProfiler
from repro.profiling.sampled import SampledMSAProfiler
from repro.workloads import generate_trace, get

CFG = scaled_config(8)
TRACE = generate_trace(get("twolf"), 20_000, CFG.l2.sets_per_bank, seed=1)
LINES = TRACE.lines.tolist()


def test_nuca_shared_dnuca_throughput(benchmark):
    def run():
        l2 = NucaL2(CFG.l2, 8, placement="dnuca")
        l2.share_all()
        for line in LINES:
            l2.access(0, line)
        return l2.stats.total_accesses()

    assert benchmark(run) == len(LINES)


def test_nuca_partitioned_throughput(benchmark):
    pmap = equal_partition_map(8, CFG.l2.num_banks, CFG.l2.bank_ways)

    def run():
        l2 = NucaL2(CFG.l2, 8, placement="dnuca")
        l2.apply_partition(pmap)
        for line in LINES:
            l2.access(0, line)
        return l2.stats.total_accesses()

    assert benchmark(run) == len(LINES)


def test_exact_profiler_throughput(benchmark):
    def run():
        prof = MSAProfiler(CFG.l2.sets_per_bank, 72)
        prof.observe_many(LINES)
        return prof.total_accesses

    assert benchmark(run) == len(LINES)


def test_sampled_profiler_throughput(benchmark):
    def run():
        prof = SampledMSAProfiler(
            CFG.l2.sets_per_bank, 72, set_sampling=4, partial_tag_bits=12
        )
        prof.observe_many(LINES)
        return prof.observed

    assert benchmark(run) > 0
