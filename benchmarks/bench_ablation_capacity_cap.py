"""Ablation — the 9/16 maximum-assignable-capacity restriction.

The cap (72 of 128 ways) shrinks the profiler hardware (Table II) but can
in principle starve a single dominant workload.  This bench quantifies the
cost on the Monte Carlo mixes: predicted misses of the Unrestricted
algorithm with and without the cap.
"""

from benchmarks.common import bench_config, once
from repro.analysis import collect_profiles, format_table
from repro.partitioning import equal_partition, predicted_misses, unrestricted_partition
from repro.workloads import random_mixes


def _run(cfg, num_mixes=150):
    curves = collect_profiles(config=cfg)
    total = cfg.l2.total_ways
    sums = {"uncapped": 0.0, "capped": 0.0, "equal": 0.0}
    for mix in random_mixes(num_mixes, cfg.num_cores, seed=42):
        cs = [curves[n] for n in mix.names]
        sums["uncapped"] += predicted_misses(cs, unrestricted_partition(cs, total))
        sums["capped"] += predicted_misses(
            cs,
            unrestricted_partition(cs, total, max_ways_per_core=cfg.max_ways_per_core),
        )
        sums["equal"] += predicted_misses(cs, equal_partition(cfg.num_cores, total))
    return sums


def test_capacity_cap_costs_little(benchmark):
    cfg = bench_config()
    sums = once(benchmark, lambda: _run(cfg))
    rows = [
        ("Unrestricted, no cap", 1.0),
        ("Unrestricted, 9/16 cap", sums["capped"] / sums["uncapped"]),
        ("Equal shares", sums["equal"] / sums["uncapped"]),
    ]
    print()
    print(
        format_table(
            ["Allocation", "Relative predicted misses"],
            rows,
            title="Ablation — cost of the 9/16 maximum-assignable-capacity cap",
            float_format="{:.4f}",
        )
    )
    # the cap must cost almost nothing (it motivates the cheap profiler)
    assert sums["capped"] / sums["uncapped"] < 1.02
    assert sums["equal"] / sums["uncapped"] > 1.02
