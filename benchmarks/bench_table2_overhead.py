"""Table II — MSA profiler hardware overhead.

The paper's exact storage arithmetic: 54 kbit of partial tags, 27 kbit of
LRU-stack pointers and 2.25 kbit of hit counters per profiler; all eight
profilers cost ~0.5 % of the L2's data capacity (the paper headlines 0.4 %).
"""

import pytest

from repro.analysis import format_table, table2_rows
from repro.config import baseline_config


def test_table2_profiler_overhead(benchmark):
    rows = benchmark(lambda: table2_rows(baseline_config()))
    print()
    print(
        format_table(
            ["Structure", "kbits / %"],
            rows,
            title="Table II — overhead of the proposed MSA profiler",
            float_format="{:.2f}",
        )
    )
    values = dict(rows)
    assert values["Partial Tags"] == pytest.approx(54.0)
    assert values["LRU Stack Distance Implem."] == pytest.approx(27.0)
    assert values["Hit Counters"] == pytest.approx(2.25)
    assert values["Total per profiler"] == pytest.approx(83.25)
    assert values["All profilers / L2 capacity"] < 1.0  # percent
