"""Table III — Bank-aware way assignments for the eight detailed mixes.

Regenerates the paper's per-core cache-way assignments: streamers receive
little, large reuse pools receive multiple Center banks, neighbours share
Local banks where profitable.
"""

from benchmarks.common import bench_config, once
from repro.analysis import format_table, table3_assignments


def test_table3_way_assignments(benchmark):
    cfg = bench_config()
    out = once(benchmark, lambda: table3_assignments(cfg))
    rows = []
    for i, (mix, decision) in enumerate(out):
        cells = ", ".join(
            f"{name}({ways})" for name, ways in zip(mix.names, decision.ways)
        )
        rows.append((f"Set{i + 1}", cells, str(decision.pairs)))
    print()
    print(
        format_table(
            ["Set", "benchmark(#ways) core0..core7", "local-bank pairs"],
            rows,
            title="Table III — Bank-aware cache-way assignments",
        )
    )
    for _mix, decision in out:
        assert decision.total_ways == cfg.l2.total_ways
        assert sum(decision.center_banks) == cfg.l2.num_banks - cfg.num_cores
        assert max(decision.ways) <= cfg.max_ways_per_core
