"""Ablation — repartitioning epoch length sensitivity.

The paper fixes the epoch at 100 M cycles.  Too-short epochs decide from
unconverged stack-distance histograms (deep pools need several traversals
to show their reuse); too-long epochs react slowly to phase changes.  This
bench sweeps the epoch length on one deep-pool-heavy mix.
"""

from benchmarks.common import bench_config, detailed_settings, once
from repro.analysis import format_table
from repro.sim import run_mix
from repro.workloads import TABLE_III_SETS

EPOCHS = (500_000, 1_500_000, 3_000_000)


def _run():
    settings = detailed_settings(seed=7)
    rows = []
    for epoch in EPOCHS:
        cfg = bench_config(epoch_cycles=epoch)
        result = run_mix(TABLE_III_SETS[4], "bank-aware", cfg, settings)
        mpi = result.total_misses / max(result.total_instructions, 1)
        rows.append((epoch, mpi, result.mean_cpi, len(result.epochs)))
    return rows


def test_epoch_length_sweep(benchmark):
    rows = once(benchmark, _run)
    print()
    print(
        format_table(
            ["Epoch (cycles)", "Misses/instr", "Mean CPI", "Repartitions"],
            rows,
            title="Ablation — epoch length sensitivity (Set 5)",
            float_format="{:.4f}",
        )
    )
    mpis = [r[1] for r in rows]
    # longer, better-informed epochs must not be dramatically worse than
    # the shortest; typically they are better (converged histograms)
    assert min(mpis[1:]) <= mpis[0] * 1.05
    assert all(r[3] >= 1 for r in rows)
