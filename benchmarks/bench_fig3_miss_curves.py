"""Fig. 3 — cumulative miss-ratio curves of sixtrack, bzip2 and applu.

The paper's three exemplars of capacity behaviour: sixtrack saturates by
~6 dedicated ways, applu by ~10 with a high streaming floor, and bzip2
improves gradually out to ~45 ways.
"""

from benchmarks.common import bench_config
from repro.analysis import FIG3_WORKLOADS, fig3_curves, format_table, miss_curve_rows

WAYS = (0, 2, 4, 6, 8, 10, 16, 24, 32, 45, 64, 96, 128)


def test_fig3_miss_ratio_curves(benchmark):
    cfg = bench_config()
    curves = benchmark(lambda: fig3_curves(config=cfg, accesses=80_000))
    print()
    print(
        format_table(
            ["workload"] + [str(w) for w in WAYS],
            miss_curve_rows(curves, WAYS),
            title="Fig. 3 — cumulative miss ratio vs. dedicated cache ways",
            float_format="{:.2f}",
        )
    )
    six, bz, ap = (curves[n] for n in FIG3_WORKLOADS)
    # paper shapes: sixtrack knee ~6 ways, applu flat after ~10 with a
    # floor, bzip2 gradual improvement to ~45 then flat
    assert six.miss_ratio_at(8) < 0.15
    assert ap.miss_ratio_at(16) - ap.miss_ratio_at(64) < 0.06
    assert ap.miss_ratio_at(64) > 0.3
    assert bz.miss_ratio_at(16) - bz.miss_ratio_at(45) > 0.2
    assert bz.miss_ratio_at(45) - bz.miss_ratio_at(128) < 0.08
