"""Fig. 2 — example MSA LRU-stack histogram.

Shows the stack-distance histogram of a temporally-local workload: hits
concentrate toward the MRU counters, with the final counter collecting the
misses — the raw material for every miss-curve projection in the paper.
"""

import numpy as np

from benchmarks.common import bench_config
from repro.analysis import fig2_histogram, format_table


def test_fig2_msa_histogram(benchmark):
    cfg = bench_config()
    hist = benchmark(
        lambda: fig2_histogram("crafty", cfg, accesses=40_000, positions=16)
    )
    total = hist.sum()
    rows = [
        (f"C{i + 1}" if i < 16 else "C_miss", int(v), v / total)
        for i, v in enumerate(hist)
    ]
    print()
    print(
        format_table(
            ["Counter", "Hits", "Fraction"],
            rows,
            title="Fig. 2 — MSA LRU-stack histogram (crafty-like workload)",
        )
    )
    mru_half, lru_half = hist[:8].sum(), hist[8:16].sum()
    assert mru_half > lru_half  # temporal reuse concentrates near MRU
    assert np.all(hist >= 0)
