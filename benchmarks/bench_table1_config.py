"""Table I — baseline DNUCA-CMP parameters.

Regenerates the paper's system-parameter table from the configuration
module (and checks the headline values while at it).
"""

from repro.analysis import format_table, table1_rows
from repro.config import baseline_config


def test_table1_parameters(benchmark):
    rows = benchmark(lambda: table1_rows(baseline_config()))
    print()
    print(format_table(["Parameter", "Value"], rows, title="Table I — Baseline DNUCA-CMP parameters"))
    values = dict(rows)
    assert "16 MB (16 x 1 MB banks)" in values["L2 Cache"]
    assert values["Memory Latency"] == "260 cycles"
    assert "64 KB" in values["L1 Data Cache"]
