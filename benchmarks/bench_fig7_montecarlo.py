"""Fig. 7 — Monte Carlo comparison of Unrestricted vs. Bank-aware.

The paper's methodology (Section IV.A): collect stand-alone MSA histograms
for all 26 workloads, draw random 8-workload mixes with repetition, run both
partitioning algorithms on the histograms, and compare their projected
misses against fixed even shares.  Paper: ~30 % average reduction for
Unrestricted, ~27 % for Bank-aware — the physical restrictions cost only a
few points.
"""

from benchmarks.common import bench_config, bench_jobs, monte_carlo_mixes, once
from repro.analysis import format_series, run_monte_carlo


def test_fig7_monte_carlo(benchmark):
    cfg = bench_config()
    mixes = monte_carlo_mixes()
    mc = once(
        benchmark,
        lambda: run_monte_carlo(mixes, cfg, seed=2009, jobs=bench_jobs()),
    )
    u, b = mc.series()
    print()
    print(f"Fig. 7 — relative miss ratio vs. even shares ({mixes} random mixes)")
    print(format_series("  Unrestricted", list(u)))
    print(format_series("  Bank-aware  ", list(b)))
    print(
        f"  mean reduction: Unrestricted {1 - mc.mean_unrestricted_ratio:.1%} "
        f"(paper ~30%), Bank-aware {1 - mc.mean_bank_aware_ratio:.1%} "
        f"(paper ~27%), restriction penalty "
        f"{mc.restriction_penalty():.3f} (paper ~0.03)"
    )
    # shape checks: both algorithms beat even shares on average, and the
    # Bank-aware points hug the Unrestricted envelope
    assert mc.mean_unrestricted_ratio < 0.95
    assert mc.mean_bank_aware_ratio < 0.97
    assert 0.0 <= mc.restriction_penalty() < 0.10
