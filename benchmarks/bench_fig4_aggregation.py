"""Fig. 4 / Section III.B — bank-aggregation scheme comparison (ablation).

The paper's qualitative argument for its depth-2 structure: Cascade matches
the ideal LRU exactly but its migration rate is prohibitive; Address-Hash
and Parallel migrate (almost) nothing at a small fidelity cost, with
Parallel paying wider directory look-ups.
"""

import pytest

from benchmarks.common import once
from repro.analysis import fig4_aggregation, format_table


def test_fig4_aggregation_schemes(benchmark):
    outcomes = once(
        benchmark,
        lambda: fig4_aggregation(
            "bzip2", num_banks=4, bank_ways=8, num_sets=128, accesses=60_000
        ),
    )
    rows = [
        (o.scheme, o.miss_rate, o.migrations_per_access, o.directory_probes_per_access)
        for o in outcomes
    ]
    print()
    print(
        format_table(
            ["Scheme", "Miss rate", "Migrations/access", "Dir probes/access"],
            rows,
            title="Fig. 4 — aggregating 4 banks into one 32-way partition",
        )
    )
    by = {o.scheme: o for o in outcomes}
    assert by["cascade"].miss_rate == pytest.approx(by["ideal"].miss_rate)
    assert by["cascade"].migrations_per_access > 0.5  # prohibitive
    assert by["hash"].migrations_per_access == pytest.approx(0.0)
    assert by["parallel"].migrations_per_access == pytest.approx(0.0)
    assert by["parallel"].directory_probes_per_access == pytest.approx(4.0)
    # fidelity loss of the realisable schemes stays modest
    assert by["hash"].miss_rate < by["ideal"].miss_rate * 1.35
    assert by["parallel"].miss_rate < by["ideal"].miss_rate * 1.35
