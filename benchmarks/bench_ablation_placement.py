"""Ablation — intra-partition data placement (DNUCA chain vs. Parallel).

The paper aggregates a partition's banks with Parallel placement; the
machine remains a DNUCA, so hot lines can instead gravitate to the
partition's nearest bank (chain placement).  This bench compares both under
the Equal-partitions scheme: misses barely move, CPI gains come from the
latency of hits landing in the Local bank.
"""

from dataclasses import replace

from benchmarks.common import bench_config, detailed_settings, once
from repro.analysis import format_table
from repro.sim import run_mix
from repro.workloads import TABLE_III_SETS


def _run():
    cfg = bench_config(epoch_cycles=2_000_000)
    settings = detailed_settings(seed=7)
    rows = []
    for placement in ("dnuca", "parallel", "hash"):
        st = replace(settings, placement=placement)
        result = run_mix(TABLE_III_SETS[1], "equal-partitions", cfg, st)
        mpi = result.total_misses / max(result.total_instructions, 1)
        rows.append((placement, mpi, result.mean_cpi, result.migrations))
    return rows


def test_partition_placement_sweep(benchmark):
    rows = once(benchmark, _run)
    print()
    print(
        format_table(
            ["Placement", "Misses/instr", "Mean CPI", "Migrations"],
            rows,
            title="Ablation — intra-partition placement (Set 2, Equal-partitions)",
            float_format="{:.4f}",
        )
    )
    by = {r[0]: r for r in rows}
    # gravity placement trades migrations for lower average hit latency
    assert by["dnuca"][3] > 0
    assert by["parallel"][3] == 0
    assert by["dnuca"][2] <= by["parallel"][2] * 1.05
    # miss rates stay in the same ballpark across placements
    assert max(r[1] for r in rows) < 1.4 * min(r[1] for r in rows)
