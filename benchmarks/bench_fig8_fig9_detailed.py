"""Figs. 8 & 9 — detailed simulation of the eight Table III mixes.

Runs every mix under the three schemes (No-partitions = migrating shared
DNUCA, Equal-partitions = private 2-bank shares, Bank-aware = dynamic
MSA-driven partitioning) on the discrete-event CMP simulator and reports
miss rate and CPI relative to No-partitions, plus the GM row.

Paper shapes being reproduced: No-partitions is worst on both metrics;
Equal removes a large share of the misses; Bank-aware beats Equal on both
(paper: 70 %/43 % reductions vs. No-partitions and 25 %/11 % vs. Equal —
our synthetic substrate reproduces the ordering with compressed magnitudes;
see EXPERIMENTS.md).

This is by far the most expensive benchmark (minutes); tune with
``REPRO_BENCH_DURATION``.
"""

from benchmarks.common import bench_config, detailed_settings, once
from repro.analysis import detailed_sets, format_table

SCHEMES = ["Set", "No-partitions", "Equal-partitions", "Bank-aware"]


def test_fig8_fig9_detailed_simulation(benchmark):
    cfg = bench_config(epoch_cycles=2_000_000)
    results = once(
        benchmark, lambda: detailed_sets(cfg, detailed_settings(seed=7))
    )
    miss_rows = results.relative_rows("miss")
    cpi_rows = results.relative_rows("cpi")
    print()
    print(
        format_table(
            SCHEMES, miss_rows,
            title="Fig. 8 — relative miss rate over the No-partitions scheme",
        )
    )
    print()
    print(
        format_table(
            SCHEMES, cpi_rows,
            title="Fig. 9 — relative CPI over the No-partitions scheme",
        )
    )
    summary = results.summary()
    print(
        "\nGM summary: misses equal {equal_relative_miss:.3f} / bank-aware "
        "{bank_aware_relative_miss:.3f} (paper ~0.40/0.30); CPI equal "
        "{equal_relative_cpi:.3f} / bank-aware {bank_aware_relative_cpi:.3f} "
        "(paper ~0.64/0.57)".format(**summary)
    )
    # who-wins ordering (geometric means)
    assert summary["bank_aware_relative_miss"] < summary["equal_relative_miss"] < 1.0
    assert summary["bank_aware_relative_cpi"] < 1.0
    assert summary["equal_relative_cpi"] < 1.0
    # meaningful effect sizes: partitioning removes a substantial share
    assert summary["bank_aware_relative_miss"] < 0.85
