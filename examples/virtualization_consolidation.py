#!/usr/bin/env python
"""Server-consolidation scenario: the paper's motivating use case.

The paper's introduction motivates partitioning with virtualisation: many
small servers consolidated onto one CMP place dissimilar demands on the
shared L2 and "destructively interfere in an unfair way".  This example
stages exactly that: four latency-sensitive service-like workloads
co-scheduled with four batch/streaming jobs, then compares the three
schemes.

Watch the per-core miss rates: under *No-partitions* the streaming jobs
wreck the services' working sets; *Equal-partitions* walls everyone off;
*Bank-aware* additionally right-sizes each wall.

Run:  python examples/virtualization_consolidation.py
"""

from repro.analysis import format_table
from repro.config import scaled_config
from repro.sim import RunSettings, compare_schemes
from repro.workloads import Mix

# cores 0-3: cache-friendly "services"; cores 4-7: streaming "batch" jobs
CONSOLIDATED = Mix(
    ("crafty", "vortex", "vpr", "gzip", "swim", "mcf", "art", "applu")
)


def main() -> None:
    cfg = scaled_config(8, epoch_cycles=2_000_000)
    settings = RunSettings(duration_cycles=8_000_000, seed=11)
    print(f"consolidating: {CONSOLIDATED}")
    print("simulating the three schemes (this takes a minute)...\n")
    comp = compare_schemes(CONSOLIDATED, cfg, settings)

    headers = ["core"] + list(comp.results)
    rows = []
    for core in range(cfg.num_cores):
        row = [f"{CONSOLIDATED.names[core]}[{core}]"]
        for scheme in comp.results:
            row.append(f"{comp.results[scheme].cores[core].miss_rate:.3f}")
        rows.append(row)
    print(format_table(headers, rows, title="Per-core L2 miss rate by scheme"))

    rows = []
    for scheme in comp.results:
        r = comp.results[scheme]
        rows.append(
            (
                scheme,
                f"{comp.relative_miss_rate(scheme):.3f}",
                f"{comp.relative_cpi(scheme):.3f}",
                r.migrations,
            )
        )
    print()
    print(
        format_table(
            ["scheme", "rel. misses/instr", "rel. CPI", "migrations"],
            rows,
            title="System-level comparison (relative to No-partitions)",
        )
    )

    services = range(4)
    shared = comp.results["no-partitions"]
    walled = comp.results["bank-aware"]
    svc_shared = sum(shared.cores[c].miss_rate for c in services) / 4
    svc_walled = sum(walled.cores[c].miss_rate for c in services) / 4
    print(
        f"\nservice-core average miss rate: {svc_shared:.3f} shared -> "
        f"{svc_walled:.3f} bank-aware "
        f"({(1 - svc_walled / max(svc_shared, 1e-12)):.0%} fewer misses)"
    )


if __name__ == "__main__":
    main()
