#!/usr/bin/env python
"""Shared-memory coherence demo on the MESI substrate.

The paper's multiprogrammed workloads never share data, but its simulated
machine (GEMS Ruby) carries a full coherence protocol.  This example
exercises our directory MESI substrate with a producer/consumer pattern and
a lock-like hot line, reporting the protocol traffic each pattern costs.

Run:  python examples/coherent_sharing.py
"""

from repro.analysis import format_table
from repro.coherence import MESISystem


def producer_consumer(sys_: MESISystem, rounds: int = 200) -> None:
    """Core 0 writes a buffer of 8 lines; cores 1-3 read it; repeat."""
    for r in range(rounds):
        for line in range(8):
            sys_.store(0, line, r * 8 + line)
        for consumer in (1, 2, 3):
            for line in range(8):
                assert sys_.load(consumer, line) == r * 8 + line


def lock_contention(sys_: MESISystem, rounds: int = 200) -> None:
    """All four cores take turns writing one hot line (a lock word)."""
    lock_line = 100
    for r in range(rounds):
        core = r % 4
        sys_.store(core, lock_line, r)
        assert sys_.load(core, lock_line) == r


def private_data(sys_: MESISystem, rounds: int = 200) -> None:
    """The paper's multiprogrammed case: disjoint lines, zero interference."""
    for r in range(rounds):
        for core in range(4):
            sys_.store(core, 1000 + core, r)
            assert sys_.load(core, 1000 + core) == r


def run(pattern) -> tuple[str, int, int, int, float]:
    sys_ = MESISystem(4)
    pattern(sys_)
    sys_.check_coherence()
    st = sys_.stats
    ops = st.loads + st.stores
    return (
        pattern.__name__,
        st.message_count,
        st.invalidations,
        st.writebacks,
        st.hits / ops if ops else 0.0,
    )


def main() -> None:
    rows = [run(p) for p in (producer_consumer, lock_contention, private_data)]
    print(
        format_table(
            ["pattern", "messages", "invalidations", "writebacks", "hit rate"],
            rows,
            title="MESI protocol traffic by sharing pattern",
            float_format="{:.3f}",
        )
    )
    print(
        "\nprivate data (the paper's multiprogrammed case) generates no"
        " invalidations once warm — coherence does not perturb the"
        " partitioning results."
    )


if __name__ == "__main__":
    main()
