#!/usr/bin/env python
"""Quickstart: profile a workload, project its miss curve, partition a CMP.

Walks the paper's pipeline end to end in under a minute:

1. generate a synthetic SPEC-like L2 reference trace;
2. feed it to the MSA stack-distance profiler (Fig. 2);
3. project the full miss-ratio curve from one profiling pass (Fig. 3);
4. run the Bank-aware partitioning algorithm on an 8-workload mix;
5. simulate the partitioned machine for a short slice and report per-core
   miss rates and CPI.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.config import scaled_config
from repro.partitioning import bank_aware_partition, decision_to_partition_map
from repro.profiling import MissCurve, MSAProfiler
from repro.sim import RunSettings, run_mix
from repro.workloads import Mix, generate_trace, get


def main() -> None:
    cfg = scaled_config(8, epoch_cycles=2_500_000)  # 2 MB scaled machine
    nsets = cfg.l2.sets_per_bank

    # -- 1+2: profile one workload with the MSA algorithm -------------------
    spec = get("bzip2")
    trace = generate_trace(spec, 60_000, nsets, seed=1)
    profiler = MSAProfiler(nsets, cfg.l2.total_ways)
    profiler.observe_many(trace.lines)
    hist = profiler.histogram
    print(f"bzip2-like trace: {len(trace):,} L2 refs, "
          f"{trace.footprint_lines():,} distinct lines")
    print(f"MSA histogram: C1={hist[0]:.0f} C2={hist[1]:.0f} ... "
          f"C_miss={hist[-1]:.0f}\n")

    # -- 3: the projected miss-ratio curve (every cache size, one pass) -----
    curve = MissCurve.from_profiler(profiler, "bzip2")
    rows = [(w, curve.miss_ratio_at(w)) for w in (1, 4, 8, 16, 32, 45, 64)]
    print(format_table(["ways", "projected miss ratio"], rows,
                       title="One profiling pass -> every cache size:"))

    # -- 4: Bank-aware partitioning of an 8-workload mix --------------------
    mix = Mix(("crafty", "gap", "mcf", "art",
               "equake", "equake", "bzip2", "equake"))  # paper Set 2
    curves = []
    for core, name in enumerate(mix.names):
        p = MSAProfiler(nsets, cfg.l2.total_ways)
        p.observe_many(generate_trace(get(name), 40_000, nsets, seed=core).lines)
        curves.append(MissCurve.from_profiler(p, name))
    decision = bank_aware_partition(
        curves,
        num_banks=cfg.l2.num_banks,
        bank_ways=cfg.l2.bank_ways,
        max_ways_per_core=cfg.max_ways_per_core,
    )
    print("\nBank-aware assignment (ways per core):")
    for name, ways, centers in zip(mix.names, decision.ways, decision.center_banks):
        print(f"  {name:<8} {ways:3d} ways  ({centers} Center banks)")
    if decision.pairs:
        print(f"  shared Local banks between adjacent cores: {decision.pairs}")
    pmap = decision_to_partition_map(decision, num_banks=cfg.l2.num_banks)
    pmap.validate(cfg.l2.num_banks, cfg.l2.bank_ways)

    # -- 5: simulate the dynamic scheme for a short slice -------------------
    settings = RunSettings(duration_cycles=9_000_000, seed=3)
    result = run_mix(mix, "bank-aware", cfg, settings)
    rows = [
        (c.workload, c.l2_accesses, f"{c.miss_rate:.3f}", f"{c.cpi:.2f}")
        for c in result.cores
    ]
    print()
    print(format_table(["core", "L2 refs", "miss rate", "CPI"], rows,
                       title="Dynamic Bank-aware run (measured slice):"))
    print(f"\nepochs executed: {len(result.epochs)}; "
          f"last allocation: {result.epochs[-1].ways if result.epochs else '-'}")
    print("(early epochs favour fast streamers until the deep-reuse curves"
          " converge — the reason the paper uses long 100M-cycle epochs)")


if __name__ == "__main__":
    main()
