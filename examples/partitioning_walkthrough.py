#!/usr/bin/env python
"""Anatomy of a Bank-aware decision (paper Figs. 5 and 6).

Builds a hand-crafted mix of miss curves whose optimal treatment exercises
every branch of the algorithm — whole Center banks, the 9/16 cap, deferred
Local-bank pairing — and prints the physical bank/way layout it produces,
like the floorplan sketch of the paper's Fig. 5.

Run:  python examples/partitioning_walkthrough.py
"""

import numpy as np

from repro.analysis import format_table
from repro.partitioning import bank_aware_partition, decision_to_partition_map
from repro.profiling import MissCurve


def knee(name: str, knee_ways: int, total: float, floor: float = 0.05) -> MissCurve:
    ways = np.arange(129, dtype=np.float64)
    frac = np.clip(ways / knee_ways, 0.0, 1.0)
    return MissCurve(name, total * (1 - frac * (1 - floor)), total)


def main() -> None:
    curves = [
        knee("monster", 100, 50_000),  # wants everything -> hits the cap
        knee("medium", 20, 8_000),     # a couple of Center banks
        knee("hungry12", 12, 5_000),   # > a Local bank: must pair
        knee("tiny", 3, 5_000),        # the natural pairing donor
        knee("modest", 8, 2_000),      # exactly one Local bank
        knee("small", 4, 1_500),
        knee("stream", 1, 9_000, floor=0.95),  # flat: a polluter
        knee("reuse16", 16, 6_000),
    ]
    decision = bank_aware_partition(curves)
    print("Bank-aware decision")
    rows = [
        (c.name, w, cb, str(decision.pair_of(i) or "-"))
        for i, (c, w, cb) in enumerate(
            zip(curves, decision.ways, decision.center_banks)
        )
    ]
    print(
        format_table(
            ["workload", "ways", "center banks", "pair"],
            rows,
        )
    )
    assert max(decision.ways) <= 72, "9/16 cap enforced"

    pmap = decision_to_partition_map(decision)
    print("\nPhysical layout (Fig. 5 style)")
    rows = []
    for core in range(8):
        part = pmap[core]
        l1 = " + ".join(
            f"bank{a.bank}[{a.num_ways}w]" for a in part.level1
        )
        l2 = (
            f" -> victim: bank{part.level2.bank}[ways {part.level2.ways}]"
            if part.level2
            else ""
        )
        rows.append((f"core{core} ({curves[core].name})", l1 + l2))
    print(format_table(["core", "level-1 banks (+ level-2 victim ways)"], rows))

    total = sum(p.total_ways for p in pmap.partitions.values())
    print(f"\ntotal ways assigned: {total}/128; "
          f"pairs: {decision.pairs}; cap: 72 ways/core")


if __name__ == "__main__":
    main()
