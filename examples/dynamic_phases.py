#!/usr/bin/env python
"""Phase-changing workloads: why partitioning must be *dynamic*.

The paper argues for runtime repartitioning (100 M-cycle epochs) rather
than static assignment.  Here one core's workload flips mid-run from a tiny
working set (gzip-like) to a deep one (bzip2-like): the epoch controller's
decisions visibly track the change, reclaiming Center banks for the core
once its profiler sees the new reuse pattern.

Run:  python examples/dynamic_phases.py
"""

from repro.analysis import format_table
from repro.config import scaled_config
from repro.sim import CMPSystem
from repro.sim.runner import CORE_ADDRESS_STRIDE, estimate_access_rate
from repro.workloads import PhasedWorkload, generate_trace, get


def main() -> None:
    cfg = scaled_config(8, epoch_cycles=1_500_000)
    duration = 12_000_000
    nsets = cfg.l2.sets_per_bank

    # core 0 changes personality halfway; others run steady donors/streamers
    steady_names = ["eon", "galgel", "gap", "perlbmk", "swim", "crafty", "gzip"]
    phase_a, phase_b = get("gzip"), get("bzip2")
    rate_a = estimate_access_rate(phase_a, cfg)
    rate_b = estimate_access_rate(phase_b, cfg)
    phased = PhasedWorkload(
        [
            (phase_a, int(duration / 2 * rate_a * 1.7)),
            (phase_b, int(duration / 2 * rate_b * 1.7) + 50_000),
        ]
    )
    traces = [phased.generate(nsets, seed=1)]
    specs = [phase_b]  # timing parameters of the heavier phase
    for i, name in enumerate(steady_names):
        spec = get(name)
        specs.append(spec)
        traces.append(
            generate_trace(
                spec,
                int(duration * estimate_access_rate(spec, cfg) * 1.7) + 1,
                nsets,
                seed=2 + i,
                base_address=(i + 1) * CORE_ADDRESS_STRIDE,
            )
        )

    system = CMPSystem(cfg, specs, traces, scheme="bank-aware")
    system.set_measurement_window(0, duration)
    result = system.run()

    rows = [
        (f"{rec.time / 1e6:.1f}M", rec.ways[0], str(rec.ways), str(rec.pairs))
        for rec in result.epochs
    ]
    print(
        format_table(
            ["epoch end", "core0 ways", "all ways", "pairs"],
            rows,
            title="Controller decisions while core 0 flips gzip -> bzip2",
        )
    )
    first = result.epochs[0].ways[0]
    last = result.epochs[-1].ways[0]
    print(
        f"\ncore 0 allocation: {first} ways while tiny -> {last} ways after "
        f"the deep phase is recognised"
    )
    assert last > first, "the controller should grow core 0's share"


if __name__ == "__main__":
    main()
