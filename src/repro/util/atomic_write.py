"""Durable atomic file writes (temp + fsync file + replace + fsync dir).

Every "write a snapshot you may need after a crash" path in this repository
— sweep checkpoints, Monte Carlo result files, profile-cache entries, trace
files — must follow the same four-step discipline:

1. write the payload to a temp file **in the same directory** as the target
   (``os.replace`` is only atomic within one filesystem);
2. ``fsync`` the temp file, so its *contents* are on stable storage before
   the rename makes them reachable;
3. ``os.replace`` over the target, so readers observe either the old file
   or the new one, never a torn hybrid;
4. ``fsync`` the containing **directory**, so the rename itself survives a
   power cut — without this a crash right after "success" can roll the
   directory entry back to the old file, or to nothing at all.

Step 4 is the one ad-hoc implementations forget; centralising the dance
here makes the durability gap impossible to reintroduce one call site at a
time.  On platforms where directories cannot be opened or fsynced (Windows,
some network filesystems) the directory sync degrades to a no-op — the
write is still atomic, merely not power-cut-durable, which matches the
guarantees those platforms can offer at all.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from pathlib import Path


def fsync_directory(directory: str | Path) -> None:
    """Flush a directory's entry table to stable storage (best effort).

    A no-op on platforms that cannot open directories; any other ``OSError``
    (e.g. a filesystem that rejects ``fsync`` on directory handles) is also
    swallowed, because the rename already happened and raising here would
    turn a durability *upgrade* into a spurious failure.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir handles
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def replace_and_sync(tmp: str | Path, target: str | Path) -> None:
    """Atomically promote a fully-written, fsynced temp file to ``target``
    and make the rename durable (steps 3 + 4 of the module discipline)."""
    os.replace(tmp, target)
    fsync_directory(os.path.dirname(os.path.abspath(os.fspath(target))))


def atomic_write_text(
    path: str | Path, text: str, *, encoding: str = "utf-8"
) -> None:
    """Durably replace ``path`` with ``text`` (the full four-step dance)."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (the full four-step dance)."""

    def writer(tmp: str) -> None:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    atomic_write(path, writer)


def atomic_write(
    path: str | Path, write_tmp: Callable[[str], None], *, suffix: str = ""
) -> None:
    """Durably replace ``path`` with whatever ``write_tmp`` produces.

    ``write_tmp`` receives a temp path in the target's directory and must
    leave a complete, **fsynced** file there (writers that go through
    :func:`atomic_write_text`/``_bytes`` get that for free; custom writers
    such as ``np.savez`` should fsync before returning when they can, or
    accept contents-durability on the filesystem's schedule).  The temp
    file is promoted with :func:`replace_and_sync` and removed on any
    failure, so aborted writes never litter the directory.

    ``suffix`` is appended to the temp name for writers that key behaviour
    on the extension (``np.savez`` appends ``.npz`` to anything else).
    """
    target = os.path.abspath(os.fspath(path))
    directory = os.path.dirname(target)
    tmp = os.path.join(directory, f".{os.path.basename(target)}.tmp{suffix}")
    try:
        write_tmp(tmp)
        replace_and_sync(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
