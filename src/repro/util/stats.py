"""Small statistics helpers used by the analysis layer."""

from __future__ import annotations

import math
from collections.abc import Iterable


def safe_div(num: float, den: float, default: float = 0.0) -> float:
    """``num / den`` with a fallback when the denominator is zero."""
    return num / den if den else default


def relative(value: float, baseline: float) -> float:
    """``value / baseline``; 1.0 when the baseline is zero (no change)."""
    return value / baseline if baseline else 1.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used by the paper for the 'GM' bar in Figs. 8/9."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
