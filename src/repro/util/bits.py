"""Bit-manipulation helpers used by caches and profilers.

This module is a dependency leaf: it owns the line-size primitive so that
higher layers (``repro.config`` re-exports :data:`LINE_SIZE`) can depend on
it without creating import cycles.
"""

from __future__ import annotations

LINE_SIZE = 64  #: cache line size in bytes used throughout the paper.

LINE_SHIFT = LINE_SIZE.bit_length() - 1


def is_pow2(x: int) -> bool:
    """True for positive powers of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Integer log2 of a power of two; raises for anything else."""
    if not is_pow2(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def line_address(byte_address: int) -> int:
    """Cache-line number of a byte address (64 B lines)."""
    return byte_address >> LINE_SHIFT


def hash_fold(value: int, bits: int) -> int:
    """Fold a line address into ``bits`` bits by XOR-ing 16-bit chunks.

    This models the partial-tag hash of the hardware MSA profiler: distinct
    lines can alias once folded, which is exactly the error source the paper
    quantifies for its 12-bit partial tags.
    """
    if bits <= 0:
        raise ValueError("need a positive tag width")
    mask = (1 << bits) - 1
    folded = 0
    v = value
    while v:
        folded ^= v & 0xFFFF
        v >>= 16
    # final squeeze from 16 bits down to the requested width
    out = 0
    while folded:
        out ^= folded & mask
        folded >>= bits
    return out & mask
