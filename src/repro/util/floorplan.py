"""Floorplan geometry shared by the NoC, the NUCA and the allocators.

The paper's Fig. 1 die: cores 0..N-1 in a row (core *i* at x = *i*), each
with its Local bank beside it; Center banks clustered around the middle of
the die, one row away.  This leaf module holds the pure geometry so that the
cache layer (DNUCA migration), the NoC (latencies) and the partition
allocator (proximity placement) all agree on it without import cycles.
"""

from __future__ import annotations


def center_bank_positions(num_cores: int, num_centers: int) -> list[float]:
    """Horizontal positions of the Center banks: spread over the middle half
    of the die (between 25 % and 75 % of the core row)."""
    if num_centers < 1:
        return []
    span = num_cores - 1
    if num_centers == 1:
        return [span / 2]
    lo, hi = span * 0.25, span * 0.75
    step = (hi - lo) / (num_centers - 1)
    return [lo + i * step for i in range(num_centers)]


def bank_positions(num_cores: int, num_banks: int) -> list[float]:
    """Horizontal position of every bank (Locals first, then Centers)."""
    centers = center_bank_positions(num_cores, num_banks - num_cores)
    return [float(b) for b in range(num_cores)] + centers


def bank_distance(core: int, bank: int, num_cores: int, num_banks: int,
                  center_row_hops: float = 1.0) -> float:
    """Hop distance from a core to a bank (Center banks are one row away)."""
    pos = bank_positions(num_cores, num_banks)[bank]
    extra = center_row_hops if bank >= num_cores else 0.0
    return abs(core - pos) + extra


def distance_ordered_banks(
    core: int, num_cores: int, num_banks: int, center_row_hops: float = 1.0
) -> list[int]:
    """All banks sorted nearest-first for ``core`` (ties: Local banks first,
    then lower bank id).  Position 0 is always the core's own Local bank."""
    positions = bank_positions(num_cores, num_banks)

    def key(bank: int) -> tuple[float, int, int]:
        extra = center_row_hops if bank >= num_cores else 0.0
        return (abs(core - positions[bank]) + extra, bank >= num_cores, bank)

    order = sorted(range(num_banks), key=key)
    assert order[0] == core, "nearest bank must be the core's Local bank"
    return order
