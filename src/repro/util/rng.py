"""Deterministic random-stream construction.

Every stochastic component (workload generators, Monte Carlo mix sampling,
Parallel-aggregation placement) derives an independent, reproducible stream
from a root seed plus a string key, so experiments are replayable and
individual components can be re-seeded without correlation.
"""

from __future__ import annotations

import zlib

import numpy as np


def rng_stream(seed: int, *keys: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` keyed by ``seed`` and ``keys``.

    The same (seed, keys) pair always yields the same stream; different key
    tuples yield statistically independent streams.
    """
    material = repr(keys).encode()
    salt = zlib.crc32(material)
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, salt]))
