"""Shared helpers: deterministic RNG streams, bit ops, small statistics,
durable atomic file writes."""

from repro.util.atomic_write import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
    replace_and_sync,
)
from repro.util.bits import hash_fold, ilog2, is_pow2, line_address
from repro.util.rng import rng_stream
from repro.util.stats import geometric_mean, relative, safe_div

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "geometric_mean",
    "hash_fold",
    "ilog2",
    "is_pow2",
    "line_address",
    "relative",
    "replace_and_sync",
    "rng_stream",
    "safe_div",
]
