"""Shared helpers: deterministic RNG streams, bit ops, small statistics."""

from repro.util.bits import hash_fold, ilog2, is_pow2, line_address
from repro.util.rng import rng_stream
from repro.util.stats import geometric_mean, relative, safe_div

__all__ = [
    "geometric_mean",
    "hash_fold",
    "ilog2",
    "is_pow2",
    "line_address",
    "relative",
    "rng_stream",
    "safe_div",
]
