"""Analytic out-of-order core timing model.

The paper simulates 4 GHz, 4-wide, 128-entry-ROB cores in GEMS; its results
are reported as CPI.  We replace the microarchitectural pipeline with the
standard analytic decomposition used in memory-system studies:

    ``cycles = instructions x nonmem_cpi  +  sum(effective memory latency)``

where the effective latency of an L2/memory access is the uncontended+queued
round trip divided by the workload's exploitable memory-level parallelism
(bounded by the machine's 16 outstanding requests per core).  Per-workload
``nonmem_cpi`` absorbs issue width, ILP and L1 behaviour; per-workload
``mlp`` absorbs ROB-driven overlap.  This reproduces how miss-rate changes
translate into CPI changes — the paper's Fig. 9 relationship — without
simulating the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CoreConfig

from repro.errors import ConfigError


@dataclass
class CoreSnapshot:
    """Point-in-time counters for measurement windows."""

    time: float
    instructions: int
    mem_stall: float
    accesses: int


class CoreTimer:
    """Per-core simulated clock driven by trace gaps and memory latencies."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig | None = None,
        *,
        nonmem_cpi: float = 0.5,
        mlp: float = 2.0,
    ) -> None:
        self.core_id = core_id
        self.config = config or CoreConfig()
        self.config.validate()
        if nonmem_cpi <= 0:
            raise ConfigError("non-memory CPI must be positive")
        self.nonmem_cpi = nonmem_cpi
        #: overlap factor: effective MLP cannot exceed the MSHR budget.
        self.mlp = min(max(mlp, 1.0), float(self.config.max_outstanding))
        self.time = 0.0
        self.instructions = 0
        self.mem_stall = 0.0
        self.accesses = 0

    def advance_compute(self, gap: int) -> float:
        """Retire ``gap`` non-memory instructions plus the memory op itself;
        returns the access's arrival time at the L2."""
        self.instructions += gap + 1
        self.time += gap * self.nonmem_cpi
        return self.time

    def complete_access(self, latency: float) -> None:
        """Account a finished L2/memory access of ``latency`` cycles,
        overlapped across the workload's MLP."""
        if latency < 0:
            raise ConfigError("latency must be non-negative")
        effective = latency / self.mlp
        self.time += effective
        self.mem_stall += effective
        self.accesses += 1

    @property
    def cpi(self) -> float:
        return self.time / self.instructions if self.instructions else 0.0

    def snapshot(self) -> CoreSnapshot:
        return CoreSnapshot(self.time, self.instructions, self.mem_stall, self.accesses)

    def delta_cpi(self, since: CoreSnapshot) -> float:
        instrs = self.instructions - since.instructions
        return (self.time - since.time) / instrs if instrs else 0.0
