"""Analytic core timing models."""

from repro.cpu.core import CoreSnapshot, CoreTimer

__all__ = ["CoreSnapshot", "CoreTimer"]
