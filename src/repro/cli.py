"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's pipeline without writing Python:

* ``profile``    — MSA-profile one workload, print its miss-ratio curve.
* ``partition``  — run the Bank-aware (or Unrestricted) assignment on a mix.
* ``simulate``   — detailed simulation of a mix under one scheme.
* ``compare``    — all three schemes on one mix, relative metrics.
* ``suite``      — list the 26 SPEC-like workload models.
* ``machine``    — print the (scaled) Table I machine description.

Examples::

    python -m repro profile bzip2 --ways 8,16,32,45
    python -m repro partition crafty gap mcf art equake equake bzip2 equake
    python -m repro compare --set 2 --duration 4000000
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis import (
    collect_profiles,
    format_table,
    table1_rows,
)
from repro.config import SystemConfig, scaled_config
from repro.partitioning import (
    bank_aware_partition,
    predicted_misses,
    unrestricted_partition,
)
from repro.profiling import load_curves, save_curves
from repro.sim import RunSettings, compare_schemes, run_mix
from repro.workloads import ALL_NAMES, TABLE_III_SETS, Mix, get, suite


def _machine(args: argparse.Namespace) -> SystemConfig:
    return scaled_config(args.scale, epoch_cycles=args.epoch)


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=int, default=8,
        help="linear machine scale-down factor (1 = the full paper machine)",
    )
    p.add_argument(
        "--epoch", type=int, default=2_000_000,
        help="repartitioning epoch in cycles",
    )


def _resolve_mix(args: argparse.Namespace) -> Mix:
    if getattr(args, "set", None) is not None:
        if not 1 <= args.set <= len(TABLE_III_SETS):
            raise SystemExit(f"--set must be 1..{len(TABLE_III_SETS)}")
        return TABLE_III_SETS[args.set - 1]
    names = list(args.workloads)
    if not names:
        raise SystemExit("give 8 workload names or --set N")
    unknown = [n for n in names if n not in ALL_NAMES]
    if unknown:
        raise SystemExit(f"unknown workloads {unknown}; see 'repro suite'")
    return Mix(tuple(names))


def cmd_suite(_args: argparse.Namespace) -> int:
    rows = []
    for name, spec in suite().items():
        pools = " + ".join(
            f"{p.ways}w@{p.weight:g}" + (f"/z{p.zipf:g}" if p.zipf else "")
            for p in spec.pools
        )
        rows.append(
            (name, pools, f"{spec.stream_weight:g}", f"{spec.l2_apki:g}",
             f"{spec.mlp:g}")
        )
    print(
        format_table(
            ["workload", "reuse pools", "stream", "L2 APKI", "MLP"],
            rows,
            title="The 26 SPEC CPU2000-like workload models",
        )
    )
    return 0


def cmd_machine(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    print(format_table(["Parameter", "Value"], table1_rows(cfg),
                       title=f"Machine (scale 1/{args.scale})"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    for name in args.workloads:
        get(name)  # validate early
    curves = collect_profiles(tuple(args.workloads), cfg,
                              accesses=args.accesses, seed=args.seed)
    if args.save:
        save_curves(args.save, curves)
        print(f"saved {len(curves)} curves to {args.save}")
    ways = [int(w) for w in args.ways.split(",")]
    rows = [
        [name] + [f"{curve.miss_ratio_at(w):.3f}" for w in ways]
        for name, curve in curves.items()
    ]
    print(format_table(["workload"] + [str(w) for w in ways], rows,
                       title="Projected miss ratio by dedicated ways (MSA)"))
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    mix = _resolve_mix(args)
    if len(mix) != cfg.num_cores:
        raise SystemExit(f"need {cfg.num_cores} workloads, got {len(mix)}")
    if args.curves:
        curves_by_name = load_curves(args.curves)
        missing = set(mix.names) - set(curves_by_name)
        if missing:
            raise SystemExit(f"curve file lacks {sorted(missing)}")
    else:
        curves_by_name = collect_profiles(tuple(set(mix.names)), cfg,
                                          accesses=args.accesses, seed=args.seed)
    curves = [curves_by_name[n] for n in mix.names]
    decision = bank_aware_partition(
        curves,
        num_banks=cfg.l2.num_banks,
        bank_ways=cfg.l2.bank_ways,
        max_ways_per_core=cfg.max_ways_per_core,
    )
    rows = [
        (f"core{i}", name, decision.ways[i], decision.center_banks[i],
         str(decision.pair_of(i) or "-"))
        for i, name in enumerate(mix.names)
    ]
    print(format_table(
        ["core", "workload", "ways", "center banks", "pair"], rows,
        title="Bank-aware assignment",
    ))
    if args.unrestricted:
        ur = unrestricted_partition(curves, cfg.l2.total_ways)
        print(f"\nUnrestricted (UCP) assignment: {ur}")
        print(
            "predicted misses: bank-aware "
            f"{predicted_misses(curves, list(decision.ways)):,.0f} vs "
            f"unrestricted {predicted_misses(curves, ur):,.0f}"
        )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    mix = _resolve_mix(args)
    settings = RunSettings(duration_cycles=args.duration, seed=args.seed)
    result = run_mix(mix, args.scheme, cfg, settings)
    rows = [
        (c.core, c.workload, c.l2_accesses, f"{c.miss_rate:.3f}",
         f"{c.mpki:.2f}", f"{c.cpi:.3f}")
        for c in result.cores
    ]
    print(format_table(
        ["core", "workload", "L2 refs", "miss rate", "MPKI", "CPI"], rows,
        title=f"{args.scheme} on {mix}",
    ))
    print(f"\noverall miss rate {result.miss_rate:.3f}; "
          f"migrations {result.migrations:,}; epochs {len(result.epochs)}")
    if result.epochs:
        print(f"last allocation: {result.epochs[-1].ways}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    mix = _resolve_mix(args)
    settings = RunSettings(duration_cycles=args.duration, seed=args.seed)
    comp = compare_schemes(mix, cfg, settings)
    rows = []
    for scheme in comp.results:
        rows.append(
            (scheme, f"{comp.relative_miss_rate(scheme):.3f}",
             f"{comp.relative_cpi(scheme):.3f}",
             comp.results[scheme].migrations)
        )
    print(format_table(
        ["scheme", "rel. misses/instr", "rel. CPI", "migrations"], rows,
        title=f"Scheme comparison on {mix}",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bank-aware dynamic cache partitioning (ICPP 2009) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("suite", help="list the workload models")
    p.set_defaults(fn=cmd_suite)

    p = sub.add_parser("machine", help="print the machine description")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_machine)

    p = sub.add_parser("profile", help="MSA-profile workloads")
    p.add_argument("workloads", nargs="+", choices=sorted(ALL_NAMES))
    p.add_argument("--ways", default="2,4,8,16,32,45,64")
    p.add_argument("--accesses", type=int, default=80_000)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--save", help="save the curves to an .npz for reuse")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("partition", help="run the Bank-aware assignment")
    p.add_argument("workloads", nargs="*", default=[],
                   metavar="WORKLOAD", help="8 workload names (see 'suite')")
    p.add_argument("--set", type=int, help="use paper Table III set N (1-8)")
    p.add_argument("--accesses", type=int, default=80_000)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--curves", help="load cached curves (.npz from 'profile --save')")
    p.add_argument("--unrestricted", action="store_true",
                   help="also show the Unrestricted (UCP) assignment")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_partition)

    for name, fn in (("simulate", cmd_simulate), ("compare", cmd_compare)):
        p = sub.add_parser(name, help=f"{name} a mix on the DES simulator")
        p.add_argument("workloads", nargs="*", default=[],
                       metavar="WORKLOAD", help="8 workload names (see 'suite')")
        p.add_argument("--set", type=int, help="use paper Table III set N (1-8)")
        if name == "simulate":
            p.add_argument(
                "--scheme",
                default="bank-aware",
                choices=("no-partitions", "equal-partitions", "bank-aware"),
            )
        p.add_argument("--duration", type=float, default=4_000_000)
        p.add_argument("--seed", type=int, default=7)
        _add_machine_args(p)
        p.set_defaults(fn=fn)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
