"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's pipeline without writing Python:

* ``profile``    — MSA-profile one workload, print its miss-ratio curve.
* ``partition``  — run the Bank-aware (or Unrestricted) assignment on a mix.
* ``simulate``   — detailed simulation of a mix under any registered
  partitioning policy (``--scheme``; see :mod:`repro.partitioning.registry`).
* ``compare``    — several schemes on one mix (the paper's three by
  default, any registered policies via ``--scheme``), relative metrics.
* ``montecarlo`` — analytic sweep over random mixes, checkpoint/resumable;
  ``--backend inproc|pool|local-cluster`` runs it under the fault-tolerant
  fabric (supervised retries, deadlines, dead-letter quarantine).
* ``chaos``      — fault-injection harness: chaos sweep + driver kill +
  resume must equal a clean serial run (``repro diff`` gate).
* ``bench``      — perf-tracking benchmark suite (writes BENCH_sweep.json),
  regression-gated against a stored baseline with ``--baseline/--gate-pct``.
* ``report``     — digest a telemetry trace (JSONL from ``--trace``);
  ``--spans`` prints the span profiler's self-time attribution.
* ``stats``      — aggregate the per-epoch time series of a stored run
  or trace (min/max/mean/p50/p95 per column; text, JSON or CSV).
* ``runs``       — query the run store populated by ``--store`` runs
  (``list``/``show`` with ``--json``, ``query`` with provenance filters).
* ``diff``       — first-divergence comparison of two traces/stored runs.
* ``watch``      — live-monitor a growing trace (progress, ETA, guards;
  ``--metrics`` adds the latest epoch's time-series row).
* ``suite``      — list the 26 SPEC-like workload models.
* ``machine``    — print the (scaled) Table I machine description.
* ``lint``       — run the repository's domain-aware static analysis.

Examples::

    python -m repro profile bzip2 --ways 8,16,32,45
    python -m repro partition crafty gap mcf art equake equake bzip2 equake
    python -m repro compare --set 2 --duration 4000000 --jobs 3
    python -m repro compare --set 2 --scheme bank-bw --scheme joint
    python -m repro compare --set 2 --inject-faults '0:zero@1,3:corrupt@2'
    python -m repro simulate --set 1 --sanitize --trace trace.jsonl --store
    python -m repro montecarlo --mixes 1000 --jobs 4 --checkpoint mc.json
    python -m repro montecarlo --mixes 200 --rank-policies
    python -m repro montecarlo --mixes 200 --backend pool --jobs 4 --timeout 60
    python -m repro chaos --mixes 12 --kill 1 --crash 2 --truncate-checkpoint
    python -m repro simulate --set 1 --trace trace.jsonl --spans
    python -m repro report trace.jsonl --check --chrome trace.chrome.json
    python -m repro report trace.jsonl --spans
    python -m repro stats trace.jsonl --select core_miss_rate --format csv
    python -m repro runs list
    python -m repro runs query --scheme bank-aware --since 2026-08
    python -m repro diff serial.jsonl parallel.jsonl
    python -m repro watch trace.jsonl --interval 2 --metrics
    python -m repro bench --quick --baseline BENCH_sweep.json --gate-pct 10
    python -m repro bench --attribute BENCH_old.json BENCH_sweep.json
    python -m repro lint src benchmarks examples --format json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis import (
    collect_profiles,
    format_table,
    run_monte_carlo,
    table1_rows,
)
from repro.config import SystemConfig, scaled_config
from repro.fabric import (
    DEFAULT_SHARD_SIZE,
    ChaosAbort,
    ChaosPlan,
    DeadLetterLedger,
    SupervisorPolicy,
    pick_labels,
    run_fabric_monte_carlo,
    truncate_file,
)
from repro.lint import (
    LintConfig,
    LintResult,
    lint_paths,
    load_config,
    render_json,
    render_rules,
    render_sarif,
    render_text,
)
from repro.lint.engine import iter_python_files
from repro.lint.xmod import analyze_files
from repro.lint.xmod.baseline import (
    apply_baseline,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.xmod.cache import (
    DEFAULT_CACHE_PATH,
    load_cached,
    store as store_cache,
    tree_key,
)
from repro.lint.xmod.engine import XMOD_ANALYZER_VERSION
from repro.obs import (
    DEFAULT_GATE_PCT,
    DEFAULT_STORE,
    RunStore,
    append_history,
    attribute_delta,
    diff_traces,
    gate_report,
    headline_from_comparison,
    headline_from_montecarlo,
    headline_from_result,
    load_report,
    query_runs,
    render_attribution_text,
    render_diff_json,
    render_diff_text,
    render_gate_text,
    render_runs_query_text,
    render_stats_csv,
    render_stats_json,
    render_stats_text,
    resolve_series,
    runs_query_rows,
    series_stats,
    watch_trace,
)
from repro.parallel import ProfileCache
from repro.partitioning import (
    analytic_policies,
    bank_aware_partition,
    policy_help,
    predicted_misses,
    registered_policies,
    unrestricted_partition,
)
from repro.profiling import MissCurve, load_curves, save_curves
from repro.resilience import (
    DecisionGuard,
    FaultPlan,
    ProfilerFault,
    ReproError,
)
from repro.sim import (
    DETAILED_SCHEMES,
    SIM_BACKENDS,
    RunSettings,
    compare_schemes,
    run_mix,
)
from repro.telemetry import (
    Tracer,
    check_trace,
    read_jsonl,
    render_spans_text,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry import render_json as render_trace_json
from repro.telemetry import render_text as render_trace_text
from repro.workloads import ALL_NAMES, TABLE_III_SETS, Mix, get, suite


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _machine(args: argparse.Namespace) -> SystemConfig:
    return scaled_config(args.scale, epoch_cycles=args.epoch)


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=_positive_int, default=8,
        help="linear machine scale-down factor (1 = the full paper machine)",
    )
    p.add_argument(
        "--epoch", type=_positive_int, default=2_000_000,
        help="repartitioning epoch in cycles",
    )


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--inject-faults", metavar="SPEC",
        help="seeded profiler fault plan, e.g. '0:zero@1,3:corrupt@2-5' "
             "(CORE:KIND[@START[-END]], kinds: zero/freeze/corrupt/"
             "degenerate/drop-epoch, '*' = any core for drop-epoch)",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plan's corruption RNG",
    )


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    if not getattr(args, "inject_faults", None):
        return None
    return FaultPlan.parse(args.inject_faults, seed=args.fault_seed)


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent work items (default: "
             "$REPRO_JOBS or 1 = serial; 0 = one per CPU); results are "
             "bit-identical for every value",
    )


def _profile_cache(args: argparse.Namespace) -> ProfileCache | None:
    value = getattr(args, "profile_cache", None)
    if value is None:
        return None
    return ProfileCache(value or None)


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="PATH",
        help="record a telemetry event stream (epoch decisions, guard "
             "actions, bank snapshots) to this JSONL file; inspect it "
             "with 'repro report PATH'",
    )


def _add_spans_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--spans", action="store_true",
        help="profile the run with hierarchical wall-clock spans (epoch "
             "phases: profiler observe/flush, policy decide, guard, "
             "install, queue drain); requires --trace, inspect with "
             "'repro report PATH --spans'",
    )


def _spans_flag(args: argparse.Namespace) -> bool:
    spans = bool(getattr(args, "spans", False))
    if spans and not args.trace:
        raise SystemExit("--spans requires --trace PATH (spans flush "
                         "into the event stream)")
    return spans


def _add_store_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--store", nargs="?", const=DEFAULT_STORE, metavar="DIR",
        help="archive this run (manifest with config fingerprint, git rev, "
             f"headline results, trace) under DIR (default {DEFAULT_STORE}); "
             "query with 'repro runs list|show'",
    )


def _store_run(args: argparse.Namespace, **archive_kwargs) -> None:
    """Archive one finished run when ``--store`` was given."""
    if not getattr(args, "store", None):
        return
    record = RunStore(args.store).archive(**archive_kwargs)
    print(f"stored run: {record.run_id} ({record.path})")


def _add_sanitize_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--sanitize", action="store_true",
        help="deep runtime invariant checking (LRU-stack uniqueness, way "
             "conservation, MSA mass, Rules 1-3 post-aggregation); "
             "violations abort the run with a SanitizerViolation",
    )


def _resolve_mix(args: argparse.Namespace, num_cores: int) -> Mix:
    if getattr(args, "set", None) is not None:
        if not 1 <= args.set <= len(TABLE_III_SETS):
            raise SystemExit(f"--set must be 1..{len(TABLE_III_SETS)}")
        return TABLE_III_SETS[args.set - 1]
    names = list(args.workloads)
    if not names:
        raise SystemExit(f"give {num_cores} workload names or --set N")
    unknown = [n for n in names if n not in ALL_NAMES]
    if unknown:
        raise SystemExit(f"unknown workloads {unknown}; see 'repro suite'")
    if len(names) != num_cores:
        raise SystemExit(f"need {num_cores} workloads, got {len(names)}")
    return Mix(tuple(names))


def _print_guard_events(events) -> None:
    if events:
        print(f"\nguard log ({len(events)} events):")
        for time, kind, detail, mode in events:
            print(f"  [{time:>12,.0f}] {kind:<8} ({mode}) {detail}")


def cmd_suite(_args: argparse.Namespace) -> int:
    rows = []
    for name, spec in suite().items():
        pools = " + ".join(
            f"{p.ways}w@{p.weight:g}" + (f"/z{p.zipf:g}" if p.zipf else "")
            for p in spec.pools
        )
        rows.append(
            (name, pools, f"{spec.stream_weight:g}", f"{spec.l2_apki:g}",
             f"{spec.mlp:g}")
        )
    print(
        format_table(
            ["workload", "reuse pools", "stream", "L2 APKI", "MLP"],
            rows,
            title="The 26 SPEC CPU2000-like workload models",
        )
    )
    return 0


def cmd_machine(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    print(format_table(["Parameter", "Value"], table1_rows(cfg),
                       title=f"Machine (scale 1/{args.scale})"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    for name in args.workloads:
        get(name)  # validate early
    curves = collect_profiles(tuple(args.workloads), cfg,
                              accesses=args.accesses, seed=args.seed)
    if args.save:
        save_curves(args.save, curves)
        print(f"saved {len(curves)} curves to {args.save}")
    ways = [int(w) for w in args.ways.split(",")]
    rows = [
        [name] + [f"{curve.miss_ratio_at(w):.3f}" for w in ways]
        for name, curve in curves.items()
    ]
    print(format_table(["workload"] + [str(w) for w in ways], rows,
                       title="Projected miss ratio by dedicated ways (MSA)"))
    return 0


def _curve_histogram(curve: MissCurve):
    """Invert a miss curve back to its MSA histogram (hit bins + miss bin),
    so the fault injector can corrupt analytic curves the same way it
    corrupts live profiler reads."""
    import numpy as np

    hits = -np.diff(curve.misses)
    return np.concatenate((hits, [curve.misses[-1]]))


def _guarded_curves(
    curves: list[MissCurve], plan: FaultPlan, cfg: SystemConfig
) -> tuple[list[MissCurve] | None, DecisionGuard]:
    """Run the analytic curves through the fault injector + decision guard.

    Returns ``(checked_curves, guard)``; the curves are ``None`` when any
    profiler was flagged unhealthy (the caller falls back to equal shares,
    exactly as the epoch controller's ladder would).
    """
    injector = plan.injector()
    guard = DecisionGuard(
        cfg.num_cores,
        num_banks=cfg.l2.num_banks,
        bank_ways=cfg.l2.bank_ways,
        max_ways_per_core=cfg.max_ways_per_core,
        min_ways=cfg.resilience.min_ways,
        hysteresis=cfg.resilience.hysteresis_epochs,
        degrade_after=cfg.resilience.degrade_after,
    )
    checked: list[MissCurve] = []
    for core, curve in enumerate(curves):
        hist = injector.filter_histogram(core, _curve_histogram(curve), 0)
        try:
            checked.append(
                guard.checked_curve(curve.name, core, hist, min_observations=1.0)
            )
        except ProfilerFault as fault:
            guard.note_failure(0.0, fault)
            return None, guard
    return checked, guard


def cmd_partition(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    mix = _resolve_mix(args, cfg.num_cores)
    if args.curves:
        curves_by_name = load_curves(args.curves)
        missing = set(mix.names) - set(curves_by_name)
        if missing:
            raise SystemExit(f"curve file lacks {sorted(missing)}")
    else:
        curves_by_name = collect_profiles(tuple(set(mix.names)), cfg,
                                          accesses=args.accesses, seed=args.seed)
    curves = [curves_by_name[n] for n in mix.names]
    plan = _fault_plan(args)
    if plan is not None:
        checked, guard = _guarded_curves(curves, plan, cfg)
        if checked is None:
            events = [(e.time, e.kind, e.detail, e.mode) for e in guard.events]
            _print_guard_events(events)
            per_core = cfg.l2.total_ways // cfg.num_cores
            rows = [(f"core{i}", name, per_core)
                    for i, name in enumerate(mix.names)]
            print()
            print(format_table(
                ["core", "workload", "ways"], rows,
                title="Fallback: equal shares (profiler flagged unhealthy)",
            ))
            return 0
        curves = checked
    decision = bank_aware_partition(
        curves,
        num_banks=cfg.l2.num_banks,
        bank_ways=cfg.l2.bank_ways,
        max_ways_per_core=cfg.max_ways_per_core,
    )
    rows = [
        (f"core{i}", name, decision.ways[i], decision.center_banks[i],
         str(decision.pair_of(i) or "-"))
        for i, name in enumerate(mix.names)
    ]
    print(format_table(
        ["core", "workload", "ways", "center banks", "pair"], rows,
        title="Bank-aware assignment",
    ))
    if args.unrestricted:
        ur = unrestricted_partition(curves, cfg.l2.total_ways)
        print(f"\nUnrestricted (UCP) assignment: {ur}")
        print(
            "predicted misses: bank-aware "
            f"{predicted_misses(curves, list(decision.ways)):,.0f} vs "
            f"unrestricted {predicted_misses(curves, ur):,.0f}"
        )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    mix = _resolve_mix(args, cfg.num_cores)
    settings = RunSettings(duration_cycles=args.duration, seed=args.seed,
                           fault_plan=_fault_plan(args),
                           sanitize=args.sanitize,
                           trace=bool(args.trace),
                           spans=_spans_flag(args),
                           sim_backend=args.sim_backend)
    result = run_mix(mix, args.scheme, cfg, settings)
    if args.trace:
        write_jsonl(args.trace, result.events)
        print(f"trace: {args.trace} ({len(result.events)} events)")
    _store_run(
        args,
        source="simulate",
        config=cfg,
        workloads=mix.names,
        settings={"scheme": args.scheme, "duration_cycles": args.duration,
                  "seed": args.seed, "scale": args.scale,
                  "epoch_cycles": args.epoch,
                  "sim_backend": args.sim_backend,
                  "spans": bool(args.spans)},
        headline=headline_from_result(result),
        trace_events=result.events if args.trace else None,
    )
    rows = [
        (c.core, c.workload, c.l2_accesses, f"{c.miss_rate:.3f}",
         f"{c.mpki:.2f}", f"{c.cpi:.3f}")
        for c in result.cores
    ]
    print(format_table(
        ["core", "workload", "L2 refs", "miss rate", "MPKI", "CPI"], rows,
        title=f"{args.scheme} on {mix}",
    ))
    print(f"\noverall miss rate {result.miss_rate:.3f}; "
          f"migrations {result.migrations:,}; epochs {len(result.epochs)}")
    if result.epochs:
        print(f"last allocation: {result.epochs[-1].ways}")
    _print_guard_events(result.guard_events)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    mix = _resolve_mix(args, cfg.num_cores)
    settings = RunSettings(duration_cycles=args.duration, seed=args.seed,
                           fault_plan=_fault_plan(args),
                           sanitize=args.sanitize,
                           trace=bool(args.trace),
                           spans=_spans_flag(args),
                           sim_backend=args.sim_backend)
    # the sink feeds 'repro watch' while the run grows; write_jsonl then
    # atomically replaces it with the complete durable stream
    tracer = Tracer(sink=args.trace) if args.trace else None
    if tracer is not None:
        tracer.emit_run_meta("compare", detail=str(mix))
    # relative metrics normalise against No-partitions, so the baseline
    # always joins an explicit --scheme list (deduplicated, order kept)
    schemes = (
        tuple(dict.fromkeys(["no-partitions", *args.schemes]))
        if args.schemes
        else DETAILED_SCHEMES
    )
    comp = compare_schemes(
        mix, cfg, settings, schemes, jobs=args.jobs, tracer=tracer
    )
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"trace: {args.trace} ({len(tracer.events)} events)")
    rows = []
    for scheme in comp.results:
        rows.append(
            (scheme, f"{comp.relative_miss_rate(scheme):.3f}",
             f"{comp.relative_cpi(scheme):.3f}",
             comp.results[scheme].migrations)
        )
    print(format_table(
        ["scheme", "rel. misses/instr", "rel. CPI", "migrations"], rows,
        title=f"Scheme comparison on {mix}",
    ))
    for scheme, result in comp.results.items():
        if result.guard_events:
            print(f"\n[{scheme}]", end="")
            _print_guard_events(result.guard_events)
    _store_run(
        args,
        source="compare",
        config=cfg,
        workloads=mix.names,
        settings={"duration_cycles": args.duration, "seed": args.seed,
                  "scale": args.scale, "epoch_cycles": args.epoch,
                  "jobs": args.jobs, "sim_backend": args.sim_backend,
                  "schemes": list(schemes), "spans": bool(args.spans)},
        headline=headline_from_comparison(comp),
        trace_events=tracer.events if tracer is not None else None,
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.parallel.bench import run_bench_suite

    if args.attribute:
        old, new = (load_report(path) for path in args.attribute)
        print(render_attribution_text(attribute_delta(old, new)))
        return 0
    payload = run_bench_suite(
        quick=args.quick, jobs=args.jobs, output=args.output
    )
    rows = [
        (b["name"], f"{b['wall_s']:.3f}",
         f"{b['throughput']:,.0f} {b['unit']}")
        for b in payload["benchmarks"]
    ]
    print(format_table(
        ["benchmark", "wall (s)", "throughput"], rows,
        title=f"repro bench ({payload['suite']} suite, "
              f"rev {payload['git_rev']})",
    ))
    print(f"report: {args.output}")
    gate = None
    if args.baseline:
        baseline = load_report(args.baseline)
        gate = gate_report(payload, baseline, gate_pct=args.gate_pct)
        print()
        print(render_gate_text(gate))
    if args.history:
        append_history(args.history, payload, gate)
        print(f"history: {args.history}")
    return 1 if gate is not None and gate.failed else 0


def cmd_report(args: argparse.Namespace) -> int:
    events = read_jsonl(args.trace)
    if args.check:
        problems = check_trace(events)
        if problems:
            for problem in problems:
                print(f"problem: {problem}", file=sys.stderr)
            return 1
        print(f"{args.trace}: {len(events)} events, schema OK")
    if args.chrome:
        write_chrome_trace(args.chrome, events)
        print(f"chrome trace: {args.chrome} (open in ui.perfetto.dev)")
    if not args.check:
        if args.spans:
            print(render_spans_text(events))
        elif args.format == "json":
            print(render_trace_json(events))
        else:
            print(render_trace_text(events))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    payload = resolve_series(args.source, RunStore(args.store))
    rows = series_stats(payload, select=args.select)
    if args.format == "json":
        print(render_stats_json(rows))
    elif args.format == "csv":
        print(render_stats_csv(rows))
    else:
        print(render_stats_text(
            rows, title=f"Per-epoch series stats: {args.source}"
        ))
    return 0


def _lint_xmod_result(
    args: argparse.Namespace, config: LintConfig
) -> LintResult:
    """Run (or replay from cache) the whole-program pass."""
    files = iter_python_files(args.paths, config)
    cache_path = Path(args.cache_path)
    key = None
    if not args.no_cache:
        key = tree_key(files, config, XMOD_ANALYZER_VERSION)
        cached = load_cached(cache_path, key)
        if cached is not None:
            print(
                f"xmod: cache hit ({len(files)} files unchanged)",
                file=sys.stderr,
            )
            return cached
    result = analyze_files(files, config)
    if key is not None:
        store_cache(cache_path, key, result)
    return result


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rules())
        return 0
    config = load_config(Path(args.config) if args.config else None)
    if args.xmod:
        result = _lint_xmod_result(args, config)
        baseline_path = (
            Path(args.baseline) if args.baseline else find_baseline()
        )
        if args.update_baseline:
            target = baseline_path or Path("lint-baseline.json")
            previous = (
                load_baseline(target) if target.is_file() else []
            )
            count = write_baseline(
                list(result.findings), target, previous
            )
            print(f"baseline: wrote {count} entr(y/ies) to {target}")
            return 0
        if baseline_path is not None:
            outcome = apply_baseline(
                list(result.findings), load_baseline(baseline_path)
            )
            for entry in outcome.stale:
                print(
                    f"stale baseline entry: {entry.rule} at {entry.path} "
                    f"matched nothing — remove it from {baseline_path}",
                    file=sys.stderr,
                )
            result = LintResult(
                findings=tuple(
                    sorted([*outcome.new, *outcome.baselined])
                ),
                files_checked=result.files_checked,
            )
    else:
        result = lint_paths(args.paths, config)
    if args.sarif:
        Path(args.sarif).write_text(render_sarif(result), encoding="utf-8")
        print(f"sarif report: {args.sarif}", file=sys.stderr)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


def cmd_montecarlo(args: argparse.Namespace) -> int:
    cfg = _machine(args)
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint PATH")
    policies = analytic_policies() if args.rank_policies else None
    # live sink for 'repro watch'; write_jsonl atomically finalises it
    tracer = Tracer(sink=args.trace) if args.trace else None
    supervisor_summary = None
    if args.backend == "legacy":
        result = run_monte_carlo(
            args.mixes,
            cfg,
            seed=args.seed,
            profile_accesses=args.accesses,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            jobs=args.jobs,
            profile_cache=_profile_cache(args),
            tracer=tracer,
            policies=policies,
        )
    else:
        policy = SupervisorPolicy(
            max_attempts=args.max_attempts, timeout_s=args.timeout
        )
        run = run_fabric_monte_carlo(
            args.mixes,
            cfg,
            seed=args.seed,
            profile_accesses=args.accesses,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            backend=args.backend,
            jobs=args.jobs,
            policy=policy,
            profile_cache=_profile_cache(args),
            tracer=tracer,
            deadletter=(
                DeadLetterLedger(args.deadletter) if args.deadletter else None
            ),
            cluster_root=args.cluster_root,
            shard_size=args.shard_size,
            policies=policies,
        )
        result = run.result
        supervisor_summary = run.supervisor_summary()
        actions = supervisor_summary.get("actions") or {}
        if actions:
            recap = ", ".join(f"{k} x{v}" for k, v in sorted(actions.items()))
            print(f"supervision: {recap}")
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"trace: {args.trace} ({len(tracer.events)} events)")
    print(format_table(
        ["metric", "value"],
        [
            ("mixes evaluated", f"{len(result.points)}"),
            ("mean relative misses, Unrestricted",
             f"{result.mean_unrestricted_ratio:.4f}"),
            ("mean relative misses, Bank-aware",
             f"{result.mean_bank_aware_ratio:.4f}"),
            ("restriction penalty",
             f"{result.restriction_penalty():.4f}"),
        ],
        title=f"Monte Carlo sweep ({args.mixes} random mixes, seed {args.seed})",
    ))
    ranking = result.policy_ranking()
    if ranking:
        print(format_table(
            ["policy", "mean relative misses vs equal"],
            [(name, f"{ratio:.4f}") for name, ratio in ranking],
            title="Policy ranking (best first)",
        ))
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
    _store_run(
        args,
        source="montecarlo",
        config=cfg,
        settings={"mixes": args.mixes, "seed": args.seed,
                  "profile_accesses": args.accesses, "jobs": args.jobs,
                  "scale": args.scale, "epoch_cycles": args.epoch,
                  "backend": args.backend},
        headline=headline_from_montecarlo(result),
        supervisor=supervisor_summary,
        trace_events=tracer.events if tracer is not None else None,
    )
    return 0


def _supervisor_counts(events) -> dict[str, int]:
    """Tally advisory supervisor actions out of a telemetry stream."""
    counts: dict[str, int] = {}
    for event in events:
        if event.get("type") == "supervisor":
            kind = event.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def cmd_chaos(args: argparse.Namespace) -> int:
    """The chaos harness: break a sweep on purpose, prove it heals.

    Three phases: (1) a clean in-process reference sweep; (2) the same
    sweep on the process-pool backend with seeded faults injected and a
    simulated driver kill mid-flight; (3) a resume from the checkpoint.
    The gate is ``repro diff`` semantics on phases 1 and 3: the canonical
    traces must be bit-identical, or the command exits non-zero.
    """
    import dataclasses as _dc

    from repro.resilience.checkpoint import backup_path
    from repro.workloads.mixes import random_mixes

    cfg = _machine(args)
    # each hard kill burns one ladder rung (pool -> fresh-pool -> serial);
    # a third would fire os._exit inside the driver itself
    if args.kill > 2:
        raise SystemExit("at most 2 --kill faults (one per pool rung)")
    # the chaos phases need real worker processes: a kill fault landing on
    # the serial rung would take the driver down with it
    jobs = args.jobs if args.jobs is not None else 2
    if jobs == 1 and args.kill > 0:
        raise SystemExit("--kill faults need --jobs >= 2 (or 0 = per CPU)")
    workdir = Path(args.workdir)
    if workdir.exists() and any(workdir.iterdir()):
        raise SystemExit(
            f"{workdir} is not empty; chaos needs a fresh workdir "
            "(its fault markers are one-shot)"
        )
    workdir.mkdir(parents=True, exist_ok=True)
    curves = collect_profiles(
        config=cfg, accesses=args.accesses, cache=_profile_cache(args)
    )
    mixes = random_mixes(args.mixes, cfg.num_cores, seed=args.seed)
    labels = [str(m) for m in mixes]
    abort_after = args.abort_after or max(1, args.mixes // 2)
    plan = ChaosPlan(
        state_dir=str(workdir / "chaos-state"),
        crash_labels=pick_labels(labels, args.crash, args.chaos_seed, "crash"),
        kill_labels=pick_labels(labels, args.kill, args.chaos_seed, "kill"),
        hang_labels=pick_labels(labels, args.hang, args.chaos_seed, "hang"),
        hang_s=args.hang_s,
        abort_after=abort_after,
    )
    policy = SupervisorPolicy(
        max_attempts=args.max_attempts,
        timeout_s=args.timeout,
        seed=args.chaos_seed,
    )
    ledger = DeadLetterLedger(workdir / "deadletter.jsonl")
    sweep_kwargs = dict(
        config=cfg, curves=curves, seed=args.seed,
        profile_accesses=args.accesses,
    )

    print(f"phase 1/3: clean in-process reference sweep ({args.mixes} mixes)")
    t_clean = Tracer()
    run_fabric_monte_carlo(
        args.mixes, backend="inproc", tracer=t_clean, **sweep_kwargs
    )
    serial_trace = workdir / "serial.jsonl"
    t_clean.write_jsonl(serial_trace)

    faults = ", ".join(
        f"{kind}={count}"
        for kind, count in (
            ("crash", args.crash), ("kill", args.kill), ("hang", args.hang)
        )
        if count
    ) or "none"
    print(
        f"phase 2/3: chaos sweep on the pool backend (faults: {faults}; "
        f"driver abort after {abort_after} points)"
    )
    checkpoint = workdir / "checkpoint.json"
    # snapshot often enough that the abort leaves a .bak generation behind
    # (--truncate-checkpoint needs one to fall back to)
    every = max(1, abort_after // 3)
    t_chaos = Tracer()
    try:
        run_fabric_monte_carlo(
            args.mixes, backend="pool", jobs=jobs, policy=policy,
            chaos=plan, checkpoint_path=str(checkpoint),
            checkpoint_every=every, tracer=t_chaos,
            deadletter=ledger, **sweep_kwargs,
        )
        print("  (sweep finished before the scheduled abort)")
    except ChaosAbort as abort:
        print(f"  driver killed as planned: {abort}")
    if args.truncate_checkpoint:
        if Path(backup_path(checkpoint)).is_file():
            kept = truncate_file(checkpoint)
            print(
                f"  checkpoint torn mid-byte ({kept} bytes kept); the "
                "resume must fall back to its .bak generation"
            )
        else:
            print(
                "  warning: no .bak generation yet (checkpoint was only "
                "written once); skipping the truncation"
            )

    print("phase 3/3: resume from the checkpoint")
    t_resume = Tracer()
    resumed = run_fabric_monte_carlo(
        args.mixes, backend="pool", jobs=jobs, policy=policy,
        chaos=_dc.replace(plan, abort_after=None),
        checkpoint_path=str(checkpoint), checkpoint_every=every,
        resume=True, tracer=t_resume, deadletter=ledger, **sweep_kwargs,
    )
    chaos_trace = workdir / "chaos.jsonl"
    t_resume.write_jsonl(chaos_trace)

    report = diff_traces(
        read_jsonl(serial_trace),
        read_jsonl(chaos_trace),
        a_label="clean-serial",
        b_label="chaos-resumed",
    )
    print()
    print(render_diff_text(report))
    actions = _supervisor_counts(t_chaos.events + t_resume.events)
    if actions:
        recap = ", ".join(f"{k} x{v}" for k, v in sorted(actions.items()))
        print(f"supervision: {recap}")
    if len(ledger):
        print(f"dead-letter ledger: {len(ledger)} entries ({ledger.path})")

    quarantined = 0
    if args.poison:
        print(f"\npoison phase: {args.poison} permanently failing items, "
              "on_poison='skip' (no determinism gate)")
        poison_plan = ChaosPlan(
            state_dir=str(workdir / "chaos-state"),
            poison_labels=pick_labels(
                labels, args.poison, args.chaos_seed, "poison"
            ),
        )
        poison_run = run_fabric_monte_carlo(
            args.mixes, backend="pool", jobs=jobs,
            policy=_dc.replace(policy, on_poison="skip"),
            chaos=poison_plan, deadletter=ledger, **sweep_kwargs,
        )
        quarantined = args.mixes - len(poison_run.result.points)
        print(
            f"  {len(poison_run.result.points)}/{args.mixes} points "
            f"computed, {quarantined} quarantined "
            f"(ledger now {len(ledger)} entries)"
        )

    _store_run(
        args,
        source="chaos",
        config=cfg,
        settings={"mixes": args.mixes, "seed": args.seed,
                  "chaos_seed": args.chaos_seed,
                  "profile_accesses": args.accesses, "jobs": args.jobs,
                  "scale": args.scale, "epoch_cycles": args.epoch,
                  "faults": plan.describe(), "poison": args.poison},
        headline=headline_from_montecarlo(resumed.result),
        supervisor={
            **resumed.supervisor_summary(),
            "actions": actions,
            "deadletter_entries": len(ledger),
            "poison_quarantined": quarantined,
        },
        trace_events=t_resume.events,
    )
    verdict = "survived" if report.identical else "DIVERGED"
    print(f"\nchaos verdict: {verdict}")
    return report.exit_code


def cmd_runs(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    if args.action == "query":
        records = query_runs(
            store.list(),
            source=args.source,
            scheme=args.scheme,
            workload=args.workload,
            fingerprint=args.fingerprint,
            since=args.since,
            until=args.until,
        )
        rows = runs_query_rows(records)
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            print(render_runs_query_text(rows))
        return 0
    if args.action == "list":
        records = store.list()
        if args.json:
            print(json.dumps(
                runs_query_rows(records), indent=2, sort_keys=True
            ))
            return 0
        if not records:
            print(f"no runs stored under {store.root}")
            return 0
        rows = []
        for r in records:
            m = r.manifest
            trace = (
                f"{m.get('trace_events')} events" if m.get("trace") else "-"
            )
            rows.append(
                (r.run_id, m.get("created", "?"), m.get("git_rev", "?"),
                 m.get("config_fingerprint", "?")[:8], trace)
            )
        print(format_table(
            ["run id", "created (UTC)", "rev", "config", "trace"], rows,
            title=f"run store {store.root} ({len(records)} runs)",
        ))
        return 0
    # action == "show"
    if not args.run_id:
        raise SystemExit("'repro runs show' needs a run id (see 'runs list')")
    record = store.get(args.run_id)
    print(json.dumps(record.manifest, indent=2, sort_keys=True))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    path_a = store.resolve_trace(args.a)
    path_b = store.resolve_trace(args.b)
    report = diff_traces(
        read_jsonl(path_a),
        read_jsonl(path_b),
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        a_label=args.a,
        b_label=args.b,
    )
    if args.format == "json":
        print(render_diff_json(report))
    else:
        print(render_diff_text(report))
    return report.exit_code


def cmd_watch(args: argparse.Namespace) -> int:
    return watch_trace(
        args.trace,
        interval=args.interval,
        once=args.once,
        timeout=args.timeout,
        metrics=args.metrics,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bank-aware dynamic cache partitioning (ICPP 2009) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("suite", help="list the workload models")
    p.set_defaults(fn=cmd_suite)

    p = sub.add_parser("machine", help="print the machine description")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_machine)

    p = sub.add_parser("profile", help="MSA-profile workloads")
    p.add_argument("workloads", nargs="+", choices=sorted(ALL_NAMES))
    p.add_argument("--ways", default="2,4,8,16,32,45,64")
    p.add_argument("--accesses", type=_positive_int, default=80_000)
    p.add_argument("--seed", type=_positive_int, default=11)
    p.add_argument("--save", help="save the curves to an .npz for reuse")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("partition", help="run the Bank-aware assignment")
    p.add_argument("workloads", nargs="*", default=[],
                   metavar="WORKLOAD", help="8 workload names (see 'suite')")
    p.add_argument("--set", type=int, help="use paper Table III set N (1-8)")
    p.add_argument("--accesses", type=_positive_int, default=80_000)
    p.add_argument("--seed", type=_positive_int, default=11)
    p.add_argument("--curves", help="load cached curves (.npz from 'profile --save')")
    p.add_argument("--unrestricted", action="store_true",
                   help="also show the Unrestricted (UCP) assignment")
    _add_fault_args(p)
    _add_machine_args(p)
    p.set_defaults(fn=cmd_partition)

    for name, fn in (("simulate", cmd_simulate), ("compare", cmd_compare)):
        p = sub.add_parser(name, help=f"{name} a mix on the DES simulator")
        p.add_argument("workloads", nargs="*", default=[],
                       metavar="WORKLOAD", help="8 workload names (see 'suite')")
        p.add_argument("--set", type=int, help="use paper Table III set N (1-8)")
        if name == "simulate":
            p.add_argument(
                "--scheme",
                default="bank-aware",
                choices=registered_policies(),
                help=f"partitioning policy ({policy_help()})",
            )
        else:
            p.add_argument(
                "--scheme",
                action="append",
                dest="schemes",
                choices=registered_policies(),
                metavar="SCHEME",
                help="compare these registered policies instead of the "
                     "paper's three (repeatable; the No-partitions "
                     f"baseline always runs; known: {policy_help()})",
            )
        p.add_argument("--duration", type=_positive_float, default=4_000_000)
        p.add_argument("--seed", type=_positive_int, default=7)
        p.add_argument(
            "--sim-backend",
            default="reference",
            choices=SIM_BACKENDS,
            help="execution engine: 'reference' (checked object-model event "
                 "loop) or 'batched' (struct-of-arrays engine, bit-identical "
                 "and several times faster)",
        )
        _add_fault_args(p)
        _add_sanitize_arg(p)
        _add_trace_arg(p)
        _add_spans_arg(p)
        _add_store_arg(p)
        _add_machine_args(p)
        if name == "compare":
            _add_jobs_arg(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser(
        "montecarlo",
        help="analytic Monte Carlo sweep over random mixes (Fig. 7)",
    )
    p.add_argument("--mixes", type=_positive_int, default=100,
                   help="number of random mixes to evaluate")
    p.add_argument("--seed", type=_positive_int, default=2009)
    p.add_argument("--accesses", type=_positive_int, default=60_000,
                   help="profiling accesses per workload")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="snapshot completed mixes to this JSON file")
    p.add_argument("--resume", action="store_true",
                   help="continue from an existing --checkpoint snapshot")
    p.add_argument("--profile-cache", nargs="?", const="", metavar="DIR",
                   help="memoize the per-workload miss curves on disk "
                        "(default dir: $REPRO_PROFILE_CACHE or "
                        "~/.cache/repro/profiles)")
    p.add_argument("--backend",
                   choices=("legacy", "inproc", "pool", "local-cluster"),
                   default="legacy",
                   help="execution backend: 'legacy' is the unsupervised "
                        "PR-4 runner; the rest run under the fault-tolerant "
                        "fabric (retries, deadlines, degradation ladder)")
    p.add_argument("--timeout", type=_positive_float, default=None,
                   metavar="S",
                   help="fabric wall deadline per work item, seconds "
                        "(fabric backends only)")
    p.add_argument("--max-attempts", type=_positive_int, default=3,
                   metavar="N",
                   help="fabric retry budget per work item (default 3)")
    p.add_argument("--deadletter", metavar="PATH",
                   help="append quarantined items to this JSONL ledger "
                        "(fabric backends only)")
    p.add_argument("--cluster-root", metavar="DIR",
                   help="shared directory of the local-cluster file queue "
                        "(required for --backend local-cluster; rerunning "
                        "against the same root resumes from its shards)")
    p.add_argument("--shard-size", type=_positive_int,
                   default=DEFAULT_SHARD_SIZE, metavar="N",
                   help="mixes per local-cluster shard "
                        f"(default {DEFAULT_SHARD_SIZE})")
    p.add_argument("--rank-policies", action="store_true",
                   help="additionally project every mix through each "
                        "analytically rankable registry policy "
                        f"({', '.join(analytic_policies())}) and print "
                        "their mean miss ratios vs. Equal")
    _add_trace_arg(p)
    _add_store_arg(p)
    _add_jobs_arg(p)
    _add_machine_args(p)
    p.set_defaults(fn=cmd_montecarlo)

    p = sub.add_parser(
        "chaos",
        help="fault-injection harness: chaos sweep + kill + resume must "
             "equal a clean run (repro diff gate)",
    )
    p.add_argument("--mixes", type=_positive_int, default=12,
                   help="number of random mixes to evaluate (default 12)")
    p.add_argument("--seed", type=_positive_int, default=2009,
                   help="sweep seed (mix generation)")
    p.add_argument("--chaos-seed", type=int, default=99,
                   help="seed of the fault schedule and backoff jitter")
    p.add_argument("--accesses", type=_positive_int, default=4000,
                   help="profiling accesses per workload (small default: "
                        "chaos is about failure paths, not fidelity)")
    p.add_argument("--crash", type=int, default=2, metavar="N",
                   help="items that raise on their first run (default 2)")
    p.add_argument("--kill", type=int, default=1, metavar="N",
                   help="items whose worker os._exits hard, max 2 "
                        "(default 1)")
    p.add_argument("--hang", type=int, default=0, metavar="N",
                   help="items that sleep past the deadline (give "
                        "--timeout too)")
    p.add_argument("--hang-s", type=_positive_float, default=60.0,
                   metavar="S", help="injected hang duration (default 60)")
    p.add_argument("--poison", type=int, default=0, metavar="N",
                   help="items that fail every attempt; exercised in a "
                        "separate on_poison='skip' phase")
    p.add_argument("--abort-after", type=_positive_int, default=None,
                   metavar="K",
                   help="simulated driver kill after K completed points "
                        "(default: half the sweep)")
    p.add_argument("--timeout", type=_positive_float, default=None,
                   metavar="S", help="supervisor deadline per item, seconds")
    p.add_argument("--max-attempts", type=_positive_int, default=3,
                   metavar="N", help="retry budget per item (default 3)")
    p.add_argument("--truncate-checkpoint", action="store_true",
                   help="tear the checkpoint mid-byte after the abort, "
                        "forcing the resume onto the .bak generation")
    p.add_argument("--workdir", default=".repro-chaos", metavar="DIR",
                   help="fresh directory for traces, checkpoint, fault "
                        "markers, dead letters (default .repro-chaos)")
    p.add_argument("--profile-cache", nargs="?", const="", metavar="DIR",
                   help="memoize the per-workload miss curves on disk")
    _add_store_arg(p)
    _add_jobs_arg(p)
    _add_machine_args(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "report",
        help="digest a telemetry trace (JSONL written by --trace)",
    )
    p.add_argument("trace", metavar="TRACE",
                   help="JSONL trace file from a --trace run")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--check", action="store_true",
                   help="schema-validate the trace and exit (non-zero on "
                        "any violation)")
    p.add_argument("--chrome", metavar="PATH",
                   help="also export a Chrome/Perfetto trace JSON")
    p.add_argument("--spans", action="store_true",
                   help="print the span profiler's self-time attribution "
                        "table instead of the epoch digest (record spans "
                        "with 'simulate/compare --trace --spans')")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "stats",
        help="aggregate the per-epoch time series of a run or trace",
    )
    p.add_argument("source", metavar="RUN|TRACE",
                   help="stored run id, timeseries.json.gz sidecar, or "
                        "JSONL trace file")
    p.add_argument("--select", metavar="PATTERN",
                   help="only columns matching PATTERN (substring, or a "
                        "glob like 'core_miss_rate.*')")
    p.add_argument("--format", choices=("text", "json", "csv"),
                   default="text")
    p.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                   help="run store used to resolve run ids "
                        f"(default: {DEFAULT_STORE})")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "bench",
        help="perf-tracking benchmark suite (writes BENCH_sweep.json)",
    )
    p.add_argument("--quick", action="store_true",
                   help="CI-sized suite (seconds instead of minutes)")
    p.add_argument("--output", default="BENCH_sweep.json", metavar="PATH",
                   help="report path (default: BENCH_sweep.json)")
    p.add_argument("--baseline", metavar="REPORT",
                   help="gate this run against a stored repro-bench report "
                        "(e.g. the committed BENCH_sweep.json); exits 1 on "
                        "regression")
    p.add_argument("--gate-pct", type=_positive_float,
                   default=DEFAULT_GATE_PCT, metavar="N",
                   help="allowed throughput drop vs the baseline, percent "
                        f"(default {DEFAULT_GATE_PCT:g})")
    p.add_argument("--history", default="BENCH_history.jsonl",
                   metavar="PATH",
                   help="perf-ledger path this run (and its gate verdict) "
                        "is appended to (default: BENCH_history.jsonl)")
    p.add_argument("--no-history", dest="history", action="store_const",
                   const=None, help="skip the perf-ledger append")
    p.add_argument("--attribute", nargs=2, metavar=("OLD", "NEW"),
                   help="skip the suite; attribute the throughput delta "
                        "between two stored bench reports to the span "
                        "phase whose self time shifted the most")
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "runs",
        help="query the run store populated by --store runs",
    )
    p.add_argument("action", choices=("list", "show", "query"),
                   help="'list' every archived run, 'show' one manifest, "
                        "or 'query' with provenance filters")
    p.add_argument("run_id", nargs="?",
                   help="run id to show (from 'repro runs list')")
    p.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                   help=f"run store root (default: {DEFAULT_STORE})")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (list/query)")
    p.add_argument("--source", metavar="CMD",
                   help="query filter: archiving command "
                        "(simulate/compare/montecarlo/chaos)")
    p.add_argument("--scheme", metavar="NAME",
                   help="query filter: comparison headline carries this "
                        "scheme")
    p.add_argument("--workload", metavar="NAME",
                   help="query filter: any archived workload name "
                        "contains NAME")
    p.add_argument("--fingerprint", metavar="HEX",
                   help="query filter: config fingerprint prefix")
    p.add_argument("--since", metavar="ISO",
                   help="query filter: created >= this ISO-8601 prefix "
                        "(e.g. 2026-08)")
    p.add_argument("--until", metavar="ISO",
                   help="query filter: created <= this ISO-8601 prefix")
    p.set_defaults(fn=cmd_runs)

    p = sub.add_parser(
        "diff",
        help="first-divergence comparison of two traces or stored runs",
    )
    p.add_argument("a", metavar="A",
                   help="trace file or stored run id (baseline side)")
    p.add_argument("b", metavar="B",
                   help="trace file or stored run id (candidate side)")
    p.add_argument("--rel-tol", type=float, default=0.0, metavar="R",
                   help="relative tolerance for float metric fields "
                        "(default 0 = exact, the determinism gate)")
    p.add_argument("--abs-tol", type=float, default=0.0, metavar="A",
                   help="absolute tolerance for float metric fields")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                   help="run store used to resolve run ids "
                        f"(default: {DEFAULT_STORE})")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "watch",
        help="live-monitor a growing trace (progress, throughput, ETA)",
    )
    p.add_argument("trace", metavar="TRACE",
                   help="JSONL trace being written by a --trace run")
    p.add_argument("--interval", type=_positive_float, default=1.0,
                   metavar="S", help="poll interval in seconds (default 1)")
    p.add_argument("--once", action="store_true",
                   help="render one snapshot and exit")
    p.add_argument("--timeout", type=_positive_float, default=None,
                   metavar="S",
                   help="give up (exit 1) after S seconds without completion")
    p.add_argument("--metrics", action="store_true",
                   help="also show the latest epoch's time-series row per "
                        "scheme (miss rates, partition, bank pressure)")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser(
        "lint",
        help="domain-aware static analysis (determinism, float equality, "
             "partition invariants, API hygiene)",
    )
    p.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                   help="files or directories to check (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--config", metavar="PYPROJECT",
                   help="explicit pyproject.toml (default: walk up from cwd)")
    p.add_argument("--list-rules", action="store_true",
                   help="describe every rule and exit")
    p.add_argument("--xmod", action="store_true",
                   help="run the whole-program cross-module pass "
                        "(PAR001/PAR002/DET003/TEL001/ERR001) instead of "
                        "the per-file rules")
    p.add_argument("--baseline", metavar="JSON",
                   help="baseline file for --xmod ratcheting (default: "
                        "nearest lint-baseline.json above cwd); baselined "
                        "findings warn, new findings fail")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to cover the current "
                        "findings (carries existing reasons over) and exit")
    p.add_argument("--sarif", metavar="PATH",
                   help="additionally write a SARIF 2.1.0 report for "
                        "GitHub code scanning")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the --xmod findings cache")
    p.add_argument("--cache-path", metavar="PATH",
                   default=str(DEFAULT_CACHE_PATH),
                   help="--xmod findings cache location "
                        "(default: %(default)s)")
    p.set_defaults(fn=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        # contained, expected failures (corrupt checkpoints, bad fault
        # specs, ...) exit cleanly instead of dumping a traceback
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
