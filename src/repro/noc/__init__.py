"""On-chip network: floorplan, DNUCA latency, bank contention."""

from repro.noc.contention import BankPort, ContentionModel
from repro.noc.latency import LatencyModel
from repro.noc.topology import Floorplan

__all__ = ["BankPort", "ContentionModel", "Floorplan", "LatencyModel"]
