"""Bank/port contention model.

Each bank has a single port that is busy for ``busy_cycles`` per access
(Table I's "10-70 cycles bank access" covers wire traversal; the port
occupancy models back-to-back service conflicts).  Requests arriving while
the port is busy queue in FIFO order: the queueing delay is simply how far
the bank's next-free time lies beyond the request's arrival.

This is the standard single-server approximation for banked-cache
contention studies; the discrete-event simulator asks it for the delay of
every L2 access, so cores mapping hot data to the same bank genuinely slow
each other down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class BankPort:
    """FIFO single-port occupancy state for one bank."""

    busy_cycles: int
    next_free: float = 0.0
    served: int = 0
    total_queue_delay: float = 0.0

    def request(self, arrival: float) -> float:
        """Serve a request arriving at ``arrival``; returns queue delay."""
        delay = max(0.0, self.next_free - arrival)
        start = arrival + delay
        self.next_free = start + self.busy_cycles
        self.served += 1
        self.total_queue_delay += delay
        return delay

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_delay / self.served if self.served else 0.0


@dataclass
class ContentionModel:
    """Per-bank ports plus a memory-controller port for off-chip accesses."""

    num_banks: int
    bank_busy_cycles: int = 4
    #: minimum cycles between successive DRAM accesses (bandwidth model);
    #: 64 B / 64 GB/s at 4 GHz = 4 cycles per line transfer.
    memory_busy_cycles: int = 4
    ports: list[BankPort] = field(init=False)
    memory_port: BankPort = field(init=False)

    def __post_init__(self) -> None:
        if self.num_banks < 1:
            raise ConfigError("need at least one bank")
        self.ports = [
            BankPort(self.bank_busy_cycles) for _ in range(self.num_banks)
        ]
        self.memory_port = BankPort(self.memory_busy_cycles)

    def bank_delay(self, bank: int, arrival: float) -> float:
        return self.ports[bank].request(arrival)

    def memory_delay(self, arrival: float) -> float:
        return self.memory_port.request(arrival)

    def reset(self) -> None:
        for port in self.ports:
            port.next_free = 0.0
            port.served = 0
            port.total_queue_delay = 0.0
        self.memory_port.next_free = 0.0
        self.memory_port.served = 0
        self.memory_port.total_queue_delay = 0.0
