"""Uncontended DNUCA access-latency model (paper Table I / Section II).

"The access latency to a L2 cache bank varies from 10 up to 70 cycles
depending on the physical location of both the core requesting the access
and the L2 bank containing the data" — 10 cycles for the adjacent Local
bank, 70 cycles for the 7-hops-away one.  We interpolate linearly in hop
distance:

    ``latency(core, bank) = min_latency + per_hop * hops(core, bank)``

with ``per_hop = (70 - 10) / 7`` on the paper machine, rounded to whole
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import L2Config
from repro.noc.topology import Floorplan

from repro.errors import ConfigError


@dataclass(frozen=True)
class LatencyModel:
    """Hop-proportional bank access latency."""

    floorplan: Floorplan = field(default_factory=Floorplan)
    min_latency: int = 10
    max_latency: int = 70

    def __post_init__(self) -> None:
        if self.min_latency < 1 or self.max_latency < self.min_latency:
            raise ConfigError("latency bounds must satisfy 1 <= min <= max")

    @property
    def cycles_per_hop(self) -> float:
        max_hops = self.floorplan.max_hops()
        if max_hops == 0:
            return 0.0
        return (self.max_latency - self.min_latency) / max_hops

    def bank_latency(self, core: int, bank: int) -> int:
        """Uncontended round-trip access latency from a core to a bank."""
        hops = self.floorplan.hops(core, bank)
        raw = self.min_latency + self.cycles_per_hop * hops
        return min(round(raw), self.max_latency)

    def latency_table(self) -> list[list[int]]:
        """[core][bank] latency matrix, handy for tests and reports."""
        return [
            [self.bank_latency(c, b) for b in range(self.floorplan.num_banks)]
            for c in range(self.floorplan.num_cores)
        ]

    @staticmethod
    def from_config(config: L2Config, num_cores: int) -> "LatencyModel":
        plan = Floorplan(num_cores=num_cores, num_banks=config.num_banks)
        return LatencyModel(
            plan,
            min_latency=config.min_latency,
            max_latency=config.max_latency,
        )
