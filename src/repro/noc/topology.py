"""The CMP floorplan of paper Fig. 1.

Eight cores sit in a row; each core is adjacent to one *Local* L2 bank, and
the eight *Center* banks occupy the middle of the die.  Access latency to a
bank is distance-dependent (DNUCA): a core reaching its own Local bank pays
the minimum 10 cycles; reaching the Local bank next to the far-end core
takes 7 hops and 70 cycles.  Center banks have higher average latency than a
core's own Local bank but — being centrally placed — much smaller variation
across cores, exactly as the paper describes.

The topology is parameterised by core count so scaled machines keep the
same shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.floorplan import center_bank_positions

from repro.errors import ConfigError


@dataclass(frozen=True)
class Floorplan:
    """Bank positions along the die for an ``num_cores``-core machine.

    Banks ``0..num_cores-1`` are Local (bank *i* at core *i*'s position);
    banks ``num_cores..num_banks-1`` are Center banks clustered around the
    die middle, one row away from the cores.
    """

    num_cores: int = 8
    num_banks: int = 16
    #: extra hop for crossing from the core row to the Center-bank row.
    center_row_hops: float = 1.0

    def __post_init__(self) -> None:
        if self.num_banks < self.num_cores:
            raise ConfigError("need one Local bank per core")
        if self.num_cores < 1:
            raise ConfigError("need at least one core")

    @property
    def num_centers(self) -> int:
        return self.num_banks - self.num_cores

    def is_local(self, bank: int) -> bool:
        self._check_bank(bank)
        return bank < self.num_cores

    def local_bank_of(self, core: int) -> int:
        self._check_core(core)
        return core

    def bank_position(self, bank: int) -> float:
        """Horizontal coordinate of a bank (core *i* sits at x = i)."""
        self._check_bank(bank)
        if bank < self.num_cores:
            return float(bank)
        centers = center_bank_positions(self.num_cores, self.num_centers)
        return centers[bank - self.num_cores]

    def hops(self, core: int, bank: int) -> float:
        """Network hop distance from a core to a bank."""
        self._check_core(core)
        pos = self.bank_position(bank)
        base = abs(core - pos)
        if not self.is_local(bank):
            base += self.center_row_hops
        return base

    def max_hops(self) -> float:
        """The worst-case distance (core 0 to the Local bank of the last
        core — the paper's 7-hop, 70-cycle case)."""
        return float(self.num_cores - 1)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise IndexError(f"core {core} out of range")

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.num_banks:
            raise IndexError(f"bank {bank} out of range")
