"""The full CMP discrete-event simulator.

Ties together everything the paper's Simics/GEMS setup provided: per-core
trace replay through analytic core timers, the banked DNUCA L2 with way
partitioning, the hop-latency NoC with per-bank port contention, the DRAM
latency/bandwidth model, per-core MSA profilers and the dynamic epoch
controller.

The event loop is a classic min-heap over the cores' next L2-access arrival
times, so cores genuinely interleave in simulated time and contend for bank
ports; each access's end-to-end latency feeds back into its core's clock
(divided by the workload's memory-level parallelism).

Measurement is *time-based*, mirroring the paper's fixed instruction slices
run concurrently: all cores stay co-scheduled for the whole simulation
(the run stops as soon as any core exhausts its trace), and each core's
statistics window opens once the simulated clock passes the warmup
boundary.  This matters — with per-core access quotas, fast memory-bound
cores would finish early and leave the cache quiet for the survivors,
silently removing the contention being studied.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.cache.nuca import NucaL2
from repro.cache.partition_map import equal_partition_map
from repro.config import SystemConfig
from repro.cpu.core import CoreSnapshot, CoreTimer
from repro.mem.trace import Trace
from repro.noc.contention import ContentionModel
from repro.noc.latency import LatencyModel
from repro.partitioning.bank_bw import WINDOWS_PER_EPOCH, BankBudgetRegulator
from repro.partitioning.registry import get_policy, registered_policies
from repro.profiling.msa import MSAProfiler
from repro.profiling.sampled import SampledMSAProfiler
from repro.resilience.faults import FaultPlan
from repro.resilience.guard import DecisionGuard
from repro.resilience.sanitizer import ReproSanitizer
from repro.sim.controller import EpochController
from repro.sim.stats import CoreResult, SystemResult
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecorder
from repro.telemetry.tracer import Tracer
from repro.workloads.synthetic import WorkloadSpec

from repro.errors import ConfigError

#: the paper's detailed-simulation schemes (Figs. 8/9 compare these three).
DETAILED_SCHEMES = ("no-partitions", "equal-partitions", "bank-aware")

#: every scheme the simulator supports — any policy registered in the lab
#: (:mod:`repro.partitioning.registry`): the paper's four plus the
#: related-work policies (``bank-bw``, ``joint``).
ALL_SIM_SCHEMES = registered_policies()

#: execution backends: 'reference' is the object-model discrete-event loop,
#: 'batched' the struct-of-arrays engine (bit-identical, see repro.sim.batched).
SIM_BACKENDS = ("reference", "batched")


class CMPSystem:
    """An 8-core (configurable) CMP running one trace per core."""

    def __init__(
        self,
        config: SystemConfig,
        specs: Sequence[WorkloadSpec],
        traces: Sequence[Trace],
        *,
        scheme: str = "bank-aware",
        placement: str = "parallel",
        shared_placement: str = "dnuca",
        profiler_kind: str = "sampled",
        profiler_decay: float = 0.5,
        fault_plan: FaultPlan | None = None,
        sanitize: bool = False,
        trace: bool = False,
        spans: bool = False,
        backend: str = "reference",
    ) -> None:
        config.validate()
        policy = get_policy(scheme)  # single source of scheme identity
        if backend not in SIM_BACKENDS:
            raise ConfigError(f"backend must be one of {SIM_BACKENDS}")
        self.backend = backend
        if len(specs) != config.num_cores or len(traces) != config.num_cores:
            raise ConfigError("need one spec and one trace per core")
        if profiler_kind not in ("sampled", "exact", "none"):
            raise ConfigError("profiler_kind must be sampled/exact/none")
        self.config = config
        self.specs = list(specs)
        self.scheme = scheme
        self.policy = policy
        # The shared baseline is the paper's migrating DNUCA; partitioned
        # schemes aggregate their banks with Parallel (or Address-Hash).
        effective_placement = (
            shared_placement if policy.shares_cache else placement
        )
        self.l2 = NucaL2(config.l2, config.num_cores, placement=effective_placement)
        self.latency = LatencyModel.from_config(config.l2, config.num_cores)
        self._lat = self.latency.latency_table()  # [core][bank], hot path
        self.contention = ContentionModel(
            config.l2.num_banks, bank_busy_cycles=config.l2.bank_busy_cycles
        )
        self.timers = [
            CoreTimer(c, config.core, nonmem_cpi=s.nonmem_cpi, mlp=s.mlp)
            for c, s in enumerate(self.specs)
        ]
        self.profilers = self._build_profilers(profiler_kind)
        self.controller: EpochController | None = None
        self.sanitizer: ReproSanitizer | None = (
            ReproSanitizer()
            if (sanitize or config.resilience.sanitize)
            else None
        )
        # Telemetry is opt-in by construction: untraced runs never allocate
        # a tracer or registry and every emission site checks for None.
        if spans and not trace:
            raise ConfigError("span profiling requires tracing (spans "
                              "flush into the event stream)")
        self.tracer: Tracer | None = Tracer() if trace else None
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if trace else None
        )
        self.spans: SpanRecorder | None = SpanRecorder() if spans else None
        if self.tracer is not None:
            self.tracer.emit_run_meta(
                "detailed-sim",
                detail=f"{scheme}, {config.num_cores} cores, "
                f"{config.l2.num_banks} banks",
            )

        if policy.shares_cache:
            self.l2.share_all()
        else:
            self.l2.apply_partition(
                equal_partition_map(
                    config.num_cores, config.l2.num_banks, config.l2.bank_ways
                )
            )
        #: per-(core, bank) bandwidth regulator of ``needs_bank_queues``
        #: policies; charged on every access in both sim backends.
        self.regulator: BankBudgetRegulator | None = None
        if policy.needs_bank_queues:
            self.regulator = BankBudgetRegulator(
                config.num_cores,
                config.l2.num_banks,
                window_cycles=config.epoch_cycles / WINDOWS_PER_EPOCH,
            )
        if policy.dynamic:
            if self.profilers is None:
                raise ConfigError(f"the {scheme} scheme requires profilers")
            res = config.resilience
            guard = None
            if res.guard_enabled:
                guard = DecisionGuard(
                    config.num_cores,
                    num_banks=config.l2.num_banks,
                    bank_ways=config.l2.bank_ways,
                    max_ways_per_core=config.max_ways_per_core,
                    min_ways=res.min_ways,
                    hysteresis=res.hysteresis_epochs,
                    degrade_after=res.degrade_after,
                )
            self.controller = EpochController(
                self.l2,
                self.profilers,
                [s.name for s in self.specs],
                epoch_cycles=config.epoch_cycles,
                max_ways_per_core=config.max_ways_per_core,
                decay=profiler_decay,
                algorithm=scheme,
                guard=guard,
                fault_injector=(
                    fault_plan.injector() if fault_plan is not None else None
                ),
                sanitizer=self.sanitizer,
                tracer=self.tracer,
                spans=self.spans,
                regulator=self.regulator,
            )

        # columnar trace state for the event loop: numpy views shared with
        # the Trace objects, so long traces are never materialised twice
        self._lines = [t.lines for t in traces]
        self._writes = [t.is_write for t in traces]
        self._gaps = [t.gaps for t in traces]
        self._pos = [0] * config.num_cores
        self._len = [len(t) for t in traces]
        self.warmup_cycles = 0.0
        self.max_cycles: float | None = None
        self._start_snaps: list[CoreSnapshot | None] = [None] * config.num_cores
        self._start_l2: list[tuple[int, int] | None] = [None] * config.num_cores
        self.stop_time: float | None = None

    def _build_profilers(self, kind: str):
        if kind == "none":
            return None
        positions = self.config.max_ways_per_core
        sets = self.config.l2.sets_per_bank
        if kind == "exact":
            return [
                MSAProfiler(sets, positions)
                for _ in range(self.config.num_cores)
            ]
        sampling = min(self.config.profiler.set_sampling, sets)
        return [
            SampledMSAProfiler(
                sets,
                positions,
                set_sampling=sampling,
                partial_tag_bits=self.config.profiler.partial_tag_bits,
            )
            for _ in range(self.config.num_cores)
        ]

    # -- measurement window ----------------------------------------------------

    def set_measurement_window(
        self, warmup_cycles: float, max_cycles: float | None = None
    ) -> None:
        """Open each core's statistics window at ``warmup_cycles`` simulated
        cycles (the paper warms its caches before the measured slice) and
        optionally stop the whole run at ``max_cycles``."""
        if warmup_cycles < 0:
            raise ConfigError("warmup must be non-negative")
        if max_cycles is not None and max_cycles <= warmup_cycles:
            raise ConfigError("max_cycles must exceed the warmup")
        self.warmup_cycles = float(warmup_cycles)
        self.max_cycles = max_cycles

    # -- event loop -----------------------------------------------------------

    def _schedule(self, heap: list, core: int) -> bool:
        pos = self._pos[core]
        if pos >= self._len[core]:
            return False
        arrival = self.timers[core].advance_compute(int(self._gaps[core][pos]))
        heapq.heappush(heap, (arrival, core))
        return True

    def run(self) -> SystemResult:
        """Simulate until any core's trace is exhausted (or ``max_cycles``);
        all cores are co-scheduled for the entire simulated duration."""
        if self.spans is not None:
            with self.spans.span("run"):
                self._run_engine()
        else:
            self._run_engine()
        if self.sanitizer is not None:
            # Final deep sweep: the whole cache must still be coherent.
            self.sanitizer.check_installation(self.l2)
        if self.tracer is not None:
            if self.spans is not None:
                # flush before the final snapshot so the end-of-run
                # bank_snapshot stays the stream's last event
                self.spans.emit_events(self.tracer)
            # end-of-run totals snapshot, by convention at epoch -1
            self._emit_bank_snapshot(self.stop_time or 0.0, -1)
        return self.results()

    def _run_engine(self) -> None:
        if self.backend == "batched":
            from repro.sim.batched import run_batched

            run_batched(self)
        else:
            self._run_reference()

    def _run_reference(self) -> None:
        """The checked object-model event loop (one heap event per access)."""
        heap: list[tuple[float, int]] = []
        for core in range(self.config.num_cores):
            if self.warmup_cycles == 0:
                self._mark_measure_start(core)
            self._schedule(heap, core)
        while heap:
            arrival, core = heapq.heappop(heap)
            if self.max_cycles is not None and arrival >= self.max_cycles:
                self.stop_time = self.max_cycles
                break
            if self.controller is not None:
                if self.controller.tick(arrival) and self.tracer is not None:
                    self._emit_bank_snapshot(
                        arrival, self.controller.epoch_index - 1
                    )
            if (
                self._start_snaps[core] is None
                and arrival >= self.warmup_cycles
            ):
                self._mark_measure_start(core)
            self._process(core, arrival)
            if not self._schedule(heap, core):
                self.stop_time = arrival  # first exhausted trace ends the run
                break

    def _emit_bank_snapshot(self, now: float, epoch: int) -> None:
        """Trace per-bank counter state (only called when tracing is on)."""
        assert self.tracer is not None
        self.tracer.emit(
            "bank_snapshot",
            time=now,
            epoch=epoch,
            hits=[b.stats.total_hits() for b in self.l2.banks],
            misses=[b.stats.total_misses() for b in self.l2.banks],
            occupancy=[b.occupancy() for b in self.l2.banks],
            queue_served=[p.served for p in self.contention.ports],
            queue_delay=[p.total_queue_delay for p in self.contention.ports],
            migrations=self.l2.stats.migrations,
            writebacks=self.l2.stats.writebacks,
            core_hits=[
                self.l2.stats.core_hits(c)
                for c in range(self.config.num_cores)
            ],
            core_misses=[
                self.l2.stats.core_misses(c)
                for c in range(self.config.num_cores)
            ],
        )

    def _process(self, core: int, arrival: float) -> None:
        pos = self._pos[core]
        line = int(self._lines[core][pos])
        is_write = bool(self._writes[core][pos])
        if self.profilers is not None:
            self.profilers[core].observe(line)
        result = self.l2.access(core, line, is_write=is_write)
        if self.regulator is not None:
            # bank-bw: an over-budget access waits for its next window to
            # open before it may even join the bank queue.
            throttle = self.regulator.charge(core, result.bank, arrival)
            queue_delay = self.contention.bank_delay(
                result.bank, arrival + throttle
            )
            latency = self._lat[core][result.bank] + queue_delay + throttle
        else:
            queue_delay = self.contention.bank_delay(result.bank, arrival)
            latency = self._lat[core][result.bank] + queue_delay
        if not result.hit:
            mem_arrival = arrival + latency
            latency += self.config.memory.latency_cycles
            latency += self.contention.memory_delay(mem_arrival)
        self.timers[core].complete_access(latency)
        self._pos[core] = pos + 1

    def _mark_measure_start(self, core: int) -> None:
        self._start_snaps[core] = self.timers[core].snapshot()
        self._start_l2[core] = (
            self.l2.stats.core_hits(core),
            self.l2.stats.core_misses(core),
        )

    # -- results ---------------------------------------------------------------

    def results(self) -> SystemResult:
        out = SystemResult(
            scheme=self.scheme,
            migrations=self.l2.stats.migrations,
            writebacks=self.l2.stats.writebacks,
        )
        for core in range(self.config.num_cores):
            start = self._start_snaps[core]
            l2_start = self._start_l2[core]
            if start is None or l2_start is None:
                # never reached its measurement window: report zeros
                out.cores.append(
                    CoreResult(core, self.specs[core].name, 0, 0.0, 0, 0)
                )
                continue
            end = self.timers[core].snapshot()
            hits = self.l2.stats.core_hits(core) - l2_start[0]
            misses = self.l2.stats.core_misses(core) - l2_start[1]
            out.cores.append(
                CoreResult(
                    core,
                    self.specs[core].name,
                    end.instructions - start.instructions,
                    end.time - start.time,
                    hits + misses,
                    misses,
                )
            )
        if self.controller is not None:
            out.epochs = list(self.controller.history)
            if self.controller.guard is not None:
                out.guard_events = [
                    (e.time, e.kind, e.detail, e.mode)
                    for e in self.controller.guard.events
                ]
        if self.tracer is not None:
            out.events = list(self.tracer.events)
        if self.metrics is not None:
            # a fresh local registry per call keeps results() idempotent
            # (counters only add) without mutating self.metrics
            registry = MetricsRegistry()
            self.l2.publish_metrics(registry)
            served = registry.histogram("noc.port_served")
            delay = registry.histogram("noc.port_queue_delay")
            for port in self.contention.ports:
                served.observe(port.served)
                delay.observe(port.total_queue_delay)
            registry.counter("mem.accesses").inc(
                self.contention.memory_port.served
            )
            out.telemetry = registry.snapshot()
        return out
