"""Result containers for full-system simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.stats import safe_div


@dataclass(frozen=True)
class CoreResult:
    """Measured behaviour of one core over the measurement window."""

    core: int
    workload: str
    instructions: int
    cycles: float
    l2_accesses: int
    l2_misses: int

    @property
    def cpi(self) -> float:
        return safe_div(self.cycles, self.instructions)

    @property
    def miss_rate(self) -> float:
        return safe_div(self.l2_misses, self.l2_accesses)

    @property
    def mpki(self) -> float:
        """L2 misses per kilo-instruction."""
        return safe_div(1000.0 * self.l2_misses, self.instructions)


@dataclass(frozen=True)
class EpochRecord:
    """One dynamic-repartitioning decision."""

    time: float
    ways: tuple[int, ...]
    center_banks: tuple[int, ...] | None = None
    pairs: tuple[tuple[int, int], ...] | None = None


@dataclass
class SystemResult:
    """Aggregate outcome of one simulation run."""

    scheme: str
    cores: list[CoreResult] = field(default_factory=list)
    migrations: int = 0
    writebacks: int = 0
    epochs: list[EpochRecord] = field(default_factory=list)
    #: decision-guard log of one run: (time, kind, detail, mode) tuples.
    guard_events: list[tuple[float, str, str, str]] = field(default_factory=list)
    #: telemetry event stream of one traced run (empty when tracing is off).
    events: list[dict] = field(default_factory=list)
    #: metrics-registry snapshot of one traced run (None when tracing is off).
    telemetry: dict | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form (for sweep checkpoints)."""
        payload = {
            "scheme": self.scheme,
            "cores": [
                [c.core, c.workload, c.instructions, c.cycles,
                 c.l2_accesses, c.l2_misses]
                for c in self.cores
            ],
            "migrations": self.migrations,
            "writebacks": self.writebacks,
            "epochs": [
                [e.time, list(e.ways),
                 list(e.center_banks) if e.center_banks is not None else None,
                 [list(p) for p in e.pairs] if e.pairs is not None else None]
                for e in self.epochs
            ],
            "guard_events": [list(e) for e in self.guard_events],
        }
        # keep untraced checkpoints byte-identical to the pre-telemetry format
        if self.events:
            payload["events"] = self.events
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "SystemResult":
        """Inverse of :meth:`to_dict` (bit-exact round trip via JSON)."""
        return cls(
            scheme=data["scheme"],
            cores=[CoreResult(*row) for row in data["cores"]],
            migrations=data["migrations"],
            writebacks=data["writebacks"],
            epochs=[
                EpochRecord(
                    time,
                    tuple(ways),
                    tuple(centers) if centers is not None else None,
                    tuple(tuple(p) for p in pairs) if pairs is not None else None,
                )
                for time, ways, centers, pairs in data["epochs"]
            ],
            guard_events=[tuple(e) for e in data.get("guard_events", [])],
            events=list(data.get("events", [])),
            telemetry=data.get("telemetry"),
        )

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def total_accesses(self) -> int:
        return sum(c.l2_accesses for c in self.cores)

    @property
    def total_misses(self) -> int:
        return sum(c.l2_misses for c in self.cores)

    @property
    def miss_rate(self) -> float:
        return safe_div(self.total_misses, self.total_accesses)

    @property
    def mean_cpi(self) -> float:
        """Arithmetic mean of per-core CPI (the paper reports per-set CPI
        relative to the no-partition scheme; means keep cores equal-weight
        rather than instruction-weighted)."""
        if not self.cores:
            return 0.0
        return sum(c.cpi for c in self.cores) / len(self.cores)

    def core(self, idx: int) -> CoreResult:
        return self.cores[idx]
