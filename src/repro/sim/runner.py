"""High-level experiment entry points.

Wraps trace generation + system construction + measurement windows into the
one-call experiments the benchmarks and examples need, mirroring the paper's
methodology: fast-forward (we simply generate), warm the L2, then measure a
concurrent slice (Section IV).

Runs are sized in *simulated cycles*: each core receives a trace long enough
(by an access-rate estimate with safety margin) to stay busy for the whole
duration, and the simulation ends when the duration — or the shortest
trace — runs out, so every core observes the full contention of its
co-runners.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.config import SystemConfig, scaled_config
from repro.parallel.executor import ParallelExecutor
from repro.resilience.checkpoint import SweepCheckpoint
from repro.errors import CheckpointCorrupt, ConfigError
from repro.resilience.faults import FaultPlan
from repro.sim.stats import SystemResult
from repro.sim.system import DETAILED_SCHEMES, CMPSystem
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timing import wall_clock
from repro.telemetry.tracer import Tracer
from repro.util.stats import relative
from repro.workloads.mixes import Mix
from repro.workloads.synthetic import WorkloadSpec, generate_trace

#: address-space stride between cores so multiprogrammed footprints never
#: overlap (the paper's workloads are independent processes).
CORE_ADDRESS_STRIDE = 1 << 40


def estimate_access_rate(spec: WorkloadSpec, config: SystemConfig) -> float:
    """Rough L2 accesses per cycle for trace sizing (not for results).

    Assumes a pessimistic-but-typical average access latency of one bank
    round trip plus half a memory access, overlapped by the workload's MLP.
    """
    mean_latency = 40.0 + 0.5 * config.memory.latency_cycles
    period = spec.mean_gap * spec.nonmem_cpi + mean_latency / spec.mlp
    return 1.0 / max(period, 1.0)


@dataclass(frozen=True)
class RunSettings:
    """Shared knobs for one detailed simulation."""

    duration_cycles: float = 6_000_000.0
    warmup_fraction: float = 0.5
    seed: int = 1
    #: intra-partition data placement ('dnuca' = gravity chain, keeping the
    #: latency playing field level with the DNUCA baseline; 'parallel' and
    #: 'hash' are the paper's Fig. 4 aggregation alternatives).
    placement: str = "dnuca"
    #: organisation of the No-partitions baseline ('dnuca' = the paper's
    #: migrating DNUCA; 'parallel'/'hash' are idealised shared caches).
    shared_placement: str = "dnuca"
    profiler_kind: str = "sampled"
    #: trace-length safety margin over the estimated access rate.
    trace_margin: float = 1.7
    #: epoch-to-epoch histogram decay (higher keeps more history, letting
    #: slow workloads with deep pools accumulate stack-distance evidence).
    profiler_decay: float = 0.75
    #: optional seeded failure scenario injected into the profiler read
    #: path of dynamic schemes (see :mod:`repro.resilience.faults`).
    fault_plan: FaultPlan | None = None
    #: deep runtime invariant checking (expensive; see
    #: :mod:`repro.resilience.sanitizer`).  Violations raise
    #: :class:`~repro.resilience.errors.SanitizerViolation` and are never
    #: contained by the guard.
    sanitize: bool = False
    #: collect telemetry events/metrics during the run (see
    #: :mod:`repro.telemetry`).  Off by default — untraced runs construct
    #: no telemetry objects and stay bit-identical to the seed behaviour.
    trace: bool = False
    #: record hierarchical span timings of the run's epoch phases (see
    #: :mod:`repro.telemetry.spans`).  Requires ``trace``; spans flush
    #: into the event stream as advisory ``span`` events, so the canonical
    #: trace is unchanged.  Off by default — no recorder is constructed.
    spans: bool = False
    #: execution backend: 'reference' (checked object-model event loop) or
    #: 'batched' (struct-of-arrays engine, bit-identical; see
    #: :mod:`repro.sim.batched`).
    sim_backend: str = "reference"

    @property
    def warmup_cycles(self) -> float:
        return self.duration_cycles * self.warmup_fraction


def build_system(
    mix: Mix,
    scheme: str,
    config: SystemConfig | None = None,
    settings: RunSettings | None = None,
) -> CMPSystem:
    """Construct a ready-to-run system for one workload mix and scheme."""
    cfg = config or scaled_config()
    st = settings or RunSettings()
    specs = mix.specs()
    if len(specs) != cfg.num_cores:
        raise ConfigError(
            f"mix has {len(specs)} workloads, machine has {cfg.num_cores} cores"
        )
    traces = [
        generate_trace(
            spec,
            int(
                st.duration_cycles
                * estimate_access_rate(spec, cfg)
                * st.trace_margin
            )
            + 1,
            cfg.l2.sets_per_bank,
            seed=st.seed + core,
            base_address=core * CORE_ADDRESS_STRIDE,
        )
        for core, spec in enumerate(specs)
    ]
    system = CMPSystem(
        cfg,
        specs,
        traces,
        scheme=scheme,
        placement=st.placement,
        shared_placement=st.shared_placement,
        profiler_kind=st.profiler_kind,
        profiler_decay=st.profiler_decay,
        fault_plan=st.fault_plan,
        sanitize=st.sanitize,
        trace=st.trace,
        spans=st.spans,
        backend=st.sim_backend,
    )
    system.set_measurement_window(st.warmup_cycles, st.duration_cycles)
    return system


def run_mix(
    mix: Mix,
    scheme: str,
    config: SystemConfig | None = None,
    settings: RunSettings | None = None,
) -> SystemResult:
    """Simulate one mix under one scheme and return measured results."""
    return build_system(mix, scheme, config, settings).run()


@dataclass(frozen=True)
class SchemeComparison:
    """Per-mix outcome of one scheme set (the paper's three detailed
    schemes of Figs. 8/9 by default; any registered policies otherwise).
    The relative metrics need *No-partitions* among the results."""

    mix: Mix
    results: dict[str, SystemResult]

    def relative_miss_rate(self, scheme: str) -> float:
        """Aggregate misses-per-instruction of ``scheme`` relative to
        *No-partitions*.  Normalising by retired instructions makes the
        time-based windows comparable: a scheme that speeds cores up retires
        more instructions in the same duration and must not be charged for
        the extra misses that come with them."""
        base = self.results["no-partitions"]
        ours = self.results[scheme]
        base_mpi = relative(base.total_misses, base.total_instructions)
        our_mpi = relative(ours.total_misses, ours.total_instructions)
        return relative(our_mpi, base_mpi)

    def relative_cpi(self, scheme: str) -> float:
        """Mean CPI of ``scheme`` relative to *No-partitions*."""
        base = self.results["no-partitions"].mean_cpi
        return relative(self.results[scheme].mean_cpi, base)


#: per-worker payload installed by :func:`_sweep_init` (also set
#: in-process on the serial path).
_WORKER: dict = {}


def _sweep_init(cfg: SystemConfig, settings: RunSettings) -> None:
    _WORKER["cfg"] = cfg
    _WORKER["settings"] = settings


def _sweep_run(item: tuple[Mix, str]) -> SystemResult:
    """Simulate one (mix, scheme) work item (pure given the payload)."""
    mix, scheme = item
    return run_mix(mix, scheme, _WORKER["cfg"], _WORKER["settings"])


def compare_schemes(
    mix: Mix,
    config: SystemConfig | None = None,
    settings: RunSettings | None = None,
    schemes: tuple[str, ...] = DETAILED_SCHEMES,
    *,
    jobs: int | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> SchemeComparison:
    """Run one mix under every scheme in ``schemes`` (same traces/seed;
    default: the paper's three detailed schemes — any registered policy
    name is accepted).

    The schemes are independent simulations of identical traces, so
    ``jobs`` runs them concurrently with bit-identical results (default
    serial; see :func:`repro.parallel.executor.resolve_jobs`).

    With a ``tracer`` attached (and ``settings.trace`` enabled so the
    simulations record events), each run's event stream is merged into the
    tracer in submission order, scheme-tagged — identical for every
    ``jobs`` value.
    """
    cfg = config or scaled_config()
    st = settings or RunSettings()
    executor = ParallelExecutor(
        jobs, initializer=_sweep_init, initargs=(cfg, st),
        tracer=tracer, metrics=metrics,
    )
    results: dict[str, SystemResult] = {}
    for scheme, res in zip(
        schemes,
        executor.map_ordered(
            _sweep_run,
            [(mix, s) for s in schemes],
            labels=[f"{mix}:{s}" for s in schemes],
        ),
    ):
        if tracer is not None:
            # worker-side tracers validated every event on emit, so the
            # merge takes the pre-validated fast path
            tracer.extend(res.events, scheme=scheme, pre_validated=True)
        results[scheme] = res
    return SchemeComparison(mix, results)


def _restore_comparisons(
    completed: list, mixes: Sequence[Mix], schemes: tuple[str, ...]
) -> list[SchemeComparison]:
    """Checkpointed items back to comparisons, validating each shape."""
    if len(completed) > len(mixes):
        raise CheckpointCorrupt(
            f"checkpoint holds {len(completed)} completed mixes but this "
            f"sweep only has {len(mixes)}"
        )
    out = []
    for i, item in enumerate(completed):
        if not isinstance(item, dict) or set(item) != set(schemes):
            raise CheckpointCorrupt(
                f"checkpoint item #{i} holds schemes "
                f"{sorted(item) if isinstance(item, dict) else item!r}, "
                f"expected {sorted(schemes)}"
            )
        out.append(
            SchemeComparison(
                mixes[i],
                {s: SystemResult.from_dict(d) for s, d in item.items()},
            )
        )
    return out


def run_sweep(
    mixes: Sequence[Mix],
    config: SystemConfig | None = None,
    settings: RunSettings | None = None,
    schemes: tuple[str, ...] = DETAILED_SCHEMES,
    *,
    checkpoint_path: str | None = None,
    resume: bool = False,
    jobs: int | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[SchemeComparison]:
    """Detailed-simulation sweep over many mixes, resumable mid-run.

    Each completed (mix, all-schemes) comparison is recorded in an atomic
    JSON checkpoint (see :mod:`repro.resilience.checkpoint`); with
    ``resume=True`` a killed sweep restarts after its last completed mix and
    reproduces the uninterrupted sweep exactly, because every mix's
    simulation is fully determined by (mix, config, settings).  A snapshot
    from different parameters raises
    :class:`~repro.resilience.errors.CheckpointMismatchError`.

    ``jobs`` fans the independent (mix, scheme) simulations out over worker
    processes; results merge in submission order, so both the returned
    comparisons and the checkpoint prefix are bit-identical for every
    ``jobs`` value.
    """
    cfg = config or scaled_config()
    st = settings or RunSettings()
    meta = {
        "schemes": list(schemes),
        "mixes": [list(m.names) for m in mixes],
        "seed": st.seed,
        "duration_cycles": st.duration_cycles,
        "num_cores": cfg.num_cores,
        "epoch_cycles": cfg.epoch_cycles,
    }
    ckpt = SweepCheckpoint(
        checkpoint_path, "detailed-sweep", meta,
        every=cfg.resilience.checkpoint_every, resume=resume,
    )
    out = _restore_comparisons(ckpt.completed, mixes, schemes)
    todo = list(mixes[len(out):])
    items = [(mix, scheme) for mix in todo for scheme in schemes]
    executor = ParallelExecutor(
        jobs, initializer=_sweep_init, initargs=(cfg, st),
        tracer=tracer, metrics=metrics,
    )
    try:
        gathered: dict[str, SystemResult] = {}
        heartbeat = max(1, len(todo) // 100)
        start = wall_clock() if tracer is not None else 0.0
        for (mix, scheme), res in zip(
            items,
            executor.map_ordered(
                _sweep_run, items,
                labels=[f"{m}:{s}" for m, s in items],
            ),
        ):
            if tracer is not None:
                tracer.extend(
                    res.events, scheme=f"{mix}:{scheme}", pre_validated=True
                )
            gathered[scheme] = res
            if len(gathered) == len(schemes):
                comp = SchemeComparison(mix, gathered)
                gathered = {}
                out.append(comp)
                ckpt.record({s: r.to_dict() for s, r in comp.results.items()})
                done = len(out)
                if tracer is not None and (
                    done % heartbeat == 0 or done == len(mixes)
                ):
                    tracer.emit(
                        "progress", done=done, total=len(mixes),
                        source="sweep", wall_s=wall_clock() - start,
                    )
    finally:
        ckpt.save()
    return out
