"""Full-system discrete-event simulation."""

from repro.sim.controller import EpochController
from repro.sim.runner import (
    RunSettings,
    SchemeComparison,
    build_system,
    compare_schemes,
    run_mix,
    run_sweep,
)
from repro.sim.stats import CoreResult, EpochRecord, SystemResult
from repro.sim.system import (
    ALL_SIM_SCHEMES,
    DETAILED_SCHEMES,
    SIM_BACKENDS,
    CMPSystem,
)

__all__ = [
    "ALL_SIM_SCHEMES",
    "CMPSystem",
    "CoreResult",
    "DETAILED_SCHEMES",
    "EpochController",
    "EpochRecord",
    "RunSettings",
    "SIM_BACKENDS",
    "SchemeComparison",
    "SystemResult",
    "build_system",
    "compare_schemes",
    "run_mix",
    "run_sweep",
]
