"""The epoch-based dynamic repartitioning controller (paper Section IV).

"The frequency of evaluating and reallocating the L2 cache partitions was
set to a 100M cycle epoch."  At each epoch boundary the controller reads the
per-core MSA profilers, computes a fresh Bank-aware assignment, installs it
on the NUCA (replacement-mask enforcement only — resident lines drain
naturally), and exponentially decays the histograms so the next decision
tracks phase changes without forgetting instantly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cache.nuca import NucaL2
from repro.partitioning.allocation import (
    decision_to_partition_map,
    vector_to_private_map,
)
from repro.partitioning.bank_aware import bank_aware_partition
from repro.partitioning.unrestricted import unrestricted_partition
from repro.profiling.miss_curve import MissCurve
from repro.sim.stats import EpochRecord


class EpochController:
    """Drives dynamic repartitioning from live profiler state.

    ``algorithm='bank-aware'`` is the paper's scheme; ``'unrestricted'``
    runs the UCP-lookahead baseline instead, materialised as contiguous
    private way regions (physically unrealistic — it straddles banks in
    arbitrary fractions — which is exactly what makes it the idealised
    comparison point)."""

    def __init__(
        self,
        l2: NucaL2,
        profilers: Sequence,
        workload_names: Sequence[str],
        *,
        epoch_cycles: float,
        max_ways_per_core: int,
        decay: float = 0.5,
        min_observations: int = 1000,
        algorithm: str = "bank-aware",
    ) -> None:
        if algorithm not in ("bank-aware", "unrestricted"):
            raise ValueError("algorithm must be 'bank-aware' or 'unrestricted'")
        if epoch_cycles <= 0:
            raise ValueError("epoch length must be positive")
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if len(profilers) != len(workload_names):
            raise ValueError("one profiler per workload required")
        self.l2 = l2
        self.profilers = list(profilers)
        self.names = list(workload_names)
        self.epoch_cycles = epoch_cycles
        self.max_ways_per_core = max_ways_per_core
        self.decay = decay
        self.min_observations = min_observations
        self.algorithm = algorithm
        self.next_epoch = epoch_cycles
        self.history: list[EpochRecord] = []

    def due(self, now: float) -> bool:
        return now >= self.next_epoch

    def tick(self, now: float) -> bool:
        """Repartition if an epoch boundary has passed; returns True when a
        new partition was installed."""
        if not self.due(now):
            return False
        while self.next_epoch <= now:
            self.next_epoch += self.epoch_cycles
        total_observed = sum(float(p.histogram.sum()) for p in self.profilers)
        if total_observed < self.min_observations:
            return False  # not enough profile signal yet; keep current map
        curves = [
            MissCurve.from_histogram(name, prof.histogram)
            for name, prof in zip(self.names, self.profilers)
        ]
        if self.algorithm == "bank-aware":
            decision = bank_aware_partition(
                curves,
                num_banks=self.l2.config.num_banks,
                bank_ways=self.l2.config.bank_ways,
                max_ways_per_core=self.max_ways_per_core,
            )
            pmap = decision_to_partition_map(
                decision, num_banks=self.l2.config.num_banks
            )
            record = EpochRecord(
                now, decision.ways, decision.center_banks, decision.pairs
            )
        else:
            ways = unrestricted_partition(
                curves, self.l2.config.num_banks * self.l2.config.bank_ways
            )
            pmap = vector_to_private_map(
                ways,
                num_banks=self.l2.config.num_banks,
                bank_ways=self.l2.config.bank_ways,
            )
            record = EpochRecord(now, tuple(ways))
        self.l2.apply_partition(pmap)
        self.history.append(record)
        for prof in self.profilers:
            prof.decay(self.decay)
        return True

    @property
    def last_decision(self) -> EpochRecord | None:
        return self.history[-1] if self.history else None
