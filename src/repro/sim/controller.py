"""The epoch-based dynamic repartitioning controller (paper Section IV).

"The frequency of evaluating and reallocating the L2 cache partitions was
set to a 100M cycle epoch."  At each epoch boundary the controller reads the
per-core MSA profilers, computes a fresh Bank-aware assignment, installs it
on the NUCA (replacement-mask enforcement only — resident lines drain
naturally), and exponentially decays the histograms so the next decision
tracks phase changes without forgetting instantly.

With a :class:`~repro.resilience.guard.DecisionGuard` attached the
controller additionally *contains* bad decisions: every histogram it is
about to trust is health-checked (and optionally filtered through a
:class:`~repro.resilience.faults.FaultInjector` for failure testing), every
fresh decision is validated against the hard partitioning invariants, and
on any violation the last-known-good partition stays installed while the
guard's degraded-mode ladder (bank-aware → equal-share → frozen) decides
how aggressively to retreat.
"""

from __future__ import annotations

import numpy as np

from collections.abc import Sequence

from repro.cache.nuca import NucaL2
from repro.cache.partition_map import PartitionMap, equal_partition_map
from repro.partitioning.bank_aware import BankAwareDecision
from repro.partitioning.registry import PolicyContext, get_policy
from repro.profiling.miss_curve import MissCurve
from repro.errors import ConfigError, PartitionInvariantError, ReproError
from repro.resilience.faults import FaultInjector
from repro.resilience.guard import DecisionGuard, DegradedMode
from repro.resilience.sanitizer import ReproSanitizer
from repro.sim.stats import EpochRecord
from repro.telemetry.spans import SpanRecorder, maybe_span
from repro.telemetry.tracer import Tracer


class EpochController:
    """Drives dynamic repartitioning from live profiler state.

    ``algorithm`` names any *dynamic* policy in the registry
    (:mod:`repro.partitioning.registry`): ``'bank-aware'`` is the paper's
    scheme, ``'unrestricted'`` the UCP-lookahead baseline materialised as
    contiguous private way regions (physically unrealistic — which is
    exactly what makes it the idealised comparison point), ``'bank-bw'``
    and ``'joint'`` the related-work policies of the policy lab.

    ``guard`` enables containment (see module docstring); ``fault_injector``
    corrupts what the controller reads, for resilience testing.  Both are
    optional and default to the historical unguarded behaviour.
    ``regulator`` is the bank-bandwidth regulator of ``needs_bank_queues``
    policies, handed to each decision through the policy context.
    """

    def __init__(
        self,
        l2: NucaL2,
        profilers: Sequence,
        workload_names: Sequence[str],
        *,
        epoch_cycles: float,
        max_ways_per_core: int,
        decay: float = 0.5,
        min_observations: int = 1000,
        algorithm: str = "bank-aware",
        guard: DecisionGuard | None = None,
        fault_injector: FaultInjector | None = None,
        sanitizer: ReproSanitizer | None = None,
        tracer: Tracer | None = None,
        spans: SpanRecorder | None = None,
        regulator=None,
    ) -> None:
        policy = get_policy(algorithm)
        if not policy.dynamic:
            raise ConfigError(
                f"policy {algorithm!r} is static; the epoch controller "
                "drives dynamic policies only"
            )
        if epoch_cycles <= 0:
            raise ConfigError("epoch length must be positive")
        if not 0.0 <= decay <= 1.0:
            raise ConfigError("decay must be in [0, 1]")
        if len(profilers) != len(workload_names):
            raise ConfigError("one profiler per workload required")
        if min_observations < 0:
            raise ConfigError("min_observations must be non-negative")
        if max_ways_per_core < 1:
            raise ConfigError("max_ways_per_core must be at least 1")
        self.l2 = l2
        self.profilers = list(profilers)
        self.names = list(workload_names)
        self.epoch_cycles = epoch_cycles
        self.max_ways_per_core = max_ways_per_core
        self.decay = decay
        self.min_observations = min_observations
        self.algorithm = algorithm
        self.policy = policy
        self.regulator = regulator
        self.guard = guard
        self.fault_injector = fault_injector
        self.sanitizer = sanitizer
        self.tracer = tracer
        self.spans = spans
        self.next_epoch = epoch_cycles
        self.epoch_index = 0  #: boundaries evaluated (fault windows key on it)
        self.history: list[EpochRecord] = []
        self._equal_installed = False

    def due(self, now: float) -> bool:
        return now >= self.next_epoch

    # -- decision pipeline --------------------------------------------------

    def _read_histograms(self, epoch: int) -> list[np.ndarray]:
        """The histograms the controller trusts (possibly fault-filtered)."""
        hists = [p.histogram for p in self.profilers]
        if self.fault_injector is not None:
            hists = [
                self.fault_injector.filter_histogram(core, h, epoch)
                for core, h in enumerate(hists)
            ]
        return hists

    def _decide(
        self, now: float, curves: list[MissCurve]
    ) -> tuple[PartitionMap, EpochRecord, BankAwareDecision | None]:
        """One fresh policy decision, invariant-checked via the guard."""
        ctx = PolicyContext(
            num_cores=len(self.profilers),
            num_banks=self.l2.config.num_banks,
            bank_ways=self.l2.config.bank_ways,
            max_ways_per_core=self.max_ways_per_core,
            now=now,
            regulator=self.regulator,
        )
        verdict = self.policy.decide(curves, ctx)
        if verdict.pmap is None:
            raise PartitionInvariantError(
                f"dynamic policy {self.policy.name!r} returned no "
                "partition map to install"
            )
        decision = verdict.bank_decision
        if self.guard is not None:
            if decision is not None:
                self.guard.validate_decision(
                    decision.ways, decision.center_banks, decision.pairs
                )
            else:
                self.guard.validate_vector(verdict.ways)
        record = EpochRecord(
            now,
            verdict.ways,
            decision.center_banks if decision is not None else None,
            decision.pairs if decision is not None else None,
        )
        return verdict.pmap, record, decision

    def _apply_degraded(self, mode: DegradedMode) -> None:
        """Realise a non-NORMAL ladder rung on the cache.

        EQUAL_SHARE installs the paper's Equal-partitions map once per
        descent (skipped when banks do not divide evenly — the guard then
        simply holds the last-known-good map); FROZEN touches nothing.
        """
        if mode is DegradedMode.EQUAL_SHARE and not self._equal_installed:
            try:
                pmap = equal_partition_map(
                    len(self.profilers),
                    self.l2.config.num_banks,
                    self.l2.config.bank_ways,
                )
            except ValueError:
                return
            self.l2.apply_partition(pmap)
            if self.sanitizer is not None:
                self.sanitizer.check_epoch_install(self.l2, pmap)
            self._equal_installed = True
        elif mode is DegradedMode.NORMAL:
            self._equal_installed = False

    def _finish_epoch(self) -> None:
        for prof in self.profilers:
            prof.decay(self.decay)

    # -- telemetry (every emission is guarded: off => zero allocations) -----

    def _trace_skip(self, now: float, epoch: int, reason: str) -> None:
        if self.tracer is not None:
            self.tracer.emit("epoch_skip", time=now, epoch=epoch,
                             reason=reason)

    def _trace_decision(
        self, now: float, epoch: int, curves: list[MissCurve],
        record: EpochRecord,
    ) -> None:
        if self.tracer is None:
            return
        # center_banks/pairs are optional in the schema: policies without
        # the Bank-aware structure must *omit* them, not emit None (the
        # historical emitter sent None and broke any traced vector-only
        # run at the validation layer)
        structure = {}
        if record.center_banks is not None:
            structure["center_banks"] = record.center_banks
        if record.pairs is not None:
            structure["pairs"] = record.pairs
        self.tracer.emit(
            "epoch_decision",
            time=now,
            epoch=epoch,
            algorithm=self.algorithm,
            policy=self.policy.name,
            ways=record.ways,
            projected_misses=[
                curve.misses_at(int(w))
                for curve, w in zip(curves, record.ways)
            ],
            **structure,
        )

    def _trace_guard_events(self, epoch: int, start: int) -> None:
        """Mirror guard-ladder events logged since ``start`` into the trace."""
        if self.tracer is None or self.guard is None:
            return
        for e in self.guard.events[start:]:
            self.tracer.emit("guard_action", time=e.time, epoch=epoch,
                             kind=e.kind, detail=e.detail, mode=e.mode)

    def tick(self, now: float) -> bool:
        """Repartition if an epoch boundary has passed; returns True when a
        new partition was installed."""
        if not self.due(now):
            return False
        while self.next_epoch <= now:
            self.next_epoch += self.epoch_cycles
        epoch = self.epoch_index
        self.epoch_index += 1
        if self.fault_injector is not None and self.fault_injector.drops_epoch(
            epoch
        ):
            # the boundary never fired: no decision, no decay
            self._trace_skip(now, epoch, "fault injector dropped the boundary")
            return False
        with maybe_span(self.spans, "profiler.observe"):
            hists = self._read_histograms(epoch)
        if self.sanitizer is not None:
            # Mass conservation runs OUTSIDE guard containment on purpose:
            # a tampered histogram must stop the run, not degrade it.
            for core, (prof, hist) in enumerate(zip(self.profilers, hists)):
                self.sanitizer.check_profiler(prof, core=core)
                self.sanitizer.check_trusted_histogram(prof, hist, core=core)
        total_observed = sum(float(np.abs(h).sum()) for h in hists)
        if total_observed < self.min_observations:
            # not enough profile signal yet; keep current map
            self._trace_skip(
                now, epoch,
                f"insufficient observations "
                f"({total_observed:.0f} < {self.min_observations})",
            )
            return False
        if self.guard is None:
            return self._tick_unguarded(now, epoch, hists)
        return self._tick_guarded(now, epoch, hists, self.guard)

    def _tick_unguarded(
        self, now: float, epoch: int, hists: list[np.ndarray]
    ) -> bool:
        curves = [
            MissCurve.from_histogram(name, h)
            for name, h in zip(self.names, hists)
        ]
        with maybe_span(self.spans, "policy.decide"):
            pmap, record, decision = self._decide(now, curves)
        with maybe_span(self.spans, "install"):
            self.l2.apply_partition(pmap)
            if self.sanitizer is not None:
                self.sanitizer.check_epoch_install(self.l2, pmap, decision)
        self.history.append(record)
        self._trace_decision(now, epoch, curves, record)
        self._finish_epoch()
        return True

    def _tick_guarded(
        self, now: float, epoch: int, hists: list[np.ndarray],
        guard: DecisionGuard,
    ) -> bool:
        per_core_min = self.min_observations / max(len(self.profilers), 1)
        guard_log_start = len(guard.events)
        try:
            with maybe_span(self.spans, "guard.check"):
                curves = [
                    guard.checked_curve(
                        name, core, h, min_observations=per_core_min
                    )
                    for core, (name, h) in enumerate(zip(self.names, hists))
                ]
            with maybe_span(self.spans, "policy.decide"):
                pmap, record, decision = self._decide(now, curves)
        except ReproError as error:
            mode = guard.note_failure(now, error)
            self._apply_degraded(mode)
            self._trace_guard_events(epoch, guard_log_start)
            self._finish_epoch()
            return False
        mode = guard.note_healthy(now)
        if mode is not DegradedMode.NORMAL:
            # healthy epoch, but hysteresis keeps us on a lower rung —
            # hold the degraded partition rather than flap.
            self._apply_degraded(mode)
            self._trace_guard_events(epoch, guard_log_start)
            self._trace_skip(
                now, epoch, f"hysteresis hold on rung {mode.value}"
            )
            self._finish_epoch()
            return False
        self._apply_degraded(mode)
        with maybe_span(self.spans, "install"):
            self.l2.apply_partition(pmap)
            if self.sanitizer is not None:
                # Post-install deep check, outside containment: if
                # aggregation broke Rules 1-3 or way conservation, fail
                # loudly.
                self.sanitizer.check_epoch_install(self.l2, pmap, decision)
        guard.record_install(pmap)
        self.history.append(record)
        self._trace_guard_events(epoch, guard_log_start)
        self._trace_decision(now, epoch, curves, record)
        self._finish_epoch()
        return True

    @property
    def last_decision(self) -> EpochRecord | None:
        return self.history[-1] if self.history else None

    @property
    def mode(self) -> DegradedMode:
        """Current ladder rung (NORMAL when running unguarded)."""
        return self.guard.mode if self.guard is not None else DegradedMode.NORMAL
