"""Struct-of-arrays batched execution backend for :class:`CMPSystem`.

The reference backend (``repro.sim.system``) pays Python object overhead on
every L2 access: a heap push/pop, an ``AccessResult`` allocation, dict+list
churn inside :class:`~repro.cache.cacheset.CacheSet`, and a per-access MSA
profiler update.  This module re-executes the *same* simulation on flat
arrays with a single tight event loop, deferring profiler observations to
vectorised ``observe_many`` batches.  See DESIGN.md §15.

Bit-identity with the reference loop is a hard requirement (it is gated by
``repro diff`` in CI and by the property tests in
``tests/test_sim_backends.py``).  The rules that make it hold:

* **Event order.** The reference heap orders events by ``(arrival, core)``
  tuples.  The engine keeps a per-core next-arrival array and picks the
  lexicographic ``(t, i)`` minimum each iteration — a strict ``<`` scan in
  core order resolves ties to the lowest core, the exact order the heap
  pops.
* **Float arithmetic.** Every IEEE operation of the reference path is
  reproduced with the same operands in the same association: queue delays
  (``max(0.0, next_free - arrival)``), latency accumulation
  (bank latency, then memory latency, then memory queue delay), and the
  MLP-divided timer advance.  Compute advances are precomputed vectorised
  as ``gaps * nonmem_cpi`` — elementwise float64, bit-equal to the scalar
  product.  Instruction and access counters are integers, so they are
  order-free and recovered from prefix sums instead of per-event adds.
* **Batch boundaries.** Controller ticks, warmup crossings and
  ``max_cycles`` are folded into one *barrier* cycle count; an event at or
  past the barrier takes a slow path that re-runs the reference checks in
  the reference order (max_cycles, tick, warmup mark, then the access).
  Deferred profiler batches are flushed before any *due* tick, so epoch
  decisions see exactly the accesses that precede the boundary event.
* **Directory encoding.** The NUCA directory is one dict
  ``line -> (bank << slot_bits) | slot`` whose value doubles as the index
  into the flat tag/dirty/owner/stamp arrays, so a hit resolves bank,
  way *and* storage with a single lookup.  The dict performs the same key
  insert/delete sequence as the reference's ``l2._where``, and
  ``check_in`` rebuilds ``l2._where`` from it (same content, same
  insertion order) at every synchronisation point.
* **Victim selection.** Replacement scans the set's slice of the flat
  arrays: first empty way, else the lowest LRU stamp with ties to the
  lowest way.  Each core's candidate ways per bank are precomputed as a
  *span*: ``True`` when the core owns the whole set (one
  ``list.index``/``min`` over the full slice), ``(lo, hi)`` for a partial
  contiguous range (the same scan over the sub-slice), and only a
  fragmented way mask — never produced by the current partitioners —
  falls back to the explicit per-way loop.  All three reproduce
  :meth:`CacheSet.insert` exactly.
* **Shared mutable state.** The engine mutates the round-robin cursors and
  the per-core NucaStats arrays in place — the same objects the reference
  path uses — and checks the flat cache image back into the ``CacheSet``
  objects at the rare synchronisation points (before sanitised controller
  ticks and at run end), so the sanitizer, tracer and ``results()`` always
  read coherent object state.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.cpu.core import CoreSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import CMPSystem

#: accesses materialised from the numpy trace columns per refill; scalar
#: list indexing is ~5x cheaper than numpy scalar indexing on this path.
CHUNK = 8192

_INF = float("inf")

# placement-mode codes for the per-access dispatch
_SH_DNUCA, _SH_HASH, _SH_PAR, _P_AGG, _P_DNUCA = range(5)


def run_batched(system: "CMPSystem") -> None:  # noqa: C901 - one hot loop
    """Execute ``system``'s event loop on the struct-of-arrays engine.

    Leaves ``system`` (timers, caches, stats, controller, tracer,
    ``stop_time``, trace positions) in exactly the state the reference
    loop would have produced.
    """
    config = system.config
    ncores = config.num_cores
    l2 = system.l2
    banks = l2.banks
    nbanks = len(banks)
    ways = l2.config.bank_ways
    nsets = banks[0].num_sets
    set_mask = banks[0]._set_mask
    set_bits = l2._set_bits
    max_demotions = l2.max_demotions
    bank_orders = l2.bank_orders
    order_pos = l2._order_pos

    if l2._mode == "shared":
        mode = {"dnuca": _SH_DNUCA, "hash": _SH_HASH, "parallel": _SH_PAR}[
            l2.placement
        ]
    else:
        mode = _P_DNUCA if l2.placement == "dnuca" else _P_AGG
    promote_on_hit = l2.promote_on_hit

    # -- check out cache state into flat arrays ------------------------------
    # One list per field across all banks; bank b owns the index range
    # [b << slot_bits, b << slot_bits + nsets*ways).  Tags use -1 as the
    # empty sentinel (line numbers are non-negative).
    slot_bits = max(1, (nsets * ways - 1).bit_length())
    stride = 1 << slot_bits
    pad = stride - nsets * ways
    ftags: list[int] = []
    fdirty: list[bool] = []
    fowners: list[int] = []
    fstamps: list[int] = []
    bclocks: list[list[int]] = []
    bmaps: list[dict[int, int]] = []
    bocc = [0] * nbanks
    # per-set empty-way count, indexed by the set's flat base slot; lets
    # full sets (the steady state) skip the tag scan entirely
    socc = [0] * (nbanks << slot_bits)
    for b, bank in enumerate(banks):
        gb = b << slot_bits
        clk: list[int] = []
        bmap: dict[int, int] = {}
        for si, cs in enumerate(bank.sets):
            base = gb + si * ways
            for w, tg in enumerate(cs._tags):
                if tg is None:
                    ftags.append(-1)
                    socc[base] += 1
                else:
                    ftags.append(tg)
                    bmap[tg] = base + w
                    bocc[b] += 1
            fdirty.extend(cs._dirty)
            fowners.extend(cs._owner)
            fstamps.extend(cs._stamps)
            clk.append(cs._clock)
        if pad:
            ftags.extend([-1] * pad)
            fdirty.extend([False] * pad)
            fowners.extend([-1] * pad)
            fstamps.extend([0] * pad)
        bclocks.append(clk)
        bmaps.append(bmap)

    # encoded directory: the value is the flat slot index.  Seeded in
    # l2._where's insertion order and driven with the same key-op sequence,
    # so the check-in rebuild reproduces the reference dict exactly.
    enc_dir: dict[int, int] = {
        ln: bmaps[bk][ln] for ln, bk in l2._where.items()
    }

    # bank-level stats as per-core matrices (dicts rebuilt at check-in)
    bhits = [[bank.stats.hits.get(c, 0) for c in range(ncores)] for bank in banks]
    bmiss = [[bank.stats.misses.get(c, 0) for c in range(ncores)] for bank in banks]
    bevict = [bank.stats.evictions for bank in banks]
    bwb = [bank.stats.writebacks for bank in banks]

    # NUCA-level stats: the per-core arrays are mutated in place (aliased).
    # Hit/miss counters are integers, hence order-free: the loop only
    # maintains the per-(bank, core) matrices and the NUCA totals are
    # recovered as base + column sums at synchronisation points.
    nhits = l2.stats._hits
    nmiss = l2.stats._misses
    nh_base = [nhits[cc] - sum(row[cc] for row in bhits) for cc in range(ncores)]
    nm_base = [nmiss[cc] - sum(row[cc] for row in bmiss) for cc in range(ncores)]
    nmig = l2.stats.migrations
    nwb = l2.stats.writebacks
    shared_rr = l2._shared_rr

    # contention ports
    contention = system.contention
    bank_busy = contention.ports[0].busy_cycles
    pnext = [p.next_free for p in contention.ports]
    pdelay = [p.total_queue_delay for p in contention.ports]
    # served counts are derivable: every access takes exactly one bank
    # port (the bank whose hit/miss stat it bumps) and every miss takes
    # the memory port once, so they too become base + sums at sync points
    pbase = [
        contention.ports[b].served - sum(bhits[b]) - sum(bmiss[b])
        for b in range(nbanks)
    ]
    mport = contention.memory_port
    mem_busy = mport.busy_cycles
    mnext = mport.next_free
    mbase = mport.served - sum(sum(row) for row in bmiss)
    mdelay = mport.total_queue_delay
    mem_lat = config.memory.latency_cycles
    lat = system._lat

    # core timers (initial values; time lives in `arrival` during the run)
    timers = system.timers
    ctime = [t.time for t in timers]
    cinstr = [t.instructions for t in timers]
    cstall = [t.mem_stall for t in timers]
    cacc = [t.accesses for t in timers]
    cmlp = [t.mlp for t in timers]

    # traces: numpy columns; scalar access goes through tolist() chunks
    lines_np = system._lines
    writes_np = system._writes
    comp_np = [
        g.astype(np.float64) * timers[c].nonmem_cpi
        for c, g in enumerate(system._gaps)
    ]
    counts = system._len
    poss = list(system._pos)
    pos0 = list(poss)
    # instructions are an order-free integer sum: recover them from a
    # prefix sum over gaps+1 instead of adding per event.  icum[c][j] is
    # the instruction count after scheduling access j-1.
    icum: list[np.ndarray] = []
    for c in range(ncores):
        ex = np.zeros(counts[c] + 1, dtype=np.int64)
        if counts[c]:
            np.cumsum(system._gaps[c].astype(np.int64) + 1, out=ex[1:])
        icum.append(cinstr[c] - ex[poss[c]] + ex)
    clines: list[list[int]] = [[] for _ in range(ncores)]
    cwrites: list[list[bool]] = [[] for _ in range(ncores)]
    ccomp: list[list[float]] = [[] for _ in range(ncores)]
    cb_start = [0] * ncores

    # first position past the loaded chunk; doubles as the trace-end
    # sentinel so the hot loop needs a single boundary compare
    climit = [0] * ncores

    def load_chunk(cc: int, start: int) -> None:
        stop_i = min(start + CHUNK, counts[cc])
        clines[cc] = lines_np[cc][start:stop_i].tolist()
        cwrites[cc] = writes_np[cc][start:stop_i].tolist()
        ccomp[cc] = comp_np[cc][start:stop_i].tolist()
        cb_start[cc] = start
        climit[cc] = stop_i

    # deferred profiler batches: per-core [pend[c], pos) awaits observe_many
    profilers = system.profilers
    pend = list(poss)

    controller = system.controller
    # bank-bw regulator: mutated in place (never rebound), charged per
    # access in the hot loop in the same event order as the reference
    regulator = system.regulator
    next_epoch = controller.next_epoch if controller is not None else _INF
    sanitizer = system.sanitizer
    tracer = system.tracer
    spans = system.spans
    warmup = system.warmup_cycles
    max_cycles = system.max_cycles
    have_max = max_cycles is not None
    marked = [s is not None for s in system._start_snaps]

    # -- partition mirrors (refreshed after every due controller tick) -------
    cands: list[list[tuple[int, ...]]] = []
    chains: dict[int, list[int]] = {}
    rr: dict[int, int] = {}
    l1banks: dict[int, list[int]] = {}
    l2bank: dict[int, int] = {}
    cpos: list[list[int]] = []
    cspan: list[list[tuple[int, int] | None]] = []
    clens: list[int] = []
    placement_hash = l2.placement == "hash"
    # static under shared dnuca: distance rank of each bank per core
    opos = [
        [order_pos[cc].get(bk, 0) for bk in range(nbanks)]
        for cc in range(ncores)
    ]

    def refresh_partition() -> None:
        nonlocal cands, chains, rr, l1banks, l2bank, cpos, cspan, clens
        cands = [
            [bank.candidates_for(cc) for cc in range(ncores)] for bank in banks
        ]
        # candidates_for enumerates ways ascending, so a candidate set
        # that is a contiguous range victim-scans at C speed over the flat
        # slice (first empty, else min stamp); only a fragmented way mask
        # (never produced by the current partitioners) falls back to the
        # per-way loop
        cspan = [
            [
                (True if len(cand) == ways else (cand[0], cand[-1] + 1))
                if cand and cand[-1] - cand[0] + 1 == len(cand)
                else None
                for cand in row
            ]
            for row in cands
        ]
        if l2._mode == "partitioned":
            chains = l2._chain
            rr = l2._rr
            pmap = l2._pmap
            l1banks = {}
            l2bank = {}
            for cc, part in pmap.partitions.items():
                l1banks[cc] = [a.bank for a in part.level1]
                l2bank[cc] = part.level2.bank if part.level2 is not None else -1
            if mode == _P_DNUCA:
                cpos = [[-1] * nbanks for _ in range(ncores)]
                clens = [0] * ncores
                for cc, ch in chains.items():
                    row = cpos[cc]
                    for i, bk in enumerate(ch):
                        row[bk] = i
                    clens[cc] = len(ch)

    refresh_partition()

    # -- cache movement primitives (flat mirrors of bank.fill/invalidate) ----

    def bank_fill(
        b: int, line: int, core: int, dirty: bool
    ) -> tuple[int, bool, int] | None:
        """Victim-select + insert + directory insert, in reference order."""
        si = line & set_mask
        gbase = (b << slot_bits) + si * ways
        span = cspan[b][core]
        if span is True:
            if socc[gbase]:
                slot = ftags.index(-1, gbase, gbase + ways)
            else:
                sseg = fstamps[gbase:gbase + ways]
                slot = gbase + sseg.index(min(sseg))
        elif span is not None:
            lo = gbase + span[0]
            hi = gbase + span[1]
            if socc[gbase]:
                seg = ftags[lo:hi]
                if -1 in seg:
                    slot = lo + seg.index(-1)
                else:
                    sseg = fstamps[lo:hi]
                    slot = lo + sseg.index(min(sseg))
            else:
                sseg = fstamps[lo:hi]
                slot = lo + sseg.index(min(sseg))
        else:
            cand = cands[b][core]
            if not cand:
                raise PermissionError(f"core {core} owns no ways in bank {b}")
            slot = -1
            best = None
            for w in cand:
                sl = gbase + w
                if ftags[sl] == -1:
                    slot = sl
                    break
                s = fstamps[sl]
                if best is None or s < best:
                    best = s
                    slot = sl
        old = ftags[slot]
        if old != -1:
            ev = (old, fdirty[slot], fowners[slot])
            bevict[b] += 1
            if ev[1]:
                bwb[b] += 1
        else:
            ev = None
            bocc[b] += 1
            socc[gbase] -= 1
        ftags[slot] = line
        fdirty[slot] = dirty
        fowners[slot] = core
        clk = bclocks[b]
        nc = clk[si] + 1
        clk[si] = nc
        fstamps[slot] = nc
        enc_dir[line] = slot
        return ev

    def bank_fill_hash(
        b: int, line: int, core: int, dirty: bool
    ) -> tuple[int, bool, int] | None:
        """Hash-shared variant: maintains the per-bank tag map instead of
        the directory (hash mode locates lines by address alone)."""
        si = line & set_mask
        gbase = (b << slot_bits) + si * ways
        span = cspan[b][core]
        if span is True:
            if socc[gbase]:
                slot = ftags.index(-1, gbase, gbase + ways)
            else:
                sseg = fstamps[gbase:gbase + ways]
                slot = gbase + sseg.index(min(sseg))
        elif span is not None:
            lo = gbase + span[0]
            hi = gbase + span[1]
            if socc[gbase]:
                seg = ftags[lo:hi]
                if -1 in seg:
                    slot = lo + seg.index(-1)
                else:
                    sseg = fstamps[lo:hi]
                    slot = lo + sseg.index(min(sseg))
            else:
                sseg = fstamps[lo:hi]
                slot = lo + sseg.index(min(sseg))
        else:
            cand = cands[b][core]
            if not cand:
                raise PermissionError(f"core {core} owns no ways in bank {b}")
            slot = -1
            best = None
            for w in cand:
                sl = gbase + w
                if ftags[sl] == -1:
                    slot = sl
                    break
                s = fstamps[sl]
                if best is None or s < best:
                    best = s
                    slot = sl
        old = ftags[slot]
        bm = bmaps[b]
        if old != -1:
            ev = (old, fdirty[slot], fowners[slot])
            del bm[old]
            bevict[b] += 1
            if ev[1]:
                bwb[b] += 1
        else:
            ev = None
            bocc[b] += 1
            socc[gbase] -= 1
        ftags[slot] = line
        fdirty[slot] = dirty
        fowners[slot] = core
        bm[line] = slot
        clk = bclocks[b]
        nc = clk[si] + 1
        clk[si] = nc
        fstamps[slot] = nc
        return ev

    def bank_clear(b: int, slot: int) -> bool:
        """Invalidate a known flat slot; returns the line's dirty bit."""
        was = fdirty[slot]
        ftags[slot] = -1
        fdirty[slot] = False
        fowners[slot] = -1
        fstamps[slot] = 0
        bocc[b] -= 1
        socc[slot - (slot - (b << slot_bits)) % ways] += 1
        return was

    # -- placement-specific miss/migration paths (cold relative to hits) -----

    def dnuca_fill(owner: int, line: int, bank_id: int, dirty: bool) -> None:
        nonlocal nmig, nwb
        ev = bank_fill(bank_id, line, owner, dirty)
        current = bank_id
        demotions = 0
        while ev is not None:
            tag, edirty, eowner = ev
            del enc_dir[tag]
            v = eowner if 0 <= eowner < ncores else owner
            order = bank_orders[v]
            p = order_pos[v].get(current, len(order) - 1)
            if demotions >= max_demotions or p + 1 >= len(order):
                if edirty:
                    nwb += 1
                break
            target = order[p + 1]
            ev = bank_fill(target, tag, v, edirty)
            nmig += 1
            demotions += 1
            current = target

    def dnuca_promote(
        core: int, line: int, home: int, slot: int, p: int
    ) -> None:
        nonlocal nmig, nwb
        target = bank_orders[core][p - 1]
        rdirty = bank_clear(home, slot)
        del enc_dir[line]
        displaced = bank_fill(target, line, core, rdirty)
        nmig += 1
        if displaced is not None:
            dtag, ddirty, downer = displaced
            del enc_dir[dtag]
            back_owner = downer if 0 <= downer < ncores else core
            back = bank_fill(home, dtag, back_owner, ddirty)
            nmig += 1
            if back is not None:
                del enc_dir[back[0]]
                if back[1]:
                    nwb += 1

    def level1_bank(core: int, line: int) -> int:
        l1 = l1banks[core]
        n1 = len(l1)
        if n1 == 1:
            return l1[0]
        if placement_hash:
            return l1[(line >> set_bits) % n1]
        idx = rr[core] % n1
        rr[core] = idx + 1
        return l1[idx]

    def fill_demote(core: int, line: int, bank_id: int, dirty: bool) -> None:
        nonlocal nmig, nwb
        ev = bank_fill(bank_id, line, core, dirty)
        if ev is not None:
            tag, edirty, eowner = ev
            del enc_dir[tag]
            l2b = l2bank[core]
            if l2b >= 0 and bank_id != l2b and eowner == core:
                ev2 = bank_fill(l2b, tag, core, edirty)
                nmig += 1
                if ev2 is not None:
                    del enc_dir[ev2[0]]
                    if ev2[1]:
                        nwb += 1
            elif edirty:
                nwb += 1

    def agg_promote(core: int, line: int, home: int, slot: int) -> None:
        nonlocal nmig
        rdirty = bank_clear(home, slot)
        del enc_dir[line]
        fill_demote(core, line, level1_bank(core, line), rdirty)
        nmig += 1

    # -- synchronisation points ----------------------------------------------

    def flush_pending(cur_core: int, cur_pos: int) -> None:
        """Hand deferred observations to the vectorised profilers.  The
        current core's boundary event itself (index ``cur_pos``) is
        excluded — the reference observes it only after the tick."""
        if profilers is None:
            return
        for cc in range(ncores):
            end = cur_pos if cc == cur_core else poss[cc]
            start = pend[cc]
            if end > start:
                profilers[cc].observe_many(lines_np[cc][start:end])
                pend[cc] = end

    def check_in() -> None:
        """Write the flat cache image back into the object model."""
        for b, bank in enumerate(banks):
            gb = b << slot_bits
            clk = bclocks[b]
            for si in range(nsets):
                cs = bank.sets[si]
                base = gb + si * ways
                seg = ftags[base:base + ways]
                cs._tags[:] = [None if t == -1 else t for t in seg]
                cs._dirty[:] = fdirty[base:base + ways]
                cs._owner[:] = fowners[base:base + ways]
                cs._stamps[:] = fstamps[base:base + ways]
                cs._clock = clk[si]
                cs._map = {t: w for w, t in enumerate(seg) if t != -1}
            st = bank.stats
            st.hits = {cc: v for cc, v in enumerate(bhits[b]) if v}
            st.misses = {cc: v for cc, v in enumerate(bmiss[b]) if v}
            st.evictions = bevict[b]
            st.writebacks = bwb[b]
        if mode != _SH_HASH:
            l2._where = {ln: e >> slot_bits for ln, e in enc_dir.items()}
        for cc in range(ncores):
            nhits[cc] = nh_base[cc] + sum(row[cc] for row in bhits)
            nmiss[cc] = nm_base[cc] + sum(row[cc] for row in bmiss)
        l2.stats.migrations = nmig
        l2.stats.writebacks = nwb
        l2._shared_rr = shared_rr
        for i, port in enumerate(contention.ports):
            port.next_free = pnext[i]
            port.served = pbase[i] + sum(bhits[i]) + sum(bmiss[i])
            port.total_queue_delay = pdelay[i]
        mport.next_free = mnext
        mport.served = mbase + sum(sum(row) for row in bmiss)
        mport.total_queue_delay = mdelay

    def emit_snapshot(now: float, epoch: int) -> None:
        tracer.emit(
            "bank_snapshot",
            time=now,
            epoch=epoch,
            hits=[sum(h) for h in bhits],
            misses=[sum(m) for m in bmiss],
            occupancy=list(bocc),
            queue_served=[
                pbase[b] + sum(bhits[b]) + sum(bmiss[b])
                for b in range(nbanks)
            ],
            queue_delay=list(pdelay),
            migrations=nmig,
            writebacks=nwb,
            core_hits=[
                nh_base[cc] + sum(row[cc] for row in bhits)
                for cc in range(ncores)
            ],
            core_misses=[
                nm_base[cc] + sum(row[cc] for row in bmiss)
                for cc in range(ncores)
            ],
        )

    # -- initial scheduling (mirrors the reference pre-loop) -----------------
    arrival = [_INF] * ncores
    for c in range(ncores):
        if warmup == 0 and not marked[c]:
            system._start_snaps[c] = CoreSnapshot(
                ctime[c], cinstr[c], cstall[c], cacc[c]
            )
            system._start_l2[c] = (nhits[c], nmiss[c])
            marked[c] = True
        if poss[c] < counts[c]:
            load_chunk(c, poss[c])
            ctime[c] += ccomp[c][poss[c] - cb_start[c]]
            arrival[c] = ctime[c]
    nunmarked = sum(
        1 for c in range(ncores) if not marked[c] and poss[c] < counts[c]
    )

    def next_barrier() -> float:
        bar = next_epoch
        if have_max and max_cycles < bar:
            bar = max_cycles
        if nunmarked and warmup < bar:
            bar = warmup
        return bar

    barrier = next_barrier()
    enc_get = enc_dir.get
    stop: float | None = None

    # -- the flat event loop -------------------------------------------------
    # One iteration per L2 access: (rare) barrier slow path, access on the
    # flat mirrors, contention, timer advance, then one fused
    # ``heappushpop`` that schedules this core's next access and hands back
    # the globally earliest one.  (t, core) tuples compare
    # lexicographically — the reference heap's order.  On an empty heap
    # (single running core) heappushpop returns its argument unchanged,
    # which is exactly "the next event is this core's own".
    # -- hot-loop local aliases ----------------------------------------------
    # Nearly every name the event loop touches is captured by a closure
    # (check_in, load_chunk, refresh_partition, ...) and therefore lives in
    # a cell: LOAD_DEREF on every access.  Containers are mutated in place
    # and never rebound, so plain local aliases (LOAD_FAST) are safe; the
    # partition mirrors, which refresh_partition does rebind, are
    # re-aliased after every barrier slow path.  The scalar counters the
    # inlined paths bump (nmig/nwb) become local deltas folded back into
    # the cells at every synchronisation point; mnext/mdelay are aliased
    # and written back the same way.
    ftags_ = ftags
    fdirty_ = fdirty
    fowners_ = fowners
    fstamps_ = fstamps
    bclocks_ = bclocks
    socc_ = socc
    bocc_ = bocc
    enc_dir_ = enc_dir
    bhits_ = bhits
    bmiss_ = bmiss
    bevict_ = bevict
    bwb_ = bwb
    bmaps_ = bmaps
    pnext_ = pnext
    pdelay_ = pdelay
    poss_ = poss
    counts_ = counts
    climit_ = climit
    clines_ = clines
    cwrites_ = cwrites
    ccomp_ = ccomp
    cb_start_ = cb_start
    cands_ = cands
    cspan_ = cspan
    cpos_ = cpos
    clens_ = clens
    chains_ = chains
    bank_orders_ = bank_orders
    l1banks_ = l1banks
    l2bank_ = l2bank
    set_mask_ = set_mask
    slot_bits_ = slot_bits
    set_bits_ = set_bits
    ways_ = ways
    max_demotions_ = max_demotions
    nbanks_ = nbanks
    mnext_ = mnext
    mdelay_ = mdelay
    nmig_d = 0
    nwb_d = 0
    is_pdnuca = mode == _P_DNUCA
    is_pagg = mode == _P_AGG
    is_shdnuca = mode == _SH_DNUCA
    is_shhash = mode == _SH_HASH
    heap = sorted((arrival[cc], cc) for cc in range(ncores) if arrival[cc] != _INF)
    heappushpop = heapq.heappushpop
    if not heap:
        t, c = _INF, -1
    else:
        t, c = heapq.heappop(heap)
    while c >= 0:

        if t >= barrier:
            # push the deferred scalar counters back into the closure
            # cells before anything (sanitizer check-in, controller tick,
            # snapshot) reads them
            nmig += nmig_d
            nwb += nwb_d
            nmig_d = nwb_d = 0
            mnext = mnext_
            mdelay = mdelay_
            # reference per-event check order: max_cycles, tick, warmup
            if have_max and t >= max_cycles:
                arrival[c] = t
                stop = max_cycles
                break
            if t >= next_epoch:
                if spans is None:
                    flush_pending(c, poss_[c])
                    if sanitizer is not None:
                        check_in()
                else:
                    with spans.span("profiler.flush"):
                        flush_pending(c, poss_[c])
                    if sanitizer is not None:
                        with spans.span("queue.drain"):
                            check_in()
                installed = controller.tick(t)
                next_epoch = controller.next_epoch
                refresh_partition()
                if installed and tracer is not None:
                    emit_snapshot(t, controller.epoch_index - 1)
            if nunmarked and t >= warmup and not marked[c]:
                pc = poss_[c]
                system._start_snaps[c] = CoreSnapshot(
                    t, int(icum[c][pc + 1]), cstall[c], cacc[c] + pc - pos0[c]
                )
                system._start_l2[c] = (
                    nh_base[c] + sum(row[c] for row in bhits_),
                    nm_base[c] + sum(row[c] for row in bmiss_),
                )
                marked[c] = True
                nunmarked -= 1
            barrier = next_barrier()
            # a due tick rebinds the partition mirrors: refresh the local
            # aliases (no-ops otherwise)
            cands_ = cands
            cspan_ = cspan
            cpos_ = cpos
            clens_ = clens
            chains_ = chains
            l1banks_ = l1banks
            l2bank_ = l2bank

        pos = poss_[c]
        i = pos - cb_start_[c]
        line = clines_[c][i]
        wr = cwrites_[c][i]

        # -- L2 access (inlined NucaL2.access on the flat mirrors) -----------
        if is_pdnuca:
            enc = enc_get(line)
            if enc is not None:
                home = enc >> slot_bits_
                si = line & set_mask_
                clk = bclocks_[home]
                ncl = clk[si] + 1
                clk[si] = ncl
                fstamps_[enc] = ncl
                if wr:
                    fdirty_[enc] = True
                bhits_[home][c] += 1
                p = cpos_[c][home]
                if p > 0:
                    # inlined chain_promote: swap the line one bank toward
                    # the chain head; every fill shares the set index.
                    target = chains_[c][p - 1]
                    rdirty = fdirty_[enc]
                    fstamps_[enc] = 0
                    ftags_[enc] = -1
                    fdirty_[enc] = False
                    fowners_[enc] = -1
                    bocc_[home] -= 1
                    base = si * ways_
                    ghome = (home << slot_bits_) + base
                    socc_[ghome] += 1
                    del enc_dir_[line]
                    gbase = (target << slot_bits_) + base
                    span = cspan_[target][c]
                    if span is True:
                        if socc_[gbase]:
                            slot = ftags_.index(-1, gbase, gbase + ways_)
                        else:
                            sseg = fstamps_[gbase:gbase + ways_]
                            slot = gbase + sseg.index(min(sseg))
                    elif span is not None:
                        lo = gbase + span[0]
                        hi = gbase + span[1]
                        if socc_[gbase]:
                            seg = ftags_[lo:hi]
                            if -1 in seg:
                                slot = lo + seg.index(-1)
                            else:
                                sseg = fstamps_[lo:hi]
                                slot = lo + sseg.index(min(sseg))
                        else:
                            sseg = fstamps_[lo:hi]
                            slot = lo + sseg.index(min(sseg))
                    else:
                        cand = cands_[target][c]
                        if not cand:
                            raise PermissionError(
                                f"core {c} owns no ways in bank {target}"
                            )
                        slot = -1
                        best = _INF
                        for w in cand:
                            sl = gbase + w
                            if ftags_[sl] == -1:
                                slot = sl
                                break
                            s = fstamps_[sl]
                            if s < best:
                                best = s
                                slot = sl
                    dtag = ftags_[slot]
                    if dtag != -1:
                        ddirty = fdirty_[slot]
                        bevict_[target] += 1
                        if ddirty:
                            bwb_[target] += 1
                    else:
                        ddirty = False
                        bocc_[target] += 1
                        socc_[gbase] -= 1
                    ftags_[slot] = line
                    fdirty_[slot] = rdirty
                    fowners_[slot] = c
                    clk = bclocks_[target]
                    ncl = clk[si] + 1
                    clk[si] = ncl
                    fstamps_[slot] = ncl
                    enc_dir_[line] = slot
                    nmig_d += 1
                    if dtag != -1:
                        # swap the displaced line back into the vacated home
                        del enc_dir_[dtag]
                        gbase = ghome
                        span = cspan_[home][c]
                        if span is True:
                            if socc_[gbase]:
                                slot = ftags_.index(-1, gbase, gbase + ways_)
                            else:
                                sseg = fstamps_[gbase:gbase + ways_]
                                slot = gbase + sseg.index(min(sseg))
                        elif span is not None:
                            lo = gbase + span[0]
                            hi = gbase + span[1]
                            if socc_[gbase]:
                                seg = ftags_[lo:hi]
                                if -1 in seg:
                                    slot = lo + seg.index(-1)
                                else:
                                    sseg = fstamps_[lo:hi]
                                    slot = lo + sseg.index(min(sseg))
                            else:
                                sseg = fstamps_[lo:hi]
                                slot = lo + sseg.index(min(sseg))
                        else:
                            cand = cands_[home][c]
                            if not cand:
                                raise PermissionError(
                                    f"core {c} owns no ways in bank {home}"
                                )
                            slot = -1
                            best = _INF
                            for w in cand:
                                sl = gbase + w
                                if ftags_[sl] == -1:
                                    slot = sl
                                    break
                                s = fstamps_[sl]
                                if s < best:
                                    best = s
                                    slot = sl
                        old = ftags_[slot]
                        if old != -1:
                            odirty = fdirty_[slot]
                            bevict_[home] += 1
                            if odirty:
                                bwb_[home] += 1
                        else:
                            odirty = False
                            bocc_[home] += 1
                            socc_[gbase] -= 1
                        ftags_[slot] = dtag
                        fdirty_[slot] = ddirty
                        fowners_[slot] = c
                        clk = bclocks_[home]
                        ncl = clk[si] + 1
                        clk[si] = ncl
                        fstamps_[slot] = ncl
                        enc_dir_[dtag] = slot
                        nmig_d += 1
                        if old != -1:
                            del enc_dir_[old]
                            if odirty:
                                nwb_d += 1
                hit = True
                bank_id = home
            else:
                chain = chains_[c]
                b = chain[0]
                bank_id = b
                # inlined chain head fill + demotion cascade: every victim
                # shares the set index (same address bits), so si/base are
                # computed once for the whole chain walk.
                si = line & set_mask_
                base = si * ways_
                gbase = (b << slot_bits_) + base
                span = cspan_[b][c]
                if span is True:
                    if socc_[gbase]:
                        slot = ftags_.index(-1, gbase, gbase + ways_)
                    else:
                        sseg = fstamps_[gbase:gbase + ways_]
                        slot = gbase + sseg.index(min(sseg))
                elif span is not None:
                    lo = gbase + span[0]
                    hi = gbase + span[1]
                    if socc_[gbase]:
                        seg = ftags_[lo:hi]
                        if -1 in seg:
                            slot = lo + seg.index(-1)
                        else:
                            sseg = fstamps_[lo:hi]
                            slot = lo + sseg.index(min(sseg))
                    else:
                        sseg = fstamps_[lo:hi]
                        slot = lo + sseg.index(min(sseg))
                else:
                    cand = cands_[b][c]
                    if not cand:
                        raise PermissionError(
                            f"core {c} owns no ways in bank {b}"
                        )
                    slot = -1
                    best = _INF
                    for w in cand:
                        sl = gbase + w
                        if ftags_[sl] == -1:
                            slot = sl
                            break
                        s = fstamps_[sl]
                        if s < best:
                            best = s
                            slot = sl
                old = ftags_[slot]
                if old != -1:
                    odirty = fdirty_[slot]
                    bevict_[b] += 1
                    if odirty:
                        bwb_[b] += 1
                else:
                    odirty = False
                    bocc_[b] += 1
                    socc_[gbase] -= 1
                ftags_[slot] = line
                fdirty_[slot] = wr
                fowners_[slot] = c
                clk = bclocks_[b]
                ncl = clk[si] + 1
                clk[si] = ncl
                fstamps_[slot] = ncl
                enc_dir_[line] = slot
                if old != -1:
                    del enc_dir_[old]
                    p = 0
                    demotions = 0
                    clen = clens_[c]
                    while True:
                        if demotions >= max_demotions_ or p + 1 >= clen:
                            if odirty:
                                nwb_d += 1
                            break
                        p += 1
                        b = chain[p]
                        gbase = (b << slot_bits_) + base
                        span = cspan_[b][c]
                        if span is True:
                            if socc_[gbase]:
                                slot = ftags_.index(-1, gbase, gbase + ways_)
                            else:
                                sseg = fstamps_[gbase:gbase + ways_]
                                slot = gbase + sseg.index(min(sseg))
                        elif span is not None:
                            lo = gbase + span[0]
                            hi = gbase + span[1]
                            if socc_[gbase]:
                                seg = ftags_[lo:hi]
                                if -1 in seg:
                                    slot = lo + seg.index(-1)
                                else:
                                    sseg = fstamps_[lo:hi]
                                    slot = lo + sseg.index(min(sseg))
                            else:
                                sseg = fstamps_[lo:hi]
                                slot = lo + sseg.index(min(sseg))
                        else:
                            cand = cands_[b][c]
                            if not cand:
                                raise PermissionError(
                                    f"core {c} owns no ways in bank {b}"
                                )
                            slot = -1
                            best = _INF
                            for w in cand:
                                sl = gbase + w
                                if ftags_[sl] == -1:
                                    slot = sl
                                    break
                                s = fstamps_[sl]
                                if s < best:
                                    best = s
                                    slot = sl
                        old2 = ftags_[slot]
                        if old2 != -1:
                            odirty2 = fdirty_[slot]
                            bevict_[b] += 1
                            if odirty2:
                                bwb_[b] += 1
                        else:
                            odirty2 = False
                            bocc_[b] += 1
                            socc_[gbase] -= 1
                        ftags_[slot] = old
                        fdirty_[slot] = odirty
                        fowners_[slot] = c
                        clk = bclocks_[b]
                        ncl = clk[si] + 1
                        clk[si] = ncl
                        fstamps_[slot] = ncl
                        enc_dir_[old] = slot
                        nmig_d += 1
                        demotions += 1
                        if old2 == -1:
                            break
                        del enc_dir_[old2]
                        old = old2
                        odirty = odirty2
                bmiss_[bank_id][c] += 1
                hit = False
        elif is_pagg:
            enc = enc_get(line)
            if enc is not None:
                home = enc >> slot_bits_
                si = line & set_mask_
                clk = bclocks_[home]
                ncl = clk[si] + 1
                clk[si] = ncl
                fstamps_[enc] = ncl
                if wr:
                    fdirty_[enc] = True
                bhits_[home][c] += 1
                if promote_on_hit and home == l2bank_[c] and l1banks_[c]:
                    agg_promote(c, line, home, enc)
                hit = True
                bank_id = home
            else:
                bank_id = level1_bank(c, line)
                fill_demote(c, line, bank_id, wr)
                bmiss_[bank_id][c] += 1
                hit = False
        elif is_shdnuca:
            enc = enc_get(line)
            if enc is not None:
                home = enc >> slot_bits_
                si = line & set_mask_
                clk = bclocks_[home]
                ncl = clk[si] + 1
                clk[si] = ncl
                fstamps_[enc] = ncl
                if wr:
                    fdirty_[enc] = True
                bhits_[home][c] += 1
                p = opos[c][home]
                if p > 0:
                    dnuca_promote(c, line, home, enc, p)
                hit = True
                bank_id = home
            else:
                bank_id = bank_orders_[c][0]
                dnuca_fill(c, line, bank_id, wr)
                bmiss_[bank_id][c] += 1
                hit = False
        elif is_shhash:
            bank_id = (line >> set_bits_) % nbanks_
            slot = bmaps_[bank_id].get(line)
            if slot is not None:
                si = line & set_mask_
                clk = bclocks_[bank_id]
                ncl = clk[si] + 1
                clk[si] = ncl
                fstamps_[slot] = ncl
                if wr:
                    fdirty_[slot] = True
                bhits_[bank_id][c] += 1
                hit = True
            else:
                bmiss_[bank_id][c] += 1
                ev = bank_fill_hash(bank_id, line, c, wr)
                if ev is not None and ev[1]:
                    nwb_d += 1
                hit = False
        else:  # _SH_PAR
            enc = enc_get(line)
            if enc is not None:
                home = enc >> slot_bits_
                si = line & set_mask_
                clk = bclocks_[home]
                ncl = clk[si] + 1
                clk[si] = ncl
                fstamps_[enc] = ncl
                if wr:
                    fdirty_[enc] = True
                bhits_[home][c] += 1
                hit = True
                bank_id = home
            else:
                bank_id = shared_rr % nbanks_
                shared_rr += 1
                ev = bank_fill(bank_id, line, c, wr)
                bmiss_[bank_id][c] += 1
                if ev is not None:
                    del enc_dir_[ev[0]]
                    if ev[1]:
                        nwb_d += 1
                hit = False

        # -- contention + latency + timer (same ops, same order; the
        # uncontended branches skip only exact no-ops: +0.0 on finite
        # non-negative floats is bitwise identity) ---------------------------
        if regulator is not None:
            # bank-bw: mirror of the reference regulator branch — the
            # throttled arrival joins the queue, and the final
            # ``lat + delay + throttle`` keeps the reference's left
            # association (throttle added last)
            throttle = regulator.charge(c, bank_id, t)
            ta = t + throttle
            nf = pnext_[bank_id]
            if nf <= ta:
                pnext_[bank_id] = ta + bank_busy
                latency = lat[c][bank_id] + throttle
            else:
                delay = nf - ta
                pnext_[bank_id] = ta + delay + bank_busy
                pdelay_[bank_id] += delay
                latency = lat[c][bank_id] + delay + throttle
        else:
            nf = pnext_[bank_id]
            if nf <= t:
                pnext_[bank_id] = t + bank_busy
                latency = lat[c][bank_id]
            else:
                delay = nf - t
                pnext_[bank_id] = t + delay + bank_busy
                pdelay_[bank_id] += delay
                latency = lat[c][bank_id] + delay
        if not hit:
            mem_arrival = t + latency
            latency += mem_lat
            if mnext_ <= mem_arrival:
                mnext_ = mem_arrival + mem_busy
            else:
                d2 = mnext_ - mem_arrival
                mnext_ = mem_arrival + d2 + mem_busy
                mdelay_ += d2
                latency += d2
        eff = latency / cmlp[c]
        cstall[c] += eff

        # -- schedule this core's next access --------------------------------
        pos += 1
        poss_[c] = pos
        if pos >= climit_[c]:
            if pos >= counts_[c]:
                arrival[c] = t + eff
                stop = t
                break
            load_chunk(c, pos)
        t, c = heappushpop(heap, (t + eff + ccomp_[c][pos - cb_start_[c]], c))

    # -- final write-back -----------------------------------------------------
    nmig += nmig_d
    nwb += nwb_d
    mnext = mnext_
    mdelay = mdelay_
    # each still-running core's next arrival lives in its heap entry (the
    # hot loop does not maintain `arrival` per event)
    for a, cc in heap:
        arrival[cc] = a
    if spans is None:
        flush_pending(-1, 0)
        check_in()
    else:
        with spans.span("profiler.flush"):
            flush_pending(-1, 0)
        with spans.span("queue.drain"):
            check_in()
    for cc in range(ncores):
        timer = timers[cc]
        a = arrival[cc]
        timer.time = ctime[cc] if a == _INF else a
        timer.instructions = int(icum[cc][min(poss[cc] + 1, counts[cc])])
        timer.mem_stall = cstall[cc]
        timer.accesses = cacc[cc] + poss[cc] - pos0[cc]
    system._pos = poss
    if stop is not None:
        system.stop_time = stop
