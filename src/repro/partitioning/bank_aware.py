"""The Bank-aware partition assignment algorithm (paper Section III.B/C).

The contribution of the paper: marginal-utility cache partitioning that
respects the physical bank structure of the DNUCA L2.  The restrictions
(Fig. 5/6):

* **Rule 1** — Center banks are assigned *whole* (8 ways) to a single core,
  so aggregated banks always have equal capacity.
* **Rule 2** — any core that receives Center banks also receives its entire
  Local bank.
* **Rule 3** — Local banks may only be way-shared between *adjacent* cores,
  keeping data transfers short; each core pairs with at most one neighbour.

The algorithm (flow chart, Fig. 6) proceeds in two phases:

1. **Center banks** — starting from every core owning its Local bank,
   repeatedly grant a whole Center bank to the core whose marginal utility
   for +8 ways is highest (subject to the 9/16 maximum-capacity cap) until
   all Center banks are assigned.  Cores that received Center banks are
   marked *complete* (Rules 1+2).
2. **Local banks** — among the remaining cores, repeatedly find the core
   with the highest marginal utility for one extra way.  Growing past its
   own 8-way Local bank overflows into a neighbour's bank, so at that point
   the *ideal pair* is chosen — the adjacent incomplete core minimising the
   pair's combined misses under the best split of their 16 shared ways —
   and both cores are marked complete (pairing is deferred until forced).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.profiling.miss_curve import MissCurve
from repro.errors import ConfigError, PartitionInvariantError


@dataclass(frozen=True)
class BankAwareDecision:
    """Outcome of the Bank-aware assignment.

    ``ways[c]`` is core *c*'s total way count; ``center_banks[c]`` how many
    whole Center banks it owns; ``pairs`` the adjacent couples sharing their
    Local banks.  Structural invariants (checked in ``__post_init__``):
    capacity adds up, center-bank cores own exactly ``8 + 8k`` ways, paired
    cores' ways sum to two Local banks, pairs are adjacent and disjoint.
    """

    ways: tuple[int, ...]
    center_banks: tuple[int, ...]
    pairs: tuple[tuple[int, int], ...]
    bank_ways: int = 8

    def __post_init__(self) -> None:
        n = len(self.ways)
        if len(self.center_banks) != n:
            raise PartitionInvariantError("one center-bank count per core required")
        paired: set[int] = set()
        for a, b in self.pairs:
            if b != a + 1:
                raise PartitionInvariantError(f"pair ({a},{b}) is not adjacent")
            if a in paired or b in paired:
                raise PartitionInvariantError("a core may belong to only one pair")
            paired.update((a, b))
            if self.center_banks[a] or self.center_banks[b]:
                raise PartitionInvariantError("center-bank cores may not share Local banks")
            if self.ways[a] + self.ways[b] != 2 * self.bank_ways:
                raise PartitionInvariantError("a pair must split exactly two Local banks")
        for core in range(n):
            if self.center_banks[core]:
                expect = self.bank_ways * (1 + self.center_banks[core])
                if self.ways[core] != expect:
                    raise PartitionInvariantError(
                        f"core {core} has {self.center_banks[core]} center "
                        f"banks but {self.ways[core]} ways (expected {expect})"
                    )
            elif core not in paired and self.ways[core] != self.bank_ways:
                raise PartitionInvariantError(
                    f"unpaired core {core} must own exactly its Local bank"
                )

    @property
    def total_ways(self) -> int:
        return sum(self.ways)

    def pair_of(self, core: int) -> tuple[int, int] | None:
        for pair in self.pairs:
            if core in pair:
                return pair
        return None


def _best_pair_split(
    curve_a: MissCurve,
    curve_b: MissCurve,
    pair_capacity: int,
    min_ways: int,
) -> tuple[int, int, float]:
    """Optimal split of ``pair_capacity`` ways between two cores: returns
    ``(ways_a, ways_b, combined_misses)`` minimising total misses."""
    best = None
    for wa in range(min_ways, pair_capacity - min_ways + 1):
        misses = curve_a.misses_at(wa) + curve_b.misses_at(pair_capacity - wa)
        if best is None or misses < best[2]:
            best = (wa, pair_capacity - wa, misses)
    if best is None:
        raise PartitionInvariantError(
            f"no feasible split of {pair_capacity} shared ways with a "
            f"{min_ways}-way floor per core"
        )
    return best


def bank_aware_partition(
    curves: Sequence[MissCurve],
    *,
    num_banks: int = 16,
    bank_ways: int = 8,
    max_ways_per_core: int | None = None,
    min_ways: int = 1,
) -> BankAwareDecision:
    """Run the Bank-aware assignment for ``len(curves)`` cores.

    The machine must have one Local bank per core; the remaining banks are
    Center banks.  ``max_ways_per_core`` defaults to the paper's 9/16 cap.
    """
    n = len(curves)
    if n < 1:
        raise ConfigError("need at least one core")
    num_centers = num_banks - n
    if num_centers < 0:
        raise ConfigError("need one Local bank per core")
    total_ways = num_banks * bank_ways
    cap = (
        (total_ways * 9) // 16 if max_ways_per_core is None else max_ways_per_core
    )
    if cap < bank_ways:
        raise ConfigError("cap must allow at least the Local bank")

    # ---- Phase A: whole Center banks by marginal utility (Boxes 1-3) ------
    alloc = [bank_ways] * n  # each Local bank assumed owned by its core
    centers = [0] * n
    for _ in range(num_centers):
        best_core = -1
        best_key: tuple[float, float] | None = None
        for core, curve in enumerate(curves):
            if alloc[core] + bank_ways > cap:
                continue
            mu = curve.marginal_utility(alloc[core], bank_ways)
            # tie-break zero-utility grants toward whoever still misses most,
            # so spare capacity lands where it could plausibly help
            key = (mu, curve.misses_at(alloc[core]))
            if best_key is None or key > best_key:
                best_key, best_core = key, core
        if best_core < 0:
            raise PartitionInvariantError(
                "capacity cap leaves a Center bank unassignable"
            )
        alloc[best_core] += bank_ways
        centers[best_core] += 1
    complete = [centers[c] > 0 for c in range(n)]

    # ---- Phase B: Local-bank way sharing between neighbours (Boxes 4-5) ---
    pairs: list[tuple[int, int]] = []
    while True:
        best_core = -1
        best_mu = 0.0
        for core, curve in enumerate(curves):
            if complete[core]:
                continue
            mu = curve.marginal_utility(alloc[core], 1)
            if mu > best_mu:
                best_mu, best_core = mu, core
        if best_core < 0:
            break  # nobody incomplete wants to grow
        # Growing past the Local bank overflows into a neighbour: choose the
        # ideal (minimal combined misses) adjacent incomplete partner now.
        candidates = [
            p
            for p in (best_core - 1, best_core + 1)
            if 0 <= p < n and not complete[p]
        ]
        if not candidates:
            complete[best_core] = True  # boxed in: keeps its Local bank
            continue
        best_partner = -1
        best_split: tuple[int, int, float] | None = None
        for p in candidates:
            a, b = min(best_core, p), max(best_core, p)
            wa, wb, misses = _best_pair_split(
                curves[a], curves[b], 2 * bank_ways, min_ways
            )
            if best_split is None or misses < best_split[2]:
                best_split = (wa, wb, misses)
                best_partner = p
        if best_split is None:
            raise PartitionInvariantError(
                f"core {best_core} has adjacent candidates {candidates} but "
                "no pair split was evaluated"
            )
        a, b = min(best_core, best_partner), max(best_core, best_partner)
        alloc[a], alloc[b] = best_split[0], best_split[1]
        complete[a] = complete[b] = True
        pairs.append((a, b))

    decision = BankAwareDecision(
        ways=tuple(alloc),
        center_banks=tuple(centers),
        pairs=tuple(sorted(pairs)),
        bank_ways=bank_ways,
    )
    if decision.total_ways != total_ways:
        raise PartitionInvariantError(
            f"assignment sums to {decision.total_ways} ways, machine has "
            f"{total_ways} (way conservation broken)"
        )
    return decision
