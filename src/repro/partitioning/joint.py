"""Joint cache partition + job assignment (after arXiv:1210.4053).

The related work shows that deciding *which core runs which job* together
with the partition beats partitioning a fixed placement: on a machine
whose partitioning rules depend on physical adjacency (the Bank-aware
Rules 1-3 pair only neighbouring cores), moving two cache-hungry jobs
apart can unlock way splits the fixed placement forbids.

Reproduction here: a deterministic pairwise-swap hill climb over
workload↔core placements.  Each candidate placement is scored by running
the Bank-aware assignment on the permuted curves and taking
:func:`~repro.partitioning.unrestricted.predicted_misses` as the
objective — the same metric the Monte Carlo sweep uses, so rankings are
comparable.  The search is first-improvement with a fixed scan order and
a bounded pass count, hence fully deterministic.

As an epoch policy the simulator cannot migrate jobs mid-run, so the
optimal placement's way vector is mapped back through the permutation:
each *workload* receives the ways it would enjoy under the best
placement, materialised as the idealised contiguous layout (like
``unrestricted``, the physical adjacency of the searched placement is
not realisable in place).  :func:`schedule_mix` exposes the scheduler
layer itself — the reordered mix to hand to
:func:`~repro.sim.runner.compare_schemes`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # runtime import stays local to schedule_mix
    from repro.workloads.mixes import Mix

from repro.errors import ConfigError
from repro.partitioning.allocation import vector_to_private_map
from repro.partitioning.bank_aware import BankAwareDecision, bank_aware_partition
from repro.partitioning.registry import (
    PartitionPolicy,
    PolicyContext,
    PolicyDecision,
    register,
)
from repro.partitioning.unrestricted import predicted_misses
from repro.profiling.miss_curve import MissCurve


@dataclass(frozen=True)
class JointAssignment:
    """Outcome of the joint search.

    ``placement[core]`` is the index of the workload assigned to that core
    in the optimal placement; ``decision`` the Bank-aware decision under
    it; ``predicted`` its projected total misses.
    """

    placement: tuple[int, ...]
    decision: BankAwareDecision
    predicted: float

    def ways_by_workload(self) -> tuple[int, ...]:
        """Way counts indexed by *workload* (i.e. by original core)."""
        ways = [0] * len(self.placement)
        for core, workload in enumerate(self.placement):
            ways[workload] = self.decision.ways[core]
        return tuple(ways)


def best_assignment(
    curves: Sequence[MissCurve],
    *,
    num_banks: int = 16,
    bank_ways: int = 8,
    max_ways_per_core: int | None = None,
    min_ways: int = 1,
    max_passes: int | None = None,
) -> JointAssignment:
    """Pairwise-swap hill climb over placements (first-improvement).

    Starts from the identity placement, scans all core pairs in fixed
    order, takes any strictly improving swap immediately, and stops after
    a full pass without improvement (or ``max_passes``, default one pass
    per core).  Strict improvement + fixed scan order = deterministic.
    """
    n = len(curves)
    if n < 1:
        raise ConfigError("need at least one core")

    def score(placement: list[int]) -> tuple[float, BankAwareDecision]:
        placed = [curves[w] for w in placement]
        decision = bank_aware_partition(
            placed,
            num_banks=num_banks,
            bank_ways=bank_ways,
            max_ways_per_core=max_ways_per_core,
            min_ways=min_ways,
        )
        return predicted_misses(placed, list(decision.ways)), decision

    placement = list(range(n))
    best, decision = score(placement)
    limit = n if max_passes is None else max_passes
    for _ in range(limit):
        improved = False
        for i in range(n - 1):
            for j in range(i + 1, n):
                candidate = placement.copy()
                candidate[i], candidate[j] = candidate[j], candidate[i]
                misses, cand_decision = score(candidate)
                if misses < best:
                    best, decision, placement = misses, cand_decision, candidate
                    improved = True
        if not improved:
            break
    return JointAssignment(tuple(placement), decision, best)


def schedule_mix(
    mix: "Mix",
    curves: Mapping[str, MissCurve],
    *,
    num_banks: int = 16,
    bank_ways: int = 8,
    max_ways_per_core: int | None = None,
    min_ways: int = 1,
) -> "tuple[Mix, JointAssignment]":
    """The scheduler layer: reorder a mix onto its joint-optimal placement.

    Returns ``(scheduled_mix, assignment)`` — hand the reordered mix to
    :func:`~repro.sim.runner.compare_schemes` to simulate the placement
    the joint optimisation chose.  Import stays local so the partitioning
    package keeps no hard dependency on the workload layer.
    """
    from repro.workloads.mixes import Mix

    mix_curves = [curves[name] for name in mix.names]
    assignment = best_assignment(
        mix_curves,
        num_banks=num_banks,
        bank_ways=bank_ways,
        max_ways_per_core=max_ways_per_core,
        min_ways=min_ways,
    )
    names = tuple(mix.names[w] for w in assignment.placement)
    return Mix(names), assignment


class JointPolicy(PartitionPolicy):
    """Joint placement + partition search, applied as a way vector."""

    name = "joint"
    summary = "joint partition + job assignment search (arXiv:1210.4053)"
    dynamic = True
    needs_profilers = True
    needs_job_assignment = True

    def decide(
        self, curves: Sequence[MissCurve], ctx: PolicyContext
    ) -> PolicyDecision:
        assignment = best_assignment(
            curves,
            num_banks=ctx.num_banks,
            bank_ways=ctx.bank_ways,
            max_ways_per_core=ctx.max_ways_per_core,
            min_ways=ctx.min_ways,
        )
        ways = list(assignment.ways_by_workload())
        return PolicyDecision(
            ways=tuple(ways),
            pmap=vector_to_private_map(
                ways, num_banks=ctx.num_banks, bank_ways=ctx.bank_ways
            ),
        )


register(JointPolicy())

__all__ = [
    "JointAssignment",
    "JointPolicy",
    "best_assignment",
    "schedule_mix",
]
