"""The *Unrestricted* partitioning baseline (paper Section III.B).

This is the prior-work algorithm the paper compares against — MSA-driven
greedy marginal-utility assignment of individual cache ways with no physical
restrictions, i.e. the lookahead algorithm of Qureshi & Patt's Utility-Based
Cache Partitioning (MICRO 2006), which the paper cites as [15]:

    repeat until all ways are assigned:
        for every core, scan all feasible allocation increments and find the
        one with the maximum marginal utility (miss reduction per way);
        grant the globally best increment to its core.

The lookahead over *blocks* of ways (not just one way at a time) is what
lets the algorithm climb past plateaus in a miss curve (a workload whose
curve only drops after +10 ways would never win single-way comparisons).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.profiling.miss_curve import MissCurve
from repro.errors import ConfigError, PartitionInvariantError


def unrestricted_partition(
    curves: Sequence[MissCurve],
    total_ways: int,
    *,
    min_ways: int = 1,
    max_ways_per_core: int | None = None,
) -> list[int]:
    """Way counts per core under the Unrestricted (UCP-lookahead) algorithm.

    Parameters
    ----------
    curves:
        One projected miss curve per core.
    total_ways:
        Capacity to distribute (128 on the paper machine).
    min_ways:
        Floor per core so every core can make progress.
    max_ways_per_core:
        Optional cap (the paper's Unrestricted scheme has none; pass the
        9/16 cap to study its effect).
    """
    n = len(curves)
    if n == 0:
        raise ConfigError("need at least one core")
    cap = total_ways if max_ways_per_core is None else max_ways_per_core
    if cap < min_ways:
        raise ConfigError("cap below the per-core minimum")
    if n * min_ways > total_ways:
        raise ConfigError("not enough ways for the per-core minimum")
    if n * cap < total_ways:
        raise ConfigError("caps make the capacity unassignable")

    alloc = [min_ways] * n
    remaining = total_ways - sum(alloc)
    while remaining > 0:
        best_mu = -1.0
        best_core = -1
        best_extra = 0
        for core, curve in enumerate(curves):
            room = min(remaining, cap - alloc[core])
            if room <= 0:
                continue
            mu, extra = curve.best_marginal_utility(alloc[core], room)
            if mu > best_mu:
                best_mu, best_core, best_extra = mu, core, extra
        if best_core < 0:
            raise PartitionInvariantError("no core can accept more ways")  # caps checked above
        if best_mu <= 0.0:
            # Every curve is flat: spread the leftovers round-robin, one
            # way at a time across cores with room, so the capacity is
            # fully assigned without any core hoarding it.
            while remaining > 0:
                granted = False
                for core in range(n):
                    if remaining == 0:
                        break
                    if alloc[core] < cap:
                        alloc[core] += 1
                        remaining -= 1
                        granted = True
                if not granted:
                    raise PartitionInvariantError(
                        "no core can accept more ways"
                    )  # unreachable: caps checked above
            break
        alloc[best_core] += best_extra
        remaining -= best_extra
    if sum(alloc) != total_ways:
        raise PartitionInvariantError(
            f"lookahead allocation sums to {sum(alloc)} ways, machine has "
            f"{total_ways} (way conservation broken)"
        )
    return alloc


def predicted_misses(curves: Sequence[MissCurve], ways: Sequence[int]) -> float:
    """Total projected misses of an allocation (the Monte Carlo metric)."""
    if len(curves) != len(ways):
        raise ConfigError("one way count per curve required")
    return sum(curve.misses_at(w) for curve, w in zip(curves, ways))
