"""Mapping abstract way assignments onto physical banks (paper Fig. 5).

The Bank-aware algorithm decides *how many* ways (and Center banks) each
core gets; this module decides *which* banks: Center banks are handed out by
proximity (cores grab their nearest free Center bank, minimising NUCA hop
latency), Local banks stay with their adjacent core, and paired cores split
way indices inside the pair's two Local banks.

Bank numbering convention (matches :mod:`repro.noc.topology`): banks
``0..num_cores-1`` are the Local banks (bank *i* adjacent to core *i*),
banks ``num_cores..num_banks-1`` are the Center banks.
"""

from __future__ import annotations

from repro.cache.partition_map import BankAllocation, CorePartition, PartitionMap
from repro.errors import PartitionInvariantError
from repro.partitioning.bank_aware import BankAwareDecision
from repro.util.floorplan import center_bank_positions

__all__ = [
    "assign_center_banks",
    "center_bank_positions",
    "decision_to_partition_map",
    "vector_to_private_map",
]


def assign_center_banks(
    decision: BankAwareDecision, num_cores: int, num_banks: int
) -> dict[int, list[int]]:
    """Choose which physical Center banks serve each core's quota.

    Cores are processed in descending demand and repeatedly take their
    nearest free Center bank — a deterministic proximity heuristic that
    keeps a core's aggregated banks physically close to it.
    """
    num_centers = num_banks - num_cores
    if sum(decision.center_banks) != num_centers:
        raise PartitionInvariantError("decision does not cover every Center bank")
    positions = center_bank_positions(num_cores, num_centers)
    free = set(range(num_centers))
    chosen: dict[int, list[int]] = {c: [] for c in range(num_cores)}
    order = sorted(
        range(num_cores), key=lambda c: (-decision.center_banks[c], c)
    )
    for core in order:
        for _ in range(decision.center_banks[core]):
            nearest = min(free, key=lambda b: (abs(positions[b] - core), b))
            free.discard(nearest)
            chosen[core].append(num_cores + nearest)
    return chosen


def decision_to_partition_map(
    decision: BankAwareDecision,
    *,
    num_cores: int | None = None,
    num_banks: int = 16,
) -> PartitionMap:
    """Materialise a :class:`BankAwareDecision` into bank/way assignments.

    For a pair ``(a, b)`` the core with the larger share keeps its own Local
    bank whole and annexes the top way indices of its partner's bank as a
    level-2 (cascade victim) allocation; the partner retains the low way
    indices of its own bank.  This realises the depth-2 cascading of paper
    Fig. 4c.
    """
    n = num_cores if num_cores is not None else len(decision.ways)
    if len(decision.ways) != n:
        raise PartitionInvariantError("decision size disagrees with num_cores")
    bank_ways = decision.bank_ways
    all_ways = tuple(range(bank_ways))
    centers = assign_center_banks(decision, n, num_banks)
    paired = {c: pair for pair in decision.pairs for c in pair}
    pmap = PartitionMap()
    for core in range(n):
        w = decision.ways[core]
        if core not in paired:
            level1 = [BankAllocation(core, all_ways)]
            for bank in centers[core]:
                level1.append(BankAllocation(bank, all_ways))
            pmap.add(CorePartition(core, tuple(level1)))
            continue
        a, b = paired[core]
        partner = b if core == a else a
        wp = decision.ways[partner]
        if w == bank_ways:  # an (8, 8) split: no actual sharing
            pmap.add(CorePartition(core, (BankAllocation(core, all_ways),)))
        elif w > bank_ways:
            # own bank whole, plus the top ways of the partner's bank
            annex = tuple(range(wp, bank_ways))
            pmap.add(
                CorePartition(
                    core,
                    (BankAllocation(core, all_ways),),
                    level2=BankAllocation(partner, annex),
                )
            )
        else:
            # shrunk: keeps only the low ways of its own Local bank
            pmap.add(CorePartition(core, (BankAllocation(core, tuple(range(w))),)))
    return pmap


def vector_to_private_map(
    ways: list[int], *, num_banks: int, bank_ways: int
) -> PartitionMap:
    """Materialise an *arbitrary* way vector as contiguous private regions.

    This is the physically unrestricted layout (only meaningful for
    analytical comparisons): ways are laid out core after core across the
    bank/way grid, so a core's share may straddle banks in fractions the
    Bank-aware rules would forbid.
    """
    total = num_banks * bank_ways
    if sum(ways) != total:
        raise PartitionInvariantError(
            f"way vector sums to {sum(ways)}, machine has {total}"
        )
    pmap = PartitionMap()
    cursor = 0
    for core, count in enumerate(ways):
        if count == 0:
            raise PartitionInvariantError("every core needs at least one way")
        allocations: list[BankAllocation] = []
        remaining = count
        while remaining > 0:
            bank, way = divmod(cursor, bank_ways)
            take = min(remaining, bank_ways - way)
            allocations.append(
                BankAllocation(bank, tuple(range(way, way + take)))
            )
            cursor += take
            remaining -= take
        pmap.add(CorePartition(core, tuple(allocations)))
    return pmap
