"""Static partitioning baselines (paper Section IV).

* **Equal-partitions** — every core gets an identical private share
  (16 ways = its Local bank + one Center bank on the paper machine).
* **No-partitions** — the fully shared cache; not a way vector at all, but
  represented here for uniform handling by the experiment drivers.
"""

from __future__ import annotations

from repro.errors import ConfigError


def equal_partition(num_cores: int, total_ways: int) -> list[int]:
    """The fixed even share per core (paper: 16 ways each).

    When the capacity does not divide evenly the remainder is spread
    deterministically, one extra way per core from core 0 upward — so the
    scheme stays usable on non-paper machines (e.g. 6 cores x 128 ways)
    while the paper configuration still yields exactly ``[16] * 8``.
    """
    if num_cores < 1:
        raise ConfigError("need at least one core")
    if total_ways < num_cores:
        raise ConfigError("need at least one way per core")
    base, rem = divmod(total_ways, num_cores)
    return [base + 1 if core < rem else base for core in range(num_cores)]


#: Scheme names used throughout the experiment drivers.
SCHEME_NO_PARTITION = "no-partitions"
SCHEME_EQUAL = "equal-partitions"
SCHEME_BANK_AWARE = "bank-aware"
SCHEME_UNRESTRICTED = "unrestricted"

ALL_SCHEMES = (
    SCHEME_NO_PARTITION,
    SCHEME_EQUAL,
    SCHEME_BANK_AWARE,
    SCHEME_UNRESTRICTED,
)
