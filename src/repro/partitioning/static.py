"""Static partitioning baselines (paper Section IV).

* **Equal-partitions** — every core gets an identical private share
  (16 ways = its Local bank + one Center bank on the paper machine).
* **No-partitions** — the fully shared cache; not a way vector at all, but
  represented here for uniform handling by the experiment drivers.
"""

from __future__ import annotations

from repro.errors import ConfigError


def equal_partition(num_cores: int, total_ways: int) -> list[int]:
    """The fixed even share per core (paper: 16 ways each)."""
    if num_cores < 1:
        raise ConfigError("need at least one core")
    if total_ways % num_cores:
        raise ConfigError("total ways must divide evenly among cores")
    return [total_ways // num_cores] * num_cores


#: Scheme names used throughout the experiment drivers.
SCHEME_NO_PARTITION = "no-partitions"
SCHEME_EQUAL = "equal-partitions"
SCHEME_BANK_AWARE = "bank-aware"
SCHEME_UNRESTRICTED = "unrestricted"

ALL_SCHEMES = (
    SCHEME_NO_PARTITION,
    SCHEME_EQUAL,
    SCHEME_BANK_AWARE,
    SCHEME_UNRESTRICTED,
)
