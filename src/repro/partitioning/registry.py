"""The policy lab: a registry of pluggable partitioning policies.

Scheme identity used to be a bare string hardcoded across ten modules;
this registry makes it one object.  A :class:`PartitionPolicy` names
itself, declares its capabilities (is it epoch-driven? does it need the
bank-queue model? does it search job placements?) and produces a
:class:`PolicyDecision` from per-core miss curves — so adding a policy is
one module plus one :func:`register` call, and every consumer (the
``simulate``/``compare`` CLI, the :class:`~repro.sim.controller.EpochController`
in both sim backends, the Monte Carlo ranking) picks it up by name.

Built-in policies:

* ``no-partitions`` / ``equal-partitions`` — the paper's static baselines.
* ``bank-aware`` — the paper's contribution (Rules 1-3, Section III).
* ``unrestricted`` — the UCP-lookahead prior work the paper compares against.
* ``bank-bw`` — per-bank bandwidth regulation (arXiv:2410.14003), in
  :mod:`repro.partitioning.bank_bw`.
* ``joint`` — joint partition + job assignment (arXiv:1210.4053), in
  :mod:`repro.partitioning.joint`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cache.partition_map import PartitionMap
from repro.errors import ConfigError
from repro.partitioning.allocation import (
    decision_to_partition_map,
    vector_to_private_map,
)
from repro.partitioning.bank_aware import BankAwareDecision, bank_aware_partition
from repro.partitioning.static import equal_partition
from repro.partitioning.unrestricted import unrestricted_partition
from repro.profiling.miss_curve import MissCurve


@dataclass(frozen=True)
class PolicyContext:
    """Machine facts a policy may consult (everything except the curves).

    ``regulator`` is the live :class:`~repro.partitioning.bank_bw.BankBudgetRegulator`
    when the running system has one (``needs_bank_queues`` policies); the
    analytic paths (Monte Carlo ranking) pass ``None``.
    """

    num_cores: int
    num_banks: int
    bank_ways: int
    max_ways_per_core: int
    min_ways: int = 1
    now: float = 0.0
    regulator: object | None = None

    @property
    def total_ways(self) -> int:
        return self.num_banks * self.bank_ways


@dataclass(frozen=True)
class PolicyDecision:
    """One policy verdict: the per-core way vector, the materialised
    physical map (``None`` for capacity-sharing policies), and — when the
    policy honours the Bank-aware rules — the structural decision the
    guard/sanitizer can deep-check."""

    ways: tuple[int, ...]
    pmap: PartitionMap | None = None
    bank_decision: BankAwareDecision | None = None


class PartitionPolicy:
    """Base class / protocol of one registered partitioning policy.

    Subclasses override :meth:`decide` and the capability flags:

    ``dynamic``
        driven by the :class:`~repro.sim.controller.EpochController`
        every epoch (static schemes are installed once at system build).
    ``needs_profilers``
        reads per-core MSA miss curves.
    ``needs_bank_queues``
        requires the per-bank FIFO queue model plus a
        :class:`~repro.partitioning.bank_bw.BankBudgetRegulator` attached
        to the system's access path.
    ``needs_job_assignment``
        searches workload↔core placements as part of the decision.
    ``shares_cache``
        imposes no capacity isolation (the shared-cache baseline).
    ``analytic``
        ``decide`` is meaningful from solo miss curves alone, so the
        Monte Carlo sweep can rank the policy per mix.
    """

    name: str = ""
    summary: str = ""
    dynamic: bool = False
    needs_profilers: bool = False
    needs_bank_queues: bool = False
    needs_job_assignment: bool = False
    shares_cache: bool = False
    analytic: bool = True

    def decide(
        self, curves: Sequence[MissCurve], ctx: PolicyContext
    ) -> PolicyDecision:
        raise NotImplementedError(f"policy {self.name!r} defines no decide()")


_REGISTRY: dict[str, PartitionPolicy] = {}


def register(policy: PartitionPolicy) -> PartitionPolicy:
    """Add one policy to the lab; returns it so classes can self-register."""
    if not policy.name:
        raise ConfigError("a partitioning policy must carry a name")
    if policy.name in _REGISTRY:
        raise ConfigError(f"policy {policy.name!r} is already registered")
    _REGISTRY[policy.name] = policy
    return policy


def get_policy(name: str) -> PartitionPolicy:
    """Look a policy up by name (the single source of scheme identity)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ConfigError(
            f"unknown partitioning scheme {name!r} (registered: {known})"
        ) from None


#: the paper's schemes lead the listing; later registrations follow
#: alphabetically, so the order is stable regardless of import order.
_CANONICAL = ("no-partitions", "equal-partitions", "bank-aware", "unrestricted")


def registered_policies() -> tuple[str, ...]:
    """Every registered policy name, in canonical order."""
    head = tuple(n for n in _CANONICAL if n in _REGISTRY)
    tail = tuple(sorted(n for n in _REGISTRY if n not in _CANONICAL))
    return head + tail


def analytic_policies() -> tuple[str, ...]:
    """Policies the Monte Carlo sweep can rank from solo miss curves."""
    return tuple(
        n for n in registered_policies() if _REGISTRY[n].analytic
    )


def policy_help() -> str:
    """One ``name: summary`` entry per registered policy (CLI help text)."""
    return "; ".join(
        f"{n}: {_REGISTRY[n].summary}" for n in registered_policies()
    )


# -- the four historical schemes, re-registered through the lab --------------


class NoPartitionPolicy(PartitionPolicy):
    """The fully shared DNUCA baseline (paper Figs. 8/9 reference)."""

    name = "no-partitions"
    summary = "fully shared cache, migrating DNUCA baseline"
    shares_cache = True
    #: a shared cache's misses depend on the interleaving, not on solo
    #: curves, so the analytic sweep cannot rank it.
    analytic = False

    def decide(
        self, curves: Sequence[MissCurve], ctx: PolicyContext
    ) -> PolicyDecision:
        # nominal even shares; no map — capacity stays shared
        return PolicyDecision(
            ways=tuple(equal_partition(ctx.num_cores, ctx.total_ways))
        )


class EqualPartitionPolicy(PartitionPolicy):
    """Fixed even shares (paper: 16 ways per core, installed once)."""

    name = "equal-partitions"
    summary = "static even split, one share per core"

    def decide(
        self, curves: Sequence[MissCurve], ctx: PolicyContext
    ) -> PolicyDecision:
        ways = equal_partition(ctx.num_cores, ctx.total_ways)
        return PolicyDecision(
            ways=tuple(ways),
            pmap=vector_to_private_map(
                ways, num_banks=ctx.num_banks, bank_ways=ctx.bank_ways
            ),
        )


class BankAwarePolicy(PartitionPolicy):
    """The paper's Bank-aware assignment (Rules 1-3, Fig. 6)."""

    name = "bank-aware"
    summary = "the paper's bank-structure-aware marginal-utility assignment"
    dynamic = True
    needs_profilers = True

    def decide(
        self, curves: Sequence[MissCurve], ctx: PolicyContext
    ) -> PolicyDecision:
        decision = bank_aware_partition(
            curves,
            num_banks=ctx.num_banks,
            bank_ways=ctx.bank_ways,
            max_ways_per_core=ctx.max_ways_per_core,
            min_ways=ctx.min_ways,
        )
        return PolicyDecision(
            ways=decision.ways,
            pmap=decision_to_partition_map(decision, num_banks=ctx.num_banks),
            bank_decision=decision,
        )


class UnrestrictedPolicy(PartitionPolicy):
    """UCP lookahead with no physical restrictions (paper Section III.B)."""

    name = "unrestricted"
    summary = "UCP-lookahead baseline, physically idealised layout"
    dynamic = True
    needs_profilers = True

    def decide(
        self, curves: Sequence[MissCurve], ctx: PolicyContext
    ) -> PolicyDecision:
        # the cap reaches the algorithm here: the historical dispatch
        # dropped it, so a >cap vector sailed into the guard only to be
        # rejected and spuriously degrade the run
        ways = unrestricted_partition(
            curves,
            ctx.total_ways,
            min_ways=ctx.min_ways,
            max_ways_per_core=ctx.max_ways_per_core,
        )
        return PolicyDecision(
            ways=tuple(ways),
            pmap=vector_to_private_map(
                ways, num_banks=ctx.num_banks, bank_ways=ctx.bank_ways
            ),
        )


register(NoPartitionPolicy())
register(EqualPartitionPolicy())
register(BankAwarePolicy())
register(UnrestrictedPolicy())

# The related-work policies live in their own modules and self-register on
# import; importing them here makes `import repro.partitioning.registry`
# sufficient to see the whole lab.  (Safe under any import order: a module
# imported first re-enters here, finds its dependencies already defined,
# and finishes its own registration afterwards.)
from repro.partitioning import bank_bw as _bank_bw  # noqa: E402,F401
from repro.partitioning import joint as _joint  # noqa: E402,F401

__all__ = [
    "BankAwarePolicy",
    "EqualPartitionPolicy",
    "NoPartitionPolicy",
    "PartitionPolicy",
    "PolicyContext",
    "PolicyDecision",
    "UnrestrictedPolicy",
    "analytic_policies",
    "get_policy",
    "policy_help",
    "register",
    "registered_policies",
]
