"""Cache-partition assignment algorithms and physical allocation."""

from repro.partitioning.allocation import (
    assign_center_banks,
    center_bank_positions,
    decision_to_partition_map,
    vector_to_private_map,
)
from repro.partitioning.bank_aware import BankAwareDecision, bank_aware_partition
from repro.partitioning.static import (
    ALL_SCHEMES,
    SCHEME_BANK_AWARE,
    SCHEME_EQUAL,
    SCHEME_NO_PARTITION,
    SCHEME_UNRESTRICTED,
    equal_partition,
)
from repro.partitioning.unrestricted import predicted_misses, unrestricted_partition

__all__ = [
    "ALL_SCHEMES",
    "BankAwareDecision",
    "SCHEME_BANK_AWARE",
    "SCHEME_EQUAL",
    "SCHEME_NO_PARTITION",
    "SCHEME_UNRESTRICTED",
    "assign_center_banks",
    "bank_aware_partition",
    "center_bank_positions",
    "decision_to_partition_map",
    "equal_partition",
    "predicted_misses",
    "unrestricted_partition",
    "vector_to_private_map",
]
