"""Cache-partition assignment algorithms, physical allocation, and the
policy lab (a registry of pluggable partitioning policies)."""

from repro.partitioning.allocation import (
    assign_center_banks,
    center_bank_positions,
    decision_to_partition_map,
    vector_to_private_map,
)
from repro.partitioning.bank_aware import BankAwareDecision, bank_aware_partition
from repro.partitioning.bank_bw import BankBudgetRegulator
from repro.partitioning.joint import JointAssignment, best_assignment, schedule_mix
from repro.partitioning.registry import (
    PartitionPolicy,
    PolicyContext,
    PolicyDecision,
    analytic_policies,
    get_policy,
    policy_help,
    register,
    registered_policies,
)
from repro.partitioning.static import (
    ALL_SCHEMES,
    SCHEME_BANK_AWARE,
    SCHEME_EQUAL,
    SCHEME_NO_PARTITION,
    SCHEME_UNRESTRICTED,
    equal_partition,
)
from repro.partitioning.unrestricted import predicted_misses, unrestricted_partition

__all__ = [
    "ALL_SCHEMES",
    "BankAwareDecision",
    "BankBudgetRegulator",
    "JointAssignment",
    "PartitionPolicy",
    "PolicyContext",
    "PolicyDecision",
    "SCHEME_BANK_AWARE",
    "SCHEME_EQUAL",
    "SCHEME_NO_PARTITION",
    "SCHEME_UNRESTRICTED",
    "analytic_policies",
    "assign_center_banks",
    "bank_aware_partition",
    "best_assignment",
    "center_bank_positions",
    "decision_to_partition_map",
    "equal_partition",
    "get_policy",
    "policy_help",
    "predicted_misses",
    "register",
    "registered_policies",
    "schedule_mix",
    "unrestricted_partition",
    "vector_to_private_map",
]
