"""Per-bank bandwidth regulation (after arXiv:2410.14003).

The related work regulates each core's *access rate to each LLC bank* over
short windows instead of (or on top of) partitioning capacity: a core that
hammers one bank is deferred to the next window once it exhausts its
per-window budget, so co-runners keep predictable bank latency even when
capacity is split evenly.

Reproduction here:

* The :class:`BankBudgetRegulator` keeps a per-(core, bank) token window.
  Every L2 access is charged before it enters the bank's FIFO port; an
  access over budget is deferred to the start of the next window with a
  free slot and the deferral is added to its latency.  Both sim backends
  call :meth:`BankBudgetRegulator.charge` with identical event order, so
  the model stays bit-identical between them.
* The :class:`BankBandwidthPolicy` decides budgets at every epoch boundary
  from the *observed* per-core per-bank demand of the previous epoch:
  each core's next budget is its measured per-window rate plus 25 %
  headroom (integer arithmetic, deterministic), so steady cores never
  stall while a core bursting far above its profile is smoothed out.
  Capacity itself stays at the even split — regulation replaces
  repartitioning, mirroring the related work's set-partitioned LLC.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError
from repro.partitioning.registry import (
    PartitionPolicy,
    PolicyContext,
    PolicyDecision,
    register,
)
from repro.partitioning.allocation import vector_to_private_map
from repro.partitioning.static import equal_partition
from repro.profiling.miss_curve import MissCurve

#: regulation windows per controller epoch: the window is the fine-grained
#: enforcement quantum, the epoch the (coarse) budget-decision quantum.
WINDOWS_PER_EPOCH = 64

#: budget headroom over the observed per-window rate, as a ratio
#: (5/4 = 25 %): absorbs ordinary jitter, throttles genuine phase bursts.
HEADROOM_NUM = 5
HEADROOM_DEN = 4


class BankBudgetRegulator:
    """Windowed per-(core, bank) access budgets, enforced on the hot path.

    ``budgets[core][bank] == 0`` means unlimited (the state before the
    first epoch decision, and for pairs with no observed demand).  All
    arithmetic is on floats derived from simulated time plus plain ints,
    so serial/parallel and reference/batched runs charge identically.
    """

    def __init__(
        self,
        num_cores: int,
        num_banks: int,
        *,
        window_cycles: float,
    ) -> None:
        if num_cores < 1 or num_banks < 1:
            raise ConfigError("need at least one core and one bank")
        if window_cycles <= 0:
            raise ConfigError("regulation window must be positive")
        self.num_cores = num_cores
        self.num_banks = num_banks
        self.window_cycles = float(window_cycles)
        self.budgets = [[0] * num_banks for _ in range(num_cores)]
        #: index of the window the per-pair token count refers to; advanced
        #: past the arrival's own window when deferrals spill forward.
        self._window = [[-1.0] * num_banks for _ in range(num_cores)]
        self._used = [[0] * num_banks for _ in range(num_cores)]
        #: accesses observed since the last budget decision.
        self.demand = [[0] * num_banks for _ in range(num_cores)]
        self.throttled = 0  #: accesses deferred to a later window
        self.total_throttle_cycles = 0.0

    def charge(self, core: int, bank: int, arrival: float) -> float:
        """Account one access; returns the deferral (cycles, >= 0.0)."""
        self.demand[core][bank] += 1
        quota = self.budgets[core][bank]
        if quota == 0:
            return 0.0
        w = arrival // self.window_cycles
        if w > self._window[core][bank]:
            self._window[core][bank] = w
            self._used[core][bank] = 0
        used = self._used[core][bank]
        if used < quota:
            self._used[core][bank] = used + 1
            return 0.0
        # window exhausted: this access opens the next window (which may
        # already lie ahead of the arrival's own when a burst spills far)
        nxt = self._window[core][bank] + 1.0
        self._window[core][bank] = nxt
        self._used[core][bank] = 1
        throttle = nxt * self.window_cycles - arrival
        self.throttled += 1
        self.total_throttle_cycles += throttle
        return throttle

    def rebudget(self) -> None:
        """Set the next epoch's budgets from observed demand, reset demand.

        ``budget = max(1, demand * 5 // (4 * windows_per_epoch))`` — the
        measured per-window rate with 25 % headroom; zero demand leaves
        the pair unregulated (no evidence, no throttle).
        """
        for core in range(self.num_cores):
            drow = self.demand[core]
            brow = self.budgets[core]
            for bank in range(self.num_banks):
                d = drow[bank]
                if d == 0:
                    brow[bank] = 0
                else:
                    brow[bank] = max(
                        1, (HEADROOM_NUM * d) // (HEADROOM_DEN * WINDOWS_PER_EPOCH)
                    )
                drow[bank] = 0


class BankBandwidthPolicy(PartitionPolicy):
    """Even capacity split + demand-derived per-bank bandwidth budgets."""

    name = "bank-bw"
    summary = "per-bank access budgets per window (arXiv:2410.14003)"
    dynamic = True
    needs_profilers = True
    needs_bank_queues = True

    def decide(
        self, curves: Sequence[MissCurve], ctx: PolicyContext
    ) -> PolicyDecision:
        if ctx.regulator is not None:
            ctx.regulator.rebudget()
        ways = equal_partition(ctx.num_cores, ctx.total_ways)
        return PolicyDecision(
            ways=tuple(ways),
            pmap=vector_to_private_map(
                ways, num_banks=ctx.num_banks, bank_ways=ctx.bank_ways
            ),
        )


register(BankBandwidthPolicy())

__all__ = [
    "BankBandwidthPolicy",
    "BankBudgetRegulator",
    "HEADROOM_DEN",
    "HEADROOM_NUM",
    "WINDOWS_PER_EPOCH",
]
