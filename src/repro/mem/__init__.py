"""Memory-access records and trace containers."""

from repro.mem.trace import MemoryAccess, Trace, interleave_round_robin

__all__ = ["MemoryAccess", "Trace", "interleave_round_robin"]
