"""Memory-access trace containers.

The simulator is trace-driven (the substitution for the paper's Simics/GEMS
full-system runs): each core replays a :class:`Trace`, a columnar record of
memory operations.  Traces are stored as NumPy arrays for compactness and so
the workload generators can build them vectorised.

Each access carries:

* ``address`` — byte address (``uint64``),
* ``is_write`` — store vs. load,
* ``gap`` — number of non-memory instructions retired since the previous
  memory access (drives the analytic core timing model).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.util.bits import LINE_SHIFT

from repro.errors import ConfigError


class MemoryAccess(NamedTuple):
    """A single trace record (scalar view of one :class:`Trace` row)."""

    address: int
    is_write: bool
    gap: int

    @property
    def line(self) -> int:
        return self.address >> LINE_SHIFT


@dataclass(frozen=True)
class Trace:
    """An immutable columnar memory trace for one core."""

    addresses: np.ndarray  #: uint64 byte addresses
    is_write: np.ndarray  #: bool
    gaps: np.ndarray  #: uint32 non-memory instructions before each access

    def __post_init__(self) -> None:
        n = len(self.addresses)
        if len(self.is_write) != n or len(self.gaps) != n:
            raise ConfigError("trace columns must have equal length")
        if self.addresses.dtype != np.uint64:
            object.__setattr__(self, "addresses", self.addresses.astype(np.uint64))
        if self.is_write.dtype != np.bool_:
            object.__setattr__(self, "is_write", self.is_write.astype(np.bool_))
        if self.gaps.dtype != np.uint32:
            object.__setattr__(self, "gaps", self.gaps.astype(np.uint32))

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for addr, w, g in zip(
            self.addresses.tolist(), self.is_write.tolist(), self.gaps.tolist()
        ):
            yield MemoryAccess(addr, w, g)

    def __getitem__(self, i: int) -> MemoryAccess:
        return MemoryAccess(
            int(self.addresses[i]), bool(self.is_write[i]), int(self.gaps[i])
        )

    @property
    def lines(self) -> np.ndarray:
        """Cache-line numbers of every access (vectorised)."""
        return self.addresses >> np.uint64(LINE_SHIFT)

    @property
    def instruction_count(self) -> int:
        """Total instructions represented: memory ops plus all gaps."""
        return int(self.gaps.sum()) + len(self)

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        """A sub-trace by access index (e.g. to split warmup from measure)."""
        sl = slice(start, stop)
        return Trace(self.addresses[sl], self.is_write[sl], self.gaps[sl])

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.is_write, other.is_write]),
            np.concatenate([self.gaps, other.gaps]),
        )

    def with_offset(self, byte_offset: int) -> "Trace":
        """Shift the whole address space (used to isolate cores' footprints)."""
        if byte_offset < 0:
            raise ConfigError("offset must be non-negative")
        return Trace(
            self.addresses + np.uint64(byte_offset), self.is_write, self.gaps
        )

    def footprint_lines(self) -> int:
        """Number of distinct cache lines the trace touches."""
        return len(np.unique(self.lines))

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path, addresses=self.addresses, is_write=self.is_write, gaps=self.gaps
        )

    @staticmethod
    def load(path: str | Path) -> "Trace":
        with np.load(path) as data:
            return Trace(data["addresses"], data["is_write"], data["gaps"])

    def save_text(self, path: str | Path) -> None:
        """Write a dinero-style text trace: one ``R|W <hex addr> <gap>``
        record per line (interoperable with external tools and editors)."""
        with open(path, "w") as fh:
            fh.write("# repro trace v1: R|W address(hex) gap\n")
            for addr, w, g in zip(
                self.addresses.tolist(), self.is_write.tolist(), self.gaps.tolist()
            ):
                fh.write(f"{'W' if w else 'R'} {addr:x} {g}\n")

    @staticmethod
    def load_text(path: str | Path) -> "Trace":
        """Read the text format written by :meth:`save_text` (``#`` lines
        and blank lines are ignored; gap defaults to 0 when omitted)."""
        records: list[tuple[int, bool, int]] = []
        with open(path) as fh:
            for lineno, raw in enumerate(fh, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) not in (2, 3) or parts[0] not in ("R", "W"):
                    raise ConfigError(f"{path}:{lineno}: bad record {line!r}")
                gap = int(parts[2]) if len(parts) == 3 else 0
                records.append((int(parts[1], 16), parts[0] == "W", gap))
        return Trace.from_records(records)

    @staticmethod
    def from_records(records: list[tuple[int, bool, int]]) -> "Trace":
        """Build a trace from ``(address, is_write, gap)`` tuples (tests)."""
        if records:
            addrs, writes, gaps = zip(*records)
        else:
            addrs, writes, gaps = (), (), ()
        return Trace(
            np.asarray(addrs, dtype=np.uint64),
            np.asarray(writes, dtype=np.bool_),
            np.asarray(gaps, dtype=np.uint32),
        )

    @staticmethod
    def from_lines(
        lines: np.typing.ArrayLike,
        is_write: np.typing.ArrayLike | None = None,
        gap: int = 0,
    ) -> "Trace":
        """Build a trace from cache-line numbers with a constant gap."""
        lines = np.asarray(lines, dtype=np.uint64)
        addrs = lines << np.uint64(LINE_SHIFT)
        writes = (
            np.zeros(len(lines), dtype=np.bool_)
            if is_write is None
            else np.asarray(is_write, dtype=np.bool_)
        )
        gaps = np.full(len(lines), gap, dtype=np.uint32)
        return Trace(addrs, writes, gaps)


def interleave_round_robin(traces: list[Trace]) -> list[tuple[int, MemoryAccess]]:
    """Round-robin interleaving of several traces into ``(core, access)``
    pairs.  Useful for feeding multiprogrammed streams to non-timed models
    (the timed simulator interleaves by simulated time instead)."""
    iters = [iter(t) for t in traces]
    out: list[tuple[int, MemoryAccess]] = []
    live = set(range(len(traces)))
    while live:
        for core in sorted(live.copy()):
            try:
                out.append((core, next(iters[core])))
            except StopIteration:
                live.discard(core)
    return out
