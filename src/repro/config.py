"""System configuration for the baseline DNUCA-CMP (paper Table I).

The paper's baseline is an 8-core SPARCv9 CMP with:

* a 16 MB L2 built from 16 physical banks of 1 MB each, 8-way set
  associative, 64 B lines (a "128-way equivalent" cache of 2048 sets),
* per-core 64 KB 2-way L1 with 3-cycle access,
* bank access latency between 10 and 70 cycles depending on hop distance,
* 260-cycle memory latency, 16 outstanding requests per core,
* 4 GHz, 4-wide out-of-order cores.

Everything in this module is expressed through dataclasses so that tests and
benchmarks can run scaled-down versions of the machine (fewer sets per bank,
shorter traces) without touching any other code: stack-distance geometry is
scale-invariant as long as cache capacity and workload footprints scale
together.  :func:`baseline_config` builds the paper machine;
:func:`scaled_config` builds a linearly scaled one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.util.bits import LINE_SIZE


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class L1Config:
    """Per-core L1 data cache parameters (paper: 64 KB, 2-way, 3 cycles)."""

    size_bytes: int = 64 * 1024
    ways: int = 2
    line_size: int = LINE_SIZE
    access_cycles: int = 3

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)

    def validate(self) -> None:
        if self.size_bytes % (self.ways * self.line_size):
            raise ConfigError("L1 size must be a multiple of ways * line size")
        if not _is_pow2(self.num_sets):
            raise ConfigError("L1 set count must be a power of two")


@dataclass(frozen=True)
class L2Config:
    """Banked DNUCA L2 parameters (paper: 16 x 1 MB banks, 8-way, 64 B)."""

    num_banks: int = 16
    bank_ways: int = 8
    sets_per_bank: int = 2048
    line_size: int = LINE_SIZE
    #: cycles a bank's port is busy serving one access (queueing model).
    bank_busy_cycles: int = 4
    #: minimum access latency: a core hitting its adjacent Local bank.
    min_latency: int = 10
    #: maximum access latency without contention (7 hops away).
    max_latency: int = 70

    @property
    def bank_size_bytes(self) -> int:
        return self.bank_ways * self.sets_per_bank * self.line_size

    @property
    def total_size_bytes(self) -> int:
        return self.num_banks * self.bank_size_bytes

    @property
    def total_ways(self) -> int:
        """Associativity of the '128-way equivalent' view of the cache."""
        return self.num_banks * self.bank_ways

    def validate(self) -> None:
        if not _is_pow2(self.sets_per_bank):
            raise ConfigError("sets per bank must be a power of two")
        if self.num_banks % 2:
            raise ConfigError("banks must split evenly into Local/Center halves")
        if self.min_latency >= self.max_latency:
            raise ConfigError("min latency must be below max latency")


@dataclass(frozen=True)
class CoreConfig:
    """Analytic out-of-order core model parameters.

    The paper simulates a 4 GHz, 30-stage, 4-wide fetch/decode machine with a
    128-entry ROB and 16 outstanding misses per core.  Our analytic model
    consumes ``base_cpi`` for non-memory work and overlaps memory stalls up
    to ``max_outstanding`` requests (bounded further per workload by its
    memory-level parallelism).
    """

    frequency_ghz: float = 4.0
    width: int = 4
    rob_entries: int = 128
    base_cpi: float = 0.25
    max_outstanding: int = 16

    def validate(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigError("base CPI must be positive")
        if self.max_outstanding < 1:
            raise ConfigError("need at least one outstanding request")


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory parameters (paper: 260 cycles, 64 GB/s, 4 GB DRAM)."""

    latency_cycles: int = 260
    bandwidth_gbs: float = 64.0
    size_bytes: int = 4 * 1024**3

    def validate(self) -> None:
        if self.latency_cycles <= 0:
            raise ConfigError("memory latency must be positive")


@dataclass(frozen=True)
class ProfilerConfig:
    """MSA profiler hardware parameters (paper Section III.A / Table II)."""

    partial_tag_bits: int = 12
    set_sampling: int = 32  #: profile 1 in ``set_sampling`` sets.
    #: fraction of total cache ways assignable to one core (paper: 9/16).
    max_capacity_num: int = 9
    max_capacity_den: int = 16
    hit_counter_bits: int = 32
    lru_pointer_bits: int = 6

    def max_assignable_ways(self, total_ways: int) -> int:
        return (total_ways * self.max_capacity_num) // self.max_capacity_den

    def validate(self) -> None:
        if not 0 < self.max_capacity_num <= self.max_capacity_den:
            raise ConfigError("capacity cap must be a fraction in (0, 1]")
        if self.set_sampling < 1:
            raise ConfigError("set sampling ratio must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Decision-guard and checkpointing knobs (see :mod:`repro.resilience`).

    The guard validates every epoch decision against hard invariants and
    falls back to the last-known-good partition on violations; sustained
    failures descend the degraded-mode ladder (bank-aware → equal-share →
    frozen) after ``degrade_after`` consecutive bad epochs, and recovery
    climbs one rung per ``hysteresis_epochs`` consecutive healthy epochs.
    """

    guard_enabled: bool = True
    #: consecutive healthy epochs required to climb one ladder rung back up.
    hysteresis_epochs: int = 2
    #: consecutive failed epochs per ladder rung descended.
    degrade_after: int = 3
    #: smallest share the guard allows any core (paper floor: one way).
    min_ways: int = 1
    #: completed sweep items between checkpoint snapshots.
    checkpoint_every: int = 25
    #: deep runtime invariant checking (LRU-stack uniqueness, way
    #: conservation, MSA mass, Rules 1-3 post-aggregation).  Expensive;
    #: violations raise :class:`~repro.resilience.errors.SanitizerViolation`
    #: and are never contained by the guard.
    sanitize: bool = False

    def validate(self) -> None:
        if self.hysteresis_epochs < 1:
            raise ConfigError("hysteresis must be at least one epoch")
        if self.degrade_after < 1:
            raise ConfigError("degrade_after must be at least one failure")
        if self.min_ways < 1:
            raise ConfigError("every core must keep at least one way")
        if self.checkpoint_every < 1:
            raise ConfigError("checkpoint interval must be at least one item")


@dataclass(frozen=True)
class SystemConfig:
    """Complete CMP description (paper Table I by default)."""

    num_cores: int = 8
    l1: L1Config = field(default_factory=L1Config)
    l2: L2Config = field(default_factory=L2Config)
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    profiler: ProfilerConfig = field(default_factory=ProfilerConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: cycles between dynamic repartitioning decisions (paper: 100 M).
    epoch_cycles: int = 100_000_000

    def validate(self) -> "SystemConfig":
        if self.num_cores < 1:
            raise ConfigError("need at least one core")
        if self.l2.num_banks < self.num_cores:
            raise ConfigError("need at least one Local bank per core")
        self.l1.validate()
        self.l2.validate()
        self.core.validate()
        self.memory.validate()
        self.profiler.validate()
        self.resilience.validate()
        return self

    @property
    def max_ways_per_core(self) -> int:
        return self.profiler.max_assignable_ways(self.l2.total_ways)


def baseline_config() -> SystemConfig:
    """The full paper machine (Table I)."""
    return SystemConfig().validate()


def scaled_config(scale: int = 8, epoch_cycles: int = 1_500_000) -> SystemConfig:
    """A linearly scaled baseline: same banks/ways, ``1/scale`` sets per bank.

    With ``scale=8`` the L2 is 2 MB (16 banks x 256 sets x 8 ways) which keeps
    every structural property of the paper machine (bank count, associativity,
    Local/Center split, latency range) while making trace-driven simulation
    fast enough for tests.  Workload footprints must be scaled by the caller
    (see :func:`repro.workloads.spec_like.suite`).
    """
    if scale < 1 or 2048 % scale:
        raise ConfigError("scale must divide 2048")
    base = SystemConfig()
    # Set sampling scales with the set count so the profiler keeps the same
    # number of monitored sets (64) and hence the same statistical power.
    sampling = max(1, base.profiler.set_sampling // scale)
    cfg = replace(
        base,
        l2=replace(base.l2, sets_per_bank=2048 // scale),
        profiler=replace(base.profiler, set_sampling=sampling),
        epoch_cycles=epoch_cycles,
    )
    return cfg.validate()


def default_scale() -> int:
    """Scale factor for benchmarks: 1 (full paper machine) if ``REPRO_FULL``
    is set in the environment, otherwise 8."""
    return 1 if os.environ.get("REPRO_FULL") else 8
