"""Checkpoint/resume for long sweeps: atomic, integrity-checked JSON.

A 1000-mix Monte Carlo sweep or an 8-set detailed-simulation sweep is hours
of work that a kill -9, OOM or power cut should not erase.  The discipline
here is the standard production one:

* snapshots are **atomic and durable** — written to a temp file in the same
  directory, fsynced, ``os.replace``d over the target, and the containing
  directory is fsynced too, so a crash mid-write leaves either the old
  snapshot or the new one (never a torn file) and a crash right *after* the
  rename cannot roll it back;
* snapshots are **integrity-checked** — a SHA-256 checksum over the
  canonical payload is verified on load, and any parse/schema/checksum
  failure raises :class:`~repro.resilience.errors.CheckpointCorrupt` rather
  than silently resuming from garbage;
* snapshots are **keyed by their parameters** — the sweep's defining
  metadata (seed, machine shape, ...) is stored alongside the results, and
  resuming with different parameters is refused, because it would splice
  statistics from two different experiments;
* snapshots keep **one generation of history** — before a snapshot is
  replaced, the previous (verified-at-write-time) one is preserved as a
  ``.bak`` sibling, and :func:`load_checkpoint` falls back to it when the
  primary fails integrity checks.  Atomic replacement already rules out
  torn writes by *this* code; the backup covers everything it cannot —
  filesystem corruption, truncation by other tools, hand edits — at the
  cost of re-running at most one checkpoint interval.

Resumability relies on the sweeps being *prefix-deterministic*: the i-th
work item depends only on the seed (``random_mixes`` draws sequentially), so
completed items can be restored verbatim and the remainder recomputed
bit-identically.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import CheckpointCorrupt, CheckpointMismatchError, ConfigError
from repro.util.atomic_write import atomic_write_bytes, atomic_write_text

FORMAT = "repro-sweep-checkpoint"
VERSION = 1

#: suffix of the one-generation backup kept beside every snapshot.
BACKUP_SUFFIX = ".bak"


def backup_path(path: str) -> str:
    """The ``.bak`` sibling holding the previous snapshot generation."""
    return f"{path}{BACKUP_SUFFIX}"


def _payload_digest(kind: str, meta: dict, completed: list) -> str:
    canonical = json.dumps(
        {"kind": kind, "meta": meta, "completed": completed},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def save_checkpoint(path: str, kind: str, meta: dict, completed: list) -> None:
    """Durably write one snapshot (temp + fsync file + replace + fsync dir,
    via :func:`repro.util.atomic_write.atomic_write_text`).

    The snapshot being replaced, if any, is first preserved verbatim as a
    ``.bak`` sibling (also atomically), so there is always a previous
    generation to fall back to when the primary is later found damaged.
    """
    try:
        with open(path, "rb") as fh:
            previous = fh.read()
    except FileNotFoundError:
        previous = None
    if previous is not None:
        atomic_write_bytes(backup_path(path), previous)
    payload = {
        "format": FORMAT,
        "version": VERSION,
        "kind": kind,
        "meta": meta,
        "completed": completed,
        "checksum": _payload_digest(kind, meta, completed),
    }
    atomic_write_text(path, json.dumps(payload))


def load_checkpoint(path: str, kind: str) -> tuple[dict, list]:
    """Load and verify a snapshot; returns ``(meta, completed)``.

    A snapshot that fails parse, schema, version, kind or checksum
    validation is not fatal on its own: the ``.bak`` sibling written by
    :func:`save_checkpoint` (the previous generation, verified when it was
    the primary) is tried next.  :class:`CheckpointCorrupt` is raised only
    when the primary is damaged *and* no intact backup exists.  A missing
    primary raises :class:`FileNotFoundError` — that is a normal "nothing
    to resume", not corruption.
    """
    try:
        return _load_one(path, kind)
    except CheckpointCorrupt as primary_error:
        try:
            meta, completed = _load_one(backup_path(path), kind)
        except FileNotFoundError:
            raise primary_error from None
        except CheckpointCorrupt as backup_error:
            raise CheckpointCorrupt(
                f"{path}: snapshot and its backup are both unreadable "
                f"(primary: {primary_error}; backup: {backup_error})"
            ) from primary_error
        return meta, completed


def _load_one(path: str, kind: str) -> tuple[dict, list]:
    with open(path, encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise CheckpointCorrupt(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise CheckpointCorrupt(f"{path}: not a {FORMAT} file")
    if payload.get("version") != VERSION:
        raise CheckpointCorrupt(
            f"{path}: snapshot version {payload.get('version')!r}, "
            f"this build reads version {VERSION}"
        )
    if payload.get("kind") != kind:
        raise CheckpointCorrupt(
            f"{path}: holds a {payload.get('kind')!r} sweep, expected {kind!r}"
        )
    meta, completed = payload.get("meta"), payload.get("completed")
    if not isinstance(meta, dict) or not isinstance(completed, list):
        raise CheckpointCorrupt(f"{path}: malformed snapshot body")
    if payload.get("checksum") != _payload_digest(kind, meta, completed):
        raise CheckpointCorrupt(f"{path}: checksum mismatch (truncated or edited)")
    return meta, completed


class SweepCheckpoint:
    """Progress store for one resumable sweep.

    ``resume=True`` restores previously completed items when a matching
    snapshot exists; a snapshot whose metadata disagrees with the current
    sweep parameters is refused (:class:`CheckpointCorrupt`), because its
    items belong to a different experiment.
    """

    def __init__(
        self,
        path: str | None,
        kind: str,
        meta: dict,
        *,
        every: int = 25,
        resume: bool = False,
    ) -> None:
        if every < 1:
            raise ConfigError("checkpoint interval must be at least 1 item")
        self.path = path
        self.kind = kind
        self.meta = dict(meta)
        self.every = every
        self.completed: list = []
        if resume and path is not None:
            try:
                meta_on_disk, completed = load_checkpoint(path, kind)
            except FileNotFoundError:
                pass  # nothing to resume — fresh sweep
            else:
                if meta_on_disk != self.meta:
                    keys = sorted(
                        set(meta_on_disk) | set(self.meta)
                    )
                    diff = tuple(
                        k for k in keys
                        if meta_on_disk.get(k) != self.meta.get(k)
                    )
                    detail = "; ".join(
                        f"{k}: snapshot {meta_on_disk.get(k)!r} vs "
                        f"current {self.meta.get(k)!r}"
                        for k in diff
                    )
                    raise CheckpointMismatchError(
                        f"{path}: snapshot belongs to a different "
                        f"experiment ({detail}); refusing to splice",
                        mismatched=diff,
                    )
                self.completed = completed

    def __len__(self) -> int:
        return len(self.completed)

    def record(self, item: dict) -> None:
        """Append one completed work item; snapshots every ``every`` items."""
        self.completed.append(item)
        if self.path is not None and len(self.completed) % self.every == 0:
            self.save()

    def save(self) -> None:
        if self.path is not None:
            save_checkpoint(self.path, self.kind, self.meta, self.completed)
