"""Seeded fault injection for the MSA profiling / repartitioning path.

The dynamic scheme trusts noisy hardware profilers (12-bit partial tags,
1-in-32 set sampling) for every epoch decision; this module makes that trust
*testable* by corrupting what the controller reads in precisely controlled,
reproducible ways:

* ``zero``       — the core's histogram reads as all zeros (dead profiler);
* ``freeze``     — the histogram is pinned to its value at fault onset
  (stuck counters: stale but well-formed data);
* ``corrupt``    — a seeded RNG rescales random counter bins by factors in
  ``[-4, 64]`` (bit flips / glitched increments; occasionally produces
  negative counts the decision guard can catch);
* ``degenerate`` — one hit counter is driven hard negative so the projected
  miss curve is non-monotone (guaranteed-detectable garbage);
* ``drop-epoch`` — the controller's epoch boundary simply does not fire.

Faults are described declaratively by a :class:`FaultPlan` (seed + specs),
so every failure scenario is replayable from its constructor arguments or
from the CLI string form, e.g. ``"0:zero@2,3:corrupt@1-4,*:drop-epoch@5"``.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util.rng import rng_stream

FAULT_KINDS = ("zero", "freeze", "corrupt", "degenerate", "drop-epoch")

#: core index meaning "not tied to one core" (only valid for drop-epoch).
ANY_CORE = -1


@dataclass(frozen=True)
class FaultSpec:
    """One fault: which core, what kind, and over which epoch window.

    ``start_epoch`` is inclusive and ``end_epoch`` exclusive (``None`` means
    the fault never clears); epoch 0 is the first repartitioning decision.
    """

    core: int
    kind: str
    start_epoch: int = 0
    end_epoch: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; "
                              f"choose from {FAULT_KINDS}")
        if self.core == ANY_CORE and self.kind != "drop-epoch":
            raise ConfigError("'*' (any core) is only valid for drop-epoch")
        if self.core < ANY_CORE:
            raise ConfigError("fault core must be a core index or '*'")
        if self.start_epoch < 0:
            raise ConfigError("fault start epoch must be non-negative")
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ConfigError("fault end epoch must exceed its start epoch")

    def active(self, epoch: int) -> bool:
        if epoch < self.start_epoch:
            return False
        return self.end_epoch is None or epoch < self.end_epoch

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``CORE:KIND``, ``CORE:KIND@START`` or ``CORE:KIND@A-B``."""
        head, _, window = text.strip().partition("@")
        core_s, sep, kind = head.partition(":")
        if not sep or not kind:
            raise ConfigError(f"fault spec {text!r} is not CORE:KIND[@EPOCHS]")
        try:
            core = ANY_CORE if core_s.strip() == "*" else int(core_s)
        except ValueError:
            raise ConfigError(f"fault core {core_s!r} is not an integer or '*'")
        start, end = 0, None
        if window:
            a, sep, b = window.partition("-")
            try:
                start = int(a)
                end = int(b) if sep else None
            except ValueError:
                raise ConfigError(f"fault window {window!r} is not N or A-B")
        return cls(core, kind.strip(), start, end)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure scenario: a seed plus a set of faults."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "FaultPlan":
        """Build a plan from the CLI form: comma-separated fault specs."""
        specs = tuple(
            FaultSpec.parse(part) for part in text.split(",") if part.strip()
        )
        return cls(specs, seed)

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    def __str__(self) -> str:
        parts = []
        for f in self.faults:
            core = "*" if f.core == ANY_CORE else str(f.core)
            window = ""
            if f.start_epoch or f.end_epoch is not None:
                window = f"@{f.start_epoch}"
                if f.end_epoch is not None:
                    window += f"-{f.end_epoch}"
            parts.append(f"{core}:{f.kind}{window}")
        return ",".join(parts)


class FaultInjector:
    """Applies a :class:`FaultPlan` to the controller's profiler reads.

    The injector sits between the profilers and the epoch controller: the
    controller passes every histogram it is about to trust through
    :meth:`filter_histogram` and asks :meth:`drops_epoch` before acting on a
    boundary.  All corruption is keyed by ``(seed, core, epoch)`` so the
    same plan replays bit-identically.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._frozen: dict[int, np.ndarray] = {}
        self.events: list[str] = []

    def _log(self, epoch: int, message: str) -> None:
        self.events.append(f"epoch {epoch}: {message}")

    def drops_epoch(self, epoch: int) -> bool:
        """True when an active ``drop-epoch`` fault swallows this boundary."""
        for fault in self.plan.faults:
            if fault.kind == "drop-epoch" and fault.active(epoch):
                self._log(epoch, "epoch boundary dropped")
                return True
        return False

    def filter_histogram(
        self, core: int, histogram: np.ndarray, epoch: int
    ) -> np.ndarray:
        """The histogram the controller *sees* for ``core`` at ``epoch``."""
        out = np.asarray(histogram, dtype=np.float64)
        for fault in self.plan.faults:
            if fault.core != core or not fault.active(epoch):
                continue
            if fault.kind == "zero":
                out = np.zeros_like(out)
                self._log(epoch, f"core {core} histogram zeroed")
            elif fault.kind == "freeze":
                if core not in self._frozen:
                    self._frozen[core] = out.copy()
                out = self._frozen[core].copy()
                self._log(epoch, f"core {core} histogram frozen")
            elif fault.kind == "corrupt":
                rng = rng_stream(self.plan.seed, "corrupt", core, epoch)
                out = out.copy()
                bins = rng.integers(0, len(out), size=max(1, len(out) // 4))
                out[bins] *= rng.uniform(-4.0, 64.0, size=len(bins))
                self._log(epoch, f"core {core} counters corrupted "
                                 f"({len(set(bins.tolist()))} bins)")
            elif fault.kind == "degenerate":
                rng = rng_stream(self.plan.seed, "degenerate", core, epoch)
                out = out.copy()
                scale = max(float(np.abs(out).max()), 1.0)
                out[int(rng.integers(0, max(1, len(out) - 1)))] = -8.0 * scale
                self._log(epoch, f"core {core} miss curve made non-monotone")
        return out
