"""Guarded partition decisions: invariants, health checks, fallback ladder.

The paper already contains one defensive measure — the 9/16 maximum
assignable capacity cap — because a single bad epoch decision starves
co-runners for 100M cycles.  :class:`DecisionGuard` generalises that into a
full containment layer:

* **hard invariants** — every allocation vector and Bank-aware decision is
  validated before installation: way conservation, the capacity cap, a
  minimum share per core, and Rules 1–3 of the Bank-aware assignment
  (whole Center banks, Local bank comes with Center banks, adjacent-only
  Local sharing);
* **profiler health** — a histogram with too few observations, negative or
  non-finite counters, or a non-monotone projected miss curve flags its
  profiler unhealthy (:class:`~repro.resilience.errors.ProfilerFault`);
* **fallback ladder** — on any violation the guard keeps the last-known-good
  partition instead of installing garbage; sustained failures degrade
  bank-aware → equal-share → frozen, and recovery climbs back one rung per
  ``hysteresis`` consecutive healthy epochs so an intermittent fault cannot
  make the partition flap.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from repro.profiling.miss_curve import MissCurve
from repro.errors import (
    ConfigError,
    PartitionInvariantError,
    ProfilerFault,
)

if TYPE_CHECKING:  # import cycle: cache.partition_map raises our errors
    from repro.cache.partition_map import PartitionMap


class DegradedMode(Enum):
    """The guard's operating rung, from full function to full stop."""

    NORMAL = "bank-aware"
    EQUAL_SHARE = "equal-share"
    FROZEN = "frozen"


#: descent order of the fallback ladder.
LADDER: tuple[DegradedMode, ...] = (
    DegradedMode.NORMAL,
    DegradedMode.EQUAL_SHARE,
    DegradedMode.FROZEN,
)


@dataclass(frozen=True)
class GuardEvent:
    """One logged guard action (fault seen, fallback taken, rung change)."""

    time: float
    kind: str  #: 'fault' | 'fallback' | 'degrade' | 'recover'
    detail: str
    mode: str  #: the operating mode after this event


class DecisionGuard:
    """Validates partitioning decisions and contains bad ones.

    The epoch controller consults the guard at every boundary: histograms
    are health-checked, fresh decisions are invariant-checked, and the
    guard's ladder state tells the controller what to install when anything
    fails.  The guard never raises out of the ladder methods — containment,
    not propagation — but the pure ``validate_*``/``checked_curve`` methods
    raise typed errors for direct use (and property testing).
    """

    def __init__(
        self,
        num_cores: int,
        *,
        num_banks: int,
        bank_ways: int,
        max_ways_per_core: int,
        min_ways: int = 1,
        hysteresis: int = 2,
        degrade_after: int = 3,
    ) -> None:
        if num_cores < 1:
            raise ConfigError("guard needs at least one core")
        if num_banks < num_cores or bank_ways < 1:
            raise ConfigError("guard needs one Local bank per core")
        if min_ways < 1:
            raise ConfigError("every core must keep at least one way")
        if max_ways_per_core < min_ways:
            raise ConfigError("capacity cap below the per-core minimum")
        if hysteresis < 1:
            raise ConfigError("hysteresis must be at least one epoch")
        if degrade_after < 1:
            raise ConfigError("degrade_after must be at least one failure")
        self.num_cores = num_cores
        self.num_banks = num_banks
        self.bank_ways = bank_ways
        self.total_ways = num_banks * bank_ways
        self.max_ways_per_core = max_ways_per_core
        self.min_ways = min_ways
        self.hysteresis = hysteresis
        self.degrade_after = degrade_after
        self.mode = DegradedMode.NORMAL
        self.strikes = 0  #: consecutive failed epochs
        self.healthy_streak = 0  #: consecutive healthy epochs
        self.last_good: PartitionMap | None = None
        self.events: list[GuardEvent] = []

    # -- pure validation ----------------------------------------------------

    def validate_vector(self, ways: Sequence[int]) -> None:
        """Check the machine-safety invariants of an allocation vector."""
        if len(ways) != self.num_cores:
            raise PartitionInvariantError(
                f"vector covers {len(ways)} cores, machine has {self.num_cores}"
            )
        for core, w in enumerate(ways):
            if w != int(w):
                raise PartitionInvariantError(
                    f"core {core} allocated a fractional way count {w!r}"
                )
            if w < self.min_ways:
                raise PartitionInvariantError(
                    f"core {core} allocated {w} ways (minimum {self.min_ways})"
                )
            if w > self.max_ways_per_core:
                raise PartitionInvariantError(
                    f"core {core} allocated {w} ways, above the "
                    f"{self.max_ways_per_core}-way capacity cap"
                )
        total = sum(int(w) for w in ways)
        if total != self.total_ways:
            raise PartitionInvariantError(
                f"allocation sums to {total} ways, machine has {self.total_ways}"
            )

    def validate_decision(
        self,
        ways: Sequence[int],
        center_banks: Sequence[int],
        pairs: Sequence[tuple[int, int]],
    ) -> None:
        """Vector invariants plus Rules 1–3 of the Bank-aware assignment."""
        self.validate_vector(ways)
        if len(center_banks) != self.num_cores:
            raise PartitionInvariantError("one center-bank count per core required")
        if sum(center_banks) != self.num_banks - self.num_cores:
            raise PartitionInvariantError(
                f"{sum(center_banks)} Center banks assigned, machine has "
                f"{self.num_banks - self.num_cores}"
            )
        paired: set[int] = set()
        for a, b in pairs:
            if not 0 <= a < self.num_cores and 0 <= b < self.num_cores:
                raise PartitionInvariantError(f"pair ({a},{b}) out of range")
            if b != a + 1:
                raise PartitionInvariantError(
                    f"Rule 3: pair ({a},{b}) is not adjacent"
                )
            if a in paired or b in paired:
                raise PartitionInvariantError(
                    "Rule 3: a core may share with at most one neighbour"
                )
            paired.update((a, b))
            if center_banks[a] or center_banks[b]:
                raise PartitionInvariantError(
                    "Rule 2: Center-bank cores may not share Local banks"
                )
            if ways[a] + ways[b] != 2 * self.bank_ways:
                raise PartitionInvariantError(
                    f"pair ({a},{b}) splits {ways[a] + ways[b]} ways, "
                    f"not two Local banks"
                )
        for core in range(self.num_cores):
            if center_banks[core]:
                expect = self.bank_ways * (1 + center_banks[core])
                if ways[core] != expect:
                    raise PartitionInvariantError(
                        f"Rule 1/2: core {core} owns {center_banks[core]} "
                        f"Center banks but {ways[core]} ways (expected {expect})"
                    )
            elif core not in paired and ways[core] != self.bank_ways:
                raise PartitionInvariantError(
                    f"unpaired core {core} must own exactly its Local bank"
                )

    def checked_curve(
        self,
        name: str,
        core: int,
        histogram: np.ndarray,
        *,
        min_observations: float = 0.0,
    ) -> MissCurve:
        """Health-check one profiler histogram and build its miss curve.

        Raises :class:`ProfilerFault` on too few observations, negative or
        non-finite counters, or a non-monotone projected curve.
        """
        h = np.asarray(histogram, dtype=np.float64)
        if not np.all(np.isfinite(h)):
            raise ProfilerFault(
                f"core {core} ({name}): non-finite profiler counters", core=core
            )
        if np.any(h < 0):
            raise ProfilerFault(
                f"core {core} ({name}): negative profiler counters "
                "(non-monotone miss curve)", core=core,
            )
        observed = float(h.sum())
        if observed < min_observations:
            raise ProfilerFault(
                f"core {core} ({name}): {observed:.0f} observations, "
                f"need {min_observations:.0f}", core=core,
            )
        try:
            return MissCurve.from_histogram(name, h)
        except ValueError as exc:  # any residual degeneracy
            raise ProfilerFault(
                f"core {core} ({name}): degenerate miss curve: {exc}", core=core
            ) from exc

    # -- fallback ladder ----------------------------------------------------

    def _event(self, time: float, kind: str, detail: str) -> None:
        self.events.append(GuardEvent(time, kind, detail, self.mode.value))

    def record_install(self, pmap: PartitionMap) -> None:
        """Remember a freshly validated, installed partition as known-good."""
        self.last_good = pmap

    def note_failure(self, time: float, error: Exception) -> DegradedMode:
        """Register a failed epoch; returns the mode to operate in.

        The first ``degrade_after - 1`` consecutive failures stay on the
        current rung (the controller keeps the last-known-good partition);
        each further ``degrade_after`` failures descend one rung.
        """
        self.strikes += 1
        self.healthy_streak = 0
        self._event(time, "fault", str(error))
        rung = LADDER.index(self.mode)
        target = min(self.strikes // self.degrade_after, len(LADDER) - 1)
        if target > rung:
            self.mode = LADDER[target]
            self._event(
                time, "degrade",
                f"{self.strikes} consecutive failures: degraded to "
                f"{self.mode.value}",
            )
        else:
            fallback = (
                "holding last-known-good partition"
                if self.last_good is not None
                else "holding initial partition (no known-good yet)"
            )
            self._event(time, "fallback", fallback)
        return self.mode

    def note_healthy(self, time: float) -> DegradedMode:
        """Register a healthy epoch; climbs one rung per ``hysteresis``
        consecutive healthy epochs.  Returns the mode to operate in."""
        self.strikes = 0
        self.healthy_streak += 1
        if self.mode is not DegradedMode.NORMAL and (
            self.healthy_streak >= self.hysteresis
        ):
            rung = LADDER.index(self.mode)
            self.mode = LADDER[rung - 1]
            self.healthy_streak = 0
            self._event(
                time, "recover", f"profilers healthy: recovered to {self.mode.value}"
            )
        return self.mode

    @property
    def fallback_count(self) -> int:
        """Number of epochs the guard refused to install a fresh decision."""
        return sum(1 for e in self.events if e.kind in ("fault",))
