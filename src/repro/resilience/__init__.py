"""Resilience subsystem: fault injection, guarded decisions, checkpoints.

The dynamic partitioning pipeline trusts sampled hardware profilers for
every epoch decision and runs sweeps long enough that crashes are a
when-not-if.  This package makes the reproduction *test* that trust
(:mod:`~repro.resilience.faults`), *contain* its violations
(:mod:`~repro.resilience.guard`) and *survive* interruptions
(:mod:`~repro.resilience.checkpoint`), under a structured error taxonomy
(:mod:`~repro.resilience.errors`).
"""

from repro.resilience.checkpoint import (
    SweepCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import (
    CheckpointCorrupt,
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
    PartitionInvariantError,
    PoisonItemError,
    ProfilerFault,
    ReproError,
    SanitizerViolation,
    SimulationInvariantError,
    WorkerCrashError,
)
from repro.resilience.faults import (
    ANY_CORE,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.guard import (
    LADDER,
    DecisionGuard,
    DegradedMode,
    GuardEvent,
)
from repro.resilience.sanitizer import ReproSanitizer

__all__ = [
    "ANY_CORE",
    "CheckpointCorrupt",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "ConfigError",
    "DecisionGuard",
    "DegradedMode",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GuardEvent",
    "LADDER",
    "PartitionInvariantError",
    "PoisonItemError",
    "ProfilerFault",
    "ReproError",
    "ReproSanitizer",
    "SanitizerViolation",
    "SimulationInvariantError",
    "SweepCheckpoint",
    "WorkerCrashError",
    "load_checkpoint",
    "save_checkpoint",
]
