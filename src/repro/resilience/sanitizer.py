"""Deep runtime invariant checking (the ``--sanitize`` mode).

Static analysis (:mod:`repro.lint`) proves the *code* routes decisions and
randomness through the right choke points; the sanitizer proves the
*running state* stays sound.  When enabled it instruments cache sets and
epoch installs with checks far too expensive for production runs:

* **LRU-stack uniqueness** — every cache set's tag map, tag array and
  recency stamps are mutually consistent and free of duplicates;
* **way conservation** — an installed :class:`PartitionMap` claims every
  bank way exactly once, and the banks' vertical ownership masks agree
  with it way for way;
* **MSA mass conservation** — each profiler's histogram mass equals its
  independently-tracked observation ledger, and the histogram the epoch
  controller is about to *trust* (possibly fault-filtered) carries the
  same mass the profiler actually recorded;
* **Rules 1–3 post-aggregation** — after a Bank-aware decision is
  materialised onto physical banks, the realised map still honours whole
  Center banks, Local-bank completeness and adjacent-only sharing.

Every failure raises :class:`~repro.resilience.errors.SanitizerViolation`
(a :class:`~repro.resilience.errors.ReproError`) with full context.
Unlike the :class:`~repro.resilience.guard.DecisionGuard`, the sanitizer
never contains: a violation is a bug (or an injected fault surfacing), and
the run must stop loudly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import (
    ConfigError,
    PartitionInvariantError,
    SanitizerViolation,
)

if TYPE_CHECKING:  # heavy imports for annotations only
    from repro.cache.bank import CacheBank
    from repro.cache.cacheset import CacheSet
    from repro.cache.nuca import NucaL2
    from repro.cache.partition_map import PartitionMap
    from repro.partitioning.bank_aware import BankAwareDecision


class ReproSanitizer:
    """Stateful deep checker; one instance per instrumented run.

    ``checks_run`` counts individual check invocations so tests (and
    curious users) can confirm the instrumentation actually executed.
    """

    def __init__(self, *, rel_tolerance: float = 1e-6) -> None:
        if rel_tolerance <= 0:
            raise ConfigError("tolerance must be positive")
        self.rel_tolerance = rel_tolerance
        self.checks_run = 0

    # -- cache-set integrity -------------------------------------------------

    def check_set(
        self,
        cset: CacheSet,
        *,
        bank: int | None = None,
        set_index: int | None = None,
    ) -> None:
        """LRU-stack uniqueness and tag-map consistency of one set."""
        self.checks_run += 1
        tags = cset._tags
        resident = [t for t in tags if t is not None]
        if len(set(resident)) != len(resident):
            raise SanitizerViolation(
                "duplicate tag in a cache set (a line resident twice)",
                check="lru-uniqueness", bank=bank, set_index=set_index,
            )
        if len(cset._map) != len(resident):
            raise SanitizerViolation(
                f"tag map tracks {len(cset._map)} lines, ways hold "
                f"{len(resident)}",
                check="tag-map", bank=bank, set_index=set_index,
            )
        for tag, way in cset._map.items():
            if tags[way] != tag:
                raise SanitizerViolation(
                    f"tag map points line {tag} at way {way}, which holds "
                    f"{tags[way]!r}",
                    check="tag-map", bank=bank, set_index=set_index,
                )
        occupied_stamps = [
            cset._stamps[w] for w, t in enumerate(tags) if t is not None
        ]
        if any(s <= 0 for s in occupied_stamps):
            raise SanitizerViolation(
                "occupied way with a never-touched recency stamp",
                check="lru-uniqueness", bank=bank, set_index=set_index,
            )
        if len(set(occupied_stamps)) != len(occupied_stamps):
            raise SanitizerViolation(
                "two occupied ways share a recency stamp (ambiguous LRU "
                "victim)",
                check="lru-uniqueness", bank=bank, set_index=set_index,
            )

    def check_bank(self, bank: CacheBank) -> None:
        """Set integrity plus ownership-mask shape of one bank."""
        self.checks_run += 1
        owners = bank.way_owners()
        if len(owners) != bank.ways:
            raise SanitizerViolation(
                f"bank has {bank.ways} ways but {len(owners)} owner entries",
                check="way-conservation", bank=bank.bank_id,
            )
        for set_index, cset in enumerate(bank.sets):
            self.check_set(cset, bank=bank.bank_id, set_index=set_index)

    # -- partition invariants ------------------------------------------------

    def check_partition_map(
        self, pmap: PartitionMap, num_banks: int, bank_ways: int
    ) -> None:
        """Way conservation: every way claimed exactly once, full coverage."""
        self.checks_run += 1
        try:
            pmap.validate(num_banks, bank_ways)
        except PartitionInvariantError as exc:
            raise SanitizerViolation(
                f"partition map fails physical validation: {exc}",
                check="way-conservation",
            ) from exc
        claimed = sum(p.total_ways for p in pmap.partitions.values())
        total = num_banks * bank_ways
        if claimed != total:
            raise SanitizerViolation(
                f"partition map claims {claimed} ways, machine has {total} "
                "(capacity leak)",
                check="way-conservation",
            )

    def check_installation(self, l2: NucaL2) -> None:
        """Installed state: ownership masks match the map, the directory
        matches residency, every set is internally consistent."""
        self.checks_run += 1
        pmap = l2.partition_map
        if pmap is not None:
            self.check_partition_map(
                pmap, l2.config.num_banks, l2.config.bank_ways
            )
            for core, part in pmap.partitions.items():
                for alloc in part.allocations():
                    owners = l2.banks[alloc.bank].way_owners()
                    for way in alloc.ways:
                        if owners[way] != frozenset((core,)):
                            raise SanitizerViolation(
                                f"way {way} is mapped to core {core} but the "
                                f"bank mask says {owners[way]!r}",
                                check="way-conservation",
                                core=core, bank=alloc.bank,
                            )
        for bank in l2.banks:
            self.check_bank(bank)
        if l2.mode == "shared" and l2.placement == "hash":
            return  # hash-shared mode keeps no directory to cross-check
        directory = l2._where
        resident: dict[int, int] = {}
        for bank in l2.banks:
            for line in bank.resident_lines():
                resident[line] = bank.bank_id
        if len(resident) != len(directory):
            raise SanitizerViolation(
                f"directory tracks {len(directory)} lines, banks hold "
                f"{len(resident)}",
                check="directory",
            )
        for line, bank_id in directory.items():
            if resident.get(line) != bank_id:
                raise SanitizerViolation(
                    f"directory places line {line} in bank {bank_id}, "
                    f"found in {resident.get(line)}",
                    check="directory", bank=bank_id,
                )

    def check_decision_realization(
        self, decision: BankAwareDecision, pmap: PartitionMap
    ) -> None:
        """Rules 1–3 re-verified *after* aggregation onto physical banks."""
        self.checks_run += 1
        n = len(decision.ways)
        vector = pmap.way_vector()
        for core in range(n):
            if vector.get(core) != decision.ways[core]:
                raise SanitizerViolation(
                    f"decision grants {decision.ways[core]} ways, realised "
                    f"map holds {vector.get(core)}",
                    check="realization", core=core,
                )
        paired = {c: pair for pair in decision.pairs for c in pair}
        bank_ways = decision.bank_ways
        for core in range(n):
            part = pmap[core]
            if decision.center_banks[core]:
                allocs = part.allocations()
                if any(a.num_ways != bank_ways for a in allocs):
                    raise SanitizerViolation(
                        "Rule 1: a Center-bank core holds a partial bank",
                        check="realization", core=core,
                    )
                if core not in {a.bank for a in allocs}:
                    raise SanitizerViolation(
                        "Rule 2: a Center-bank core lost its Local bank",
                        check="realization", core=core,
                    )
                if len(allocs) != 1 + decision.center_banks[core]:
                    raise SanitizerViolation(
                        f"core owns {len(allocs)} banks, decision says "
                        f"{1 + decision.center_banks[core]}",
                        check="realization", core=core,
                    )
            elif core in paired:
                if not {a.bank for a in part.allocations()} <= set(paired[core]):
                    raise SanitizerViolation(
                        "Rule 3: a paired core spilled outside the pair's "
                        "two Local banks",
                        check="realization", core=core,
                    )
            else:
                allocs = part.allocations()
                if len(allocs) != 1 or allocs[0].bank != core or (
                    allocs[0].num_ways != bank_ways
                ):
                    raise SanitizerViolation(
                        "an unpaired, Center-less core must own exactly its "
                        "Local bank",
                        check="realization", core=core,
                    )

    # -- profiler mass conservation ------------------------------------------

    def _masses_differ(self, a: float, b: float) -> bool:
        return not math.isclose(
            a, b, rel_tol=self.rel_tolerance, abs_tol=self.rel_tolerance
        )

    def check_profiler(self, profiler: object, *, core: int | None = None) -> None:
        """Histogram mass equals the profiler's own observation ledger."""
        self.checks_run += 1
        ledger = getattr(profiler, "expected_mass", None)
        if ledger is None:
            return  # a custom profiler without a ledger: nothing to check
        raw = getattr(profiler, "raw_histogram", None)
        counters = raw if raw is not None else profiler.histogram
        mass = float(np.asarray(counters, dtype=np.float64).sum())
        if self._masses_differ(mass, float(ledger)):
            raise SanitizerViolation(
                f"histogram mass {mass:.6g} diverged from the observation "
                f"ledger {float(ledger):.6g}",
                check="msa-mass", core=core,
            )

    def check_trusted_histogram(
        self,
        profiler: object,
        trusted: np.ndarray,
        *,
        core: int | None = None,
    ) -> None:
        """The histogram a decision is about to trust carries the mass the
        profiler actually recorded (catches corruption between the two)."""
        self.checks_run += 1
        seen = np.asarray(trusted, dtype=np.float64)
        if not np.all(np.isfinite(seen)):
            raise SanitizerViolation(
                "non-finite counters in the trusted histogram",
                check="msa-mass", core=core,
            )
        truth = float(np.asarray(profiler.histogram, dtype=np.float64).sum())
        if self._masses_differ(float(seen.sum()), truth):
            raise SanitizerViolation(
                f"trusted histogram mass {float(seen.sum()):.6g} != profiler "
                f"mass {truth:.6g} (counters tampered between read and "
                "decision)",
                check="msa-mass", core=core,
            )

    # -- composite hooks -----------------------------------------------------

    def check_epoch_install(
        self,
        l2: NucaL2,
        pmap: PartitionMap,
        decision: BankAwareDecision | None = None,
    ) -> None:
        """Everything worth checking right after an epoch install."""
        self.check_partition_map(pmap, l2.config.num_banks, l2.config.bank_ways)
        if decision is not None:
            self.check_decision_realization(decision, pmap)
        self.check_installation(l2)
