"""Compatibility re-export of the error taxonomy (see :mod:`repro.errors`).

The taxonomy started life here; it moved to the top-level, import-leaf
:mod:`repro.errors` so that foundational modules (``repro.config``, the
lint engine) can use it without dragging in the whole resilience package.
Existing ``from repro.resilience.errors import ...`` imports keep working
through this shim.
"""

from repro.errors import (
    CheckpointCorrupt,
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
    PartitionInvariantError,
    PoisonItemError,
    ProfilerFault,
    ReproError,
    SanitizerViolation,
    SimulationInvariantError,
    WorkerCrashError,
)

__all__ = [
    "CheckpointCorrupt",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "ConfigError",
    "PartitionInvariantError",
    "PoisonItemError",
    "ProfilerFault",
    "ReproError",
    "SanitizerViolation",
    "SimulationInvariantError",
    "WorkerCrashError",
]
