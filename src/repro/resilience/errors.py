"""Structured exception taxonomy for the resilience subsystem.

Every failure the resilience machinery can detect — and therefore contain —
is a :class:`ReproError`, so callers (the epoch controller, the sweep
drivers, the CLI) can distinguish *contained, expected* faults from genuine
programming errors and react without a bare ``except Exception``.

Errors that replace what used to be plain ``ValueError`` raises also inherit
from :class:`ValueError`, so existing callers that caught ``ValueError`` on
those paths keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "CheckpointCorrupt",
    "ConfigError",
    "PartitionInvariantError",
    "ProfilerFault",
    "ReproError",
]


class ReproError(Exception):
    """Base class of every structured error raised by this package."""


class ConfigError(ReproError, ValueError):
    """A component was constructed with out-of-domain parameters."""


class ProfilerFault(ReproError):
    """A profiler's output is unusable for a partitioning decision.

    Raised when an MSA histogram has too few observations, contains negative
    or non-finite counters, or projects a non-monotone miss curve — whether
    the cause is an injected fault or a real profiler pathology.
    """

    def __init__(self, message: str, *, core: int | None = None) -> None:
        super().__init__(message)
        self.core = core


class PartitionInvariantError(ReproError, ValueError):
    """A partitioning decision violates a hard structural invariant.

    The invariants are the ones the paper's scheme depends on for safety:
    way conservation, the 9/16 maximum-assignable-capacity cap, a minimum
    share per core, and Rules 1–3 of the Bank-aware assignment.
    """


class CheckpointCorrupt(ReproError):
    """A sweep checkpoint file failed parsing or integrity validation."""
