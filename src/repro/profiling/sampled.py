"""Hardware-feasible MSA profiler: partial tags + set sampling + capacity cap.

A naive MSA profiler needs a full shadow copy of the cache directory, which
the paper calls "prohibitively high".  The paper's implementation (Section
III.A, Table II) cuts the cost three ways:

* **partial tags** (12 bits) — the stack stores a hash of the line address,
  so distinct lines can alias and corrupt individual depth observations;
* **set sampling** (1 in 32) — only sampled sets are profiled and counts are
  scaled up by the sampling ratio;
* **maximum assignable capacity** (9/16 of the cache, 72 of 128 ways) — the
  stack depth is truncated at the largest partition a core may receive.

The paper reports the combined error within 5 % of a full-tag profile; the
``bench_profiler_accuracy`` benchmark reproduces that claim against
:class:`repro.profiling.msa.MSAProfiler`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.profiling.batched import (
    batch_eligible,
    batched_depth_bins,
    hash_fold_many,
)
from repro.profiling.msa import MSAProfiler
from repro.util.bits import hash_fold, is_pow2

from repro.errors import ConfigError


class SampledMSAProfiler:
    """MSA histogram from sampled sets and hashed (partial) tags."""

    def __init__(
        self,
        num_sets: int,
        positions: int,
        *,
        set_sampling: int = 32,
        partial_tag_bits: int = 12,
        sample_offset: int = 0,
        tag_mode: str = "truncate",
    ) -> None:
        if not is_pow2(num_sets):
            raise ConfigError("num_sets must be a power of two")
        if not is_pow2(set_sampling) or set_sampling > num_sets:
            raise ConfigError("set sampling must be a power of two <= num_sets")
        if positions < 1:
            raise ConfigError("need at least one stack position")
        if partial_tag_bits < 1:
            raise ConfigError("partial tags need at least one bit")
        if not 0 <= sample_offset < set_sampling:
            raise ConfigError("sample offset out of range")
        if tag_mode not in ("truncate", "fold"):
            raise ConfigError("tag_mode must be 'truncate' or 'fold'")
        self.tag_mode = tag_mode
        self.num_sets = num_sets
        self.positions = positions
        self.set_sampling = set_sampling
        self.partial_tag_bits = partial_tag_bits
        self.sample_offset = sample_offset
        self._set_mask = num_sets - 1
        self._sample_mask = set_sampling - 1
        self.sampled_sets = num_sets // set_sampling
        # dense stacks indexed by compressed sampled-set id
        self._stacks: list[list[int]] = [[] for _ in range(self.sampled_sets)]
        self._counters = np.zeros(positions + 1, dtype=np.float64)
        self.observed = 0  #: raw (unscaled) sampled references
        #: mass ledger: sampled observations aged exactly like the counters.
        self._mass = 0.0

    def set_index(self, line: int) -> int:
        return line & self._set_mask

    def is_sampled(self, line: int) -> bool:
        return (self.set_index(line) & self._sample_mask) == self.sample_offset

    def partial_tag(self, line: int) -> int:
        """The stored partial tag (set index dropped, shortened to N bits).

        ``truncate`` keeps the low tag bits — the hardware-typical choice;
        sequential streams then cycle through all 2^N values before any
        alias, so streaming workloads do not fabricate deep stack hits.
        ``fold`` XOR-hashes the whole tag, which spreads aliases uniformly
        (worst case for streams) and is kept for the accuracy ablation.
        """
        set_bits = self.num_sets.bit_length() - 1
        tag = line >> set_bits
        if self.tag_mode == "truncate":
            return tag & ((1 << self.partial_tag_bits) - 1)
        return hash_fold(tag, self.partial_tag_bits)

    def observe(self, line: int) -> int | None:
        """Record one reference; returns the depth for sampled sets, else
        ``None`` (the access bypasses the profiler entirely)."""
        if not self.is_sampled(line):
            return None
        self.observed += 1
        # dense index over the sampled sets (index % sampling == offset)
        sampled_id = self.set_index(line) // self.set_sampling
        stack = self._stacks[sampled_id]
        tag = self.partial_tag(line)
        try:
            depth = stack.index(tag) + 1
        except ValueError:
            depth = self.positions + 1
        if depth <= self.positions:
            del stack[depth - 1]
        stack.insert(0, tag)
        if len(stack) > self.positions:
            stack.pop()
        self._counters[depth - 1] += 1
        self._mass += 1.0
        return depth

    def observe_many(self, lines: Iterable[int]) -> None:
        """Observe many line numbers; see
        :meth:`repro.profiling.msa.MSAProfiler.observe_many` for the batch
        dispatch rules (bit-identical to the per-access reference)."""
        if batch_eligible(lines):
            self._observe_batch(lines)
        else:
            self.observe_many_reference(lines)

    def observe_many_reference(self, lines: Iterable[int]) -> None:
        """The checked per-access reference for :meth:`observe_many`."""
        for line in lines:
            self.observe(int(line))

    def _observe_batch(self, lines: np.ndarray) -> None:
        a = lines.astype(np.int64, copy=False)
        sets = a & self._set_mask
        sub = a[(sets & self._sample_mask) == self.sample_offset]
        if sub.size == 0:
            return
        groups = (sub & self._set_mask) // self.set_sampling
        set_bits = self.num_sets.bit_length() - 1
        tags = sub >> set_bits
        if self.tag_mode == "truncate":
            tags &= (1 << self.partial_tag_bits) - 1
        else:
            tags = hash_fold_many(tags, self.partial_tag_bits)
        # partial tags collide across sets; fold the group id into the key
        # so the kernel's equal-key-implies-equal-group contract holds
        bits = self.partial_tag_bits
        keys = (groups << bits) | tags
        composed = [
            [(g << bits) | tag for tag in stack]
            for g, stack in enumerate(self._stacks)
        ]
        bins, new_stacks = batched_depth_bins(
            keys, groups, self.sampled_sets, self.positions, composed
        )
        mask = (1 << bits) - 1
        self._stacks = [[key & mask for key in st] for st in new_stacks]
        self._counters += np.bincount(bins, minlength=self.positions + 1)
        self.observed += int(sub.size)
        self._mass += float(sub.size)

    # -- scaled histogram queries -------------------------------------------

    @property
    def histogram(self) -> np.ndarray:
        """Counters scaled by the sampling ratio to estimate the full cache."""
        return self._counters * self.set_sampling

    @property
    def raw_histogram(self) -> np.ndarray:
        return self._counters.copy()

    @property
    def total_accesses(self) -> float:
        return float(self.histogram.sum())

    @property
    def expected_mass(self) -> float:
        """What the *raw* counters should sum to (see
        :attr:`repro.profiling.msa.MSAProfiler.expected_mass`)."""
        return self._mass

    def miss_counts(self) -> np.ndarray:
        hits_cum = np.concatenate(([0.0], np.cumsum(self.histogram[:-1])))
        return self.total_accesses - hits_cum

    def misses_at(self, ways: int) -> float:
        if not 0 <= ways <= self.positions:
            raise ConfigError(f"ways must be in 0..{self.positions}")
        return float(self.miss_counts()[ways])

    def miss_ratio_curve(self) -> np.ndarray:
        total = self.total_accesses
        if total == 0:
            return np.ones(self.positions + 1)
        return self.miss_counts() / total

    def reset(self) -> None:
        self._counters[:] = 0.0
        self._mass = 0.0

    def decay(self, factor: float = 0.5) -> None:
        if not 0.0 <= factor <= 1.0:
            raise ConfigError("decay factor must be in [0, 1]")
        self._counters *= factor
        self._mass *= factor


def profile_error(
    reference: MSAProfiler, sampled: SampledMSAProfiler
) -> float:
    """Mean absolute relative error of the sampled miss-ratio curve against
    the exact one (the paper's 'within 5 % of the profiling accuracy').

    Compared over sizes 1..min(K_ref, K_sampled); size 0 is excluded since
    both curves are identically 1 there.
    """
    k = min(reference.positions, sampled.positions)
    ref = reference.miss_ratio_curve()[1 : k + 1]
    est = sampled.miss_ratio_curve()[1 : k + 1]
    denom = np.maximum(ref, 1e-12)
    return float(np.mean(np.abs(est - ref) / denom))
