"""Miss-ratio curves and marginal utility (paper Section III.C).

The MSA histogram projects the miss count of every cache size; the
allocation algorithms consume that projection through *marginal utility*,
the economics concept the paper borrows from von Wieser:

    ``MarginalUtility(n) = (MissRate(c) - MissRate(c + n)) / n``

i.e. the per-way miss reduction of growing an allocation from ``c`` to
``c + n`` ways.  :class:`MissCurve` wraps the projected miss counts with
vectorised marginal-utility queries so the partitioning loops stay cheap
even inside the 1000-mix Monte Carlo harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class MissCurve:
    """Projected misses for allocations of 0..K ways of one workload."""

    name: str
    misses: np.ndarray  #: misses[w] = misses with w dedicated ways
    total_accesses: float

    def __post_init__(self) -> None:
        m = np.asarray(self.misses, dtype=np.float64)
        if m.ndim != 1 or len(m) < 2:
            raise ConfigError("need misses for at least sizes 0 and 1")
        if np.any(np.diff(m) > 1e-9):
            raise ConfigError("miss counts must be non-increasing in ways")
        if self.total_accesses < m[0] - 1e-9:
            raise ConfigError("size-0 misses cannot exceed total accesses")
        object.__setattr__(self, "misses", m)

    @property
    def max_ways(self) -> int:
        return len(self.misses) - 1

    def misses_at(self, ways: int) -> float:
        """Projected misses with ``ways`` dedicated ways (clamped at K —
        an LRU cache larger than the tracked depth cannot miss more)."""
        if ways < 0:
            raise ConfigError("ways must be non-negative")
        return float(self.misses[min(ways, self.max_ways)])

    def miss_ratio_at(self, ways: int) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.misses_at(ways) / self.total_accesses

    def miss_ratio_curve(self) -> np.ndarray:
        if self.total_accesses == 0:
            return np.zeros_like(self.misses)
        return self.misses / self.total_accesses

    # -- marginal utility ----------------------------------------------------

    def marginal_utility(self, current: int, extra: int) -> float:
        """Miss reduction per way of growing from ``current`` by ``extra``."""
        if extra < 1:
            raise ConfigError("extra ways must be positive")
        return (self.misses_at(current) - self.misses_at(current + extra)) / extra

    def marginal_utilities(self, current: int, max_extra: int) -> np.ndarray:
        """``out[n-1]`` = marginal utility of ``n`` extra ways, vectorised
        for n = 1..max_extra (the lookahead scan of the UCP algorithm)."""
        if max_extra < 1:
            raise ConfigError("max_extra must be positive")
        base = self.misses_at(current)
        sizes = np.minimum(current + np.arange(1, max_extra + 1), self.max_ways)
        return (base - self.misses[sizes]) / np.arange(1.0, max_extra + 1)

    def best_marginal_utility(self, current: int, max_extra: int) -> tuple[float, int]:
        """The lookahead step: max marginal utility over 1..max_extra extra
        ways and the (smallest) allocation achieving it."""
        mu = self.marginal_utilities(current, max_extra)
        best = int(np.argmax(mu))
        return float(mu[best]), best + 1

    @staticmethod
    def from_histogram(
        name: str, histogram: np.ndarray, *, total_accesses: float | None = None
    ) -> "MissCurve":
        """Build a curve from an MSA histogram (K hit counters + miss)."""
        h = np.asarray(histogram, dtype=np.float64)
        if h.ndim != 1 or len(h) < 2:
            raise ConfigError("histogram needs K hit counters plus a miss bin")
        total = float(h.sum()) if total_accesses is None else total_accesses
        hits_cum = np.concatenate(([0.0], np.cumsum(h[:-1])))
        return MissCurve(name, total - hits_cum, total)

    @staticmethod
    def from_profiler(profiler: object, name: str | None = None) -> "MissCurve":
        """Build a curve from any profiler exposing ``histogram``."""
        label = name if name is not None else getattr(profiler, "name", "curve")
        return MissCurve.from_histogram(label, profiler.histogram)


def save_curves(path: str | Path, curves: dict[str, MissCurve]) -> None:
    """Persist a set of miss curves to one ``.npz`` file.

    Profiling the whole suite is the slow step of the analytic experiments;
    cached curves make Monte Carlo sweeps and CLI calls instant.
    """
    arrays: dict[str, np.ndarray] = {}
    for name, curve in curves.items():
        arrays[f"misses:{name}"] = curve.misses
        arrays[f"total:{name}"] = np.array([curve.total_accesses])
    np.savez_compressed(path, **arrays)


def load_curves(path: str | Path) -> dict[str, MissCurve]:
    """Load curves written by :func:`save_curves`."""
    out: dict[str, MissCurve] = {}
    with np.load(path) as data:
        names = [k.split(":", 1)[1] for k in data.files if k.startswith("misses:")]
        for name in names:
            out[name] = MissCurve(
                name, data[f"misses:{name}"], float(data[f"total:{name}"][0])
            )
    return out
