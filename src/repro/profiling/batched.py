"""Vectorized multi-set LRU stack-distance computation (the MSA hot path).

The reference profilers (:class:`repro.profiling.msa.MSAProfiler` and the
sampled variant) pay an O(K) ``list.index`` scan per access; at the paper's
K = 128 that dominates every analytic experiment.  This module computes the
same histogram for a whole batch of accesses with numpy array passes only,
using the classic window identity for LRU stack depth:

    depth(i) = 1 + #{ j in (prev_i, i) : prev_j <= prev_i }

where ``prev_i`` is the previous access to the same line (``-1`` if none).
Every line's *first* occurrence inside the window ``(prev_i, i)`` is one
distinct intervening line, i.e. one stack position between line ``i`` and
the top — so counting first occurrences counts the depth.  Accesses with
``prev_i = -1`` and accesses whose count reaches K are misses.  Truncating
the reference stacks at K positions changes nothing: a line that fell off a
K-deep stack would observe depth > K and miss either way, so the
untruncated window count projects the identical histogram.

Counting is done column-by-column over the windows, longest-first: after
sorting queries by descending window length, column ``k`` touches exactly
the queries whose window still extends past ``k`` — one gather + compare
over a shrinking prefix, with no per-element masking.  Queries whose count
reaches K are dropped early (they are misses regardless of the remainder),
and the handful of giant windows left at the end are finished with direct
per-query slices.  Sort keys are narrowed to uint8/uint16 where value
ranges allow, because numpy's radix path on small unsigned dtypes is ~8x
faster than on int64 — the sorts are the fixed cost of the whole kernel.

State continuation: a batch may start from non-empty stacks.  The kernel
prepends a *prologue* — one synthetic access per resident line, LRU first —
which recreates the exact stack state from an empty start (stacks are the
profilers' only carried state), and discards the prologue's own bins.  The
post-batch stacks are rebuilt from each group's last line occurrences,
most recent first, truncated to K — exactly the reference's stack content.
"""

from __future__ import annotations

import numpy as np

#: below this many accesses the per-access Python loop beats the kernel's
#: fixed sort cost; callers use it as the batch-dispatch threshold.
MIN_BATCH = 1024

_CHUNK = 256  #: columns between early miss-pruning passes
_SMALL = 192  #: active-query count below which per-query slices win


def hash_fold_many(values: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized :func:`repro.util.bits.hash_fold` over non-negative ints."""
    if bits <= 0:
        raise ValueError("need a positive tag width")
    mask = (1 << bits) - 1
    v = values.copy()
    folded = np.zeros_like(v)
    while np.any(v):
        folded ^= v & 0xFFFF
        v >>= 16
    out = np.zeros_like(folded)
    while np.any(folded):
        out ^= folded & mask
        folded >>= bits
    return out & mask


def _group_sort_key(groups: np.ndarray, num_groups: int) -> np.ndarray:
    if num_groups <= 256:
        return groups.astype(np.uint8)
    if num_groups <= 65536:
        return groups.astype(np.uint16)
    return groups


def _window_counts(
    prev: np.ndarray, q: np.ndarray, lengths: np.ndarray, positions: int
) -> tuple[np.ndarray, np.ndarray]:
    """First-occurrence counts for the queries ``q`` (grouped coordinates).

    ``lengths[t]`` is the window length of query ``q[t]`` (all >= 1).
    Returns ``(queries, counts)`` in the kernel's processing order.
    """
    max_len = int(lengths.max())
    if max_len < 65536:
        order = np.argsort((max_len - lengths).astype(np.uint16), kind="stable")
    else:
        order = np.argsort(-lengths, kind="stable")
    qs = q[order].astype(np.int64)
    lens = lengths[order]
    starts = (prev[qs] + 1).astype(np.int64)
    thr = prev[qs]
    acc = np.zeros(qs.size, dtype=np.int32)
    # active[k] = number of queries whose window extends past column k
    active = qs.size - np.cumsum(np.bincount(lens, minlength=max_len + 1))
    col = 0
    while col < max_len:
        m = int(active[col])
        if m <= 0:
            break
        if m <= _SMALL:
            for t in range(m):
                lo = starts[t] + col
                hi = starts[t] + lens[t]
                acc[t] += np.count_nonzero(prev[lo:hi] <= thr[t])
            break
        stop = min(col + _CHUNK, max_len)
        for k in range(col, stop):
            m = int(active[k])
            if m <= 0:
                break
            acc[:m] += prev[starts[:m] + k] <= thr[:m]
        col = stop
        if col < max_len:
            m = int(active[col])
            if m > 0:
                dead = acc[:m] >= positions
                if dead.any():
                    # a pruned query misses whatever the remaining columns
                    # hold; the finished-by-length tail [m:] must survive
                    keep = np.concatenate(
                        (np.flatnonzero(~dead), np.arange(m, qs.size))
                    )
                    qs, lens, starts, thr, acc = (
                        arr[keep] for arr in (qs, lens, starts, thr, acc)
                    )
                    active = qs.size - np.cumsum(
                        np.bincount(lens, minlength=max_len + 1)
                    )
    return qs, acc


def batched_depth_bins(
    keys: np.ndarray,
    groups: np.ndarray,
    num_groups: int,
    positions: int,
    stacks: list[list[int]],
) -> tuple[np.ndarray, list[list[int]]]:
    """Histogram bins and updated stacks for one batch of accesses.

    Parameters
    ----------
    keys:
        int64 line identities.  Equal keys must imply equal group (callers
        with per-group key spaces compose the group id into the key).
    groups:
        int64 group (cache-set) index of each access, in ``[0, num_groups)``.
    positions:
        K, the deepest tracked stack position.
    stacks:
        Per-group resident keys, MRU -> LRU, each at most K long — the
        state carried in from previous observations (not mutated).

    Returns
    -------
    ``(bins, new_stacks)`` where ``bins[i]`` is the 0-based histogram bin of
    access ``i`` (depth-1 for hits, ``positions`` for misses) and
    ``new_stacks`` is the post-batch stack state.
    """
    prologue = sum(len(s) for s in stacks)
    if prologue:
        pro_keys = np.empty(prologue, dtype=np.int64)
        pro_groups = np.empty(prologue, dtype=np.int64)
        at = 0
        for g, stack in enumerate(stacks):
            for key in reversed(stack):  # LRU first recreates the order
                pro_keys[at] = key
                pro_groups[at] = g
                at += 1
        keys = np.concatenate((pro_keys, keys))
        groups = np.concatenate((pro_groups, groups))
    n = keys.size
    if n == 0:
        return np.empty(0, dtype=np.int64), [list(s) for s in stacks]

    order = np.argsort(_group_sort_key(groups, num_groups), kind="stable")
    gk = keys[order]
    by_key = np.argsort(gk, kind="stable")
    sk = gk[by_key]
    same = sk[1:] == sk[:-1]
    # prev[i] = grouped index of the previous access to the same key
    prev_by_key = np.full(n, -1, dtype=np.int64)
    prev_by_key[1:][same] = by_key[:-1][same]
    prev64 = np.empty(n, dtype=np.int64)
    prev64[by_key] = prev_by_key
    prev = prev64.astype(np.int32)

    bins_grouped = np.full(n, positions, dtype=np.int64)  # default: miss
    q = np.flatnonzero(prev >= 0)
    if q.size:
        lengths = q.astype(np.int32) - prev[q] - 1
        top = lengths == 0
        bins_grouped[q[top]] = 0  # immediate re-reference: depth 1
        q, lengths = q[~top], lengths[~top]
    if q.size:
        qs, counts = _window_counts(prev, q, lengths, positions)
        bins_grouped[qs] = np.minimum(counts, positions)

    # rebuild stacks: each group's last occurrences, most recent first
    is_last = np.empty(n, dtype=bool)
    last_by_key = np.empty(n, dtype=bool)
    last_by_key[-1] = True
    last_by_key[:-1] = ~same
    is_last[by_key] = last_by_key
    bounds = np.concatenate(
        ([0], np.cumsum(np.bincount(groups, minlength=num_groups)))
    )
    new_stacks: list[list[int]] = []
    for g in range(num_groups):
        lo, hi = int(bounds[g]), int(bounds[g + 1])
        resident = np.flatnonzero(is_last[lo:hi])[::-1][:positions]
        new_stacks.append([int(k) for k in gk[lo + resident]])

    bins = np.empty(n, dtype=np.int64)
    bins[order] = bins_grouped
    return bins[prologue:], new_stacks


def batch_eligible(lines: object, minimum: int = MIN_BATCH) -> bool:
    """Whether ``lines`` can take the batched path bit-identically.

    Requires a non-negative integer ndarray of at least ``minimum`` entries
    whose values fit int64 — anything else falls back to the per-access
    reference loop (which accepts arbitrary iterables of Python ints).
    """
    if not isinstance(lines, np.ndarray) or lines.ndim != 1:
        return False
    if lines.dtype.kind not in "iu" or lines.size < minimum:
        return False
    if lines.dtype == np.uint64 and int(lines.max()) > np.iinfo(np.int64).max:
        return False
    return int(lines.min()) >= 0
