"""MSA stack-distance profiling: exact and hardware-sampled, plus the
miss-curve / marginal-utility layer and the Table II overhead model."""

from repro.profiling.miss_curve import MissCurve, load_curves, save_curves
from repro.profiling.msa import MSAProfiler
from repro.profiling.overhead import (
    OverheadReport,
    profiler_overhead,
    system_overhead_fraction,
)
from repro.profiling.sampled import SampledMSAProfiler, profile_error

__all__ = [
    "MSAProfiler",
    "MissCurve",
    "OverheadReport",
    "SampledMSAProfiler",
    "load_curves",
    "profile_error",
    "profiler_overhead",
    "save_curves",
    "system_overhead_fraction",
]
