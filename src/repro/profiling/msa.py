"""Mattson stack-distance (MSA) cache profiling (paper Section III.A).

MSA exploits the inclusion property of LRU: during any access sequence the
content of an N-way cache is a subset of any larger cache's content, so a
single pass with K+1 counters yields the miss count of *every* cache size up
to K ways.  Counter ``i`` (0-based) counts hits at LRU stack depth ``i+1``
(depth 1 = MRU); the final counter counts accesses beyond depth K or to
lines never seen — misses at every size.

:class:`MSAProfiler` is the exact (full-tag, all-sets) reference.  The
hardware-feasible version with partial tags and set sampling lives in
:mod:`repro.profiling.sampled`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.profiling.batched import batch_eligible, batched_depth_bins
from repro.util.bits import is_pow2

from repro.errors import ConfigError


class MSAProfiler:
    """Exact per-set LRU stack-distance histogram over ``positions`` ways.

    Parameters
    ----------
    num_sets:
        Number of cache sets being modelled (stack distances are per set).
    positions:
        K — the deepest stack position tracked; the histogram has K+1 bins
        (K hit depths plus the miss bin).
    """

    def __init__(self, num_sets: int, positions: int) -> None:
        if not is_pow2(num_sets):
            raise ConfigError("num_sets must be a power of two")
        if positions < 1:
            raise ConfigError("need at least one stack position")
        self.num_sets = num_sets
        self.positions = positions
        self._set_mask = num_sets - 1
        self._stacks: list[list[int]] = [[] for _ in range(num_sets)]
        self._counters = np.zeros(positions + 1, dtype=np.float64)
        #: mass ledger: observations recorded, aged exactly like the
        #: counters, so counter mass is checkable at any time (sanitizer).
        self._mass = 0.0

    # -- observation --------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line & self._set_mask

    def observe(self, line: int) -> int:
        """Record one reference.  Returns the observed stack depth
        (1-based; ``positions + 1`` denotes a miss at every tracked size)."""
        stack = self._stacks[self.set_index(line)]
        try:
            depth = stack.index(line) + 1
        except ValueError:
            depth = self.positions + 1
        if depth <= self.positions:
            del stack[depth - 1]
        stack.insert(0, line)
        if len(stack) > self.positions:
            stack.pop()
        self._counters[depth - 1] += 1
        self._mass += 1.0
        return depth

    def observe_many(self, lines: Iterable[int]) -> None:
        """Observe many line numbers (the bulk entry point for traces).

        Large non-negative integer arrays take the vectorized batch path
        (:mod:`repro.profiling.batched`), which produces bit-identical
        counters, mass and stack state to the per-access reference loop;
        everything else falls back to :meth:`observe_many_reference`.
        """
        if batch_eligible(lines):
            self._observe_batch(lines)
        else:
            self.observe_many_reference(lines)

    def observe_many_reference(self, lines: Iterable[int]) -> None:
        """The checked per-access reference for :meth:`observe_many`."""
        for line in lines:
            self.observe(int(line))

    def _observe_batch(self, lines: np.ndarray) -> None:
        a = lines.astype(np.int64, copy=False)
        bins, self._stacks = batched_depth_bins(
            a, a & self._set_mask, self.num_sets, self.positions, self._stacks
        )
        self._counters += np.bincount(bins, minlength=self.positions + 1)
        self._mass += float(a.size)

    # -- histogram queries ---------------------------------------------------

    @property
    def histogram(self) -> np.ndarray:
        """Counters C1..CK, C_miss (a copy)."""
        return self._counters.copy()

    @property
    def total_accesses(self) -> float:
        return float(self._counters.sum())

    @property
    def expected_mass(self) -> float:
        """What the counters *should* sum to, tracked independently of them
        (observations accumulate it, :meth:`decay`/:meth:`reset` age it)."""
        return self._mass

    def hit_counts(self) -> np.ndarray:
        """Hits at each stack depth 1..K (excludes the miss counter)."""
        return self._counters[:-1].copy()

    def miss_counts(self) -> np.ndarray:
        """``miss_counts()[w]`` = misses the workload would take in a
        ``w``-way LRU cache of this set count, for w = 0..K.  This is the
        inclusion-property projection the paper uses: shrinking the cache
        converts hits at depths > w into misses."""
        hits_cum = np.concatenate(([0.0], np.cumsum(self._counters[:-1])))
        return self.total_accesses - hits_cum

    def misses_at(self, ways: int) -> float:
        if not 0 <= ways <= self.positions:
            raise ConfigError(f"ways must be in 0..{self.positions}")
        return float(self.miss_counts()[ways])

    def miss_ratio_curve(self) -> np.ndarray:
        """Cumulative miss *ratio* for every size 0..K (paper Fig. 3 y-axis)."""
        total = self.total_accesses
        if total == 0:
            return np.ones(self.positions + 1)
        return self.miss_counts() / total

    # -- epoch management ----------------------------------------------------

    def reset(self) -> None:
        """Clear counters (stack state is kept: the cache does not forget)."""
        self._counters[:] = 0.0
        self._mass = 0.0

    def decay(self, factor: float = 0.5) -> None:
        """Exponentially age the counters between epochs so the dynamic
        controller tracks phase changes without forgetting instantly."""
        if not 0.0 <= factor <= 1.0:
            raise ConfigError("decay factor must be in [0, 1]")
        self._counters *= factor
        self._mass *= factor

    def stack_of_set(self, set_index: int) -> list[int]:
        """MRU->LRU line numbers tracked for one set (for tests)."""
        return list(self._stacks[set_index])
