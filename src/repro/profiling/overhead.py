"""Hardware overhead model of the MSA profiler (paper Table II).

The profiler's storage cost has three components, with the paper's
parameters (12-bit partial tags, 1-in-32 set sampling, 72 assignable ways,
2048 sets) in parentheses:

* partial tags: ``tag_width x ways x sampled_sets``             (54 kbit)
* LRU stack:    ``(pointer_size x ways + head/tail) x sampled_sets``
                                                                 (27 kbit)
* hit counters: ``ways x counter_size``                          (2.25 kbit)

for ≈83 kbit per profiler — about 0.4–0.5 % of the 16 MB L2 for all eight
profilers.  The paper's 27 kbit figure corresponds to 6-bit LRU pointers
with the (tiny) head/tail pointers rounded away; both terms are exposed as
parameters here so the arithmetic is reproducible exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProfilerConfig, SystemConfig


@dataclass(frozen=True)
class OverheadReport:
    """Storage cost of one MSA profiler, in bits."""

    partial_tag_bits: int
    lru_stack_bits: int
    hit_counter_bits: int

    @property
    def total_bits(self) -> int:
        return self.partial_tag_bits + self.lru_stack_bits + self.hit_counter_bits

    @property
    def total_kbits(self) -> float:
        return self.total_bits / 1024

    def as_rows(self) -> list[tuple[str, float]]:
        """(structure, kbits) rows in the order of paper Table II."""
        return [
            ("Partial Tags", self.partial_tag_bits / 1024),
            ("LRU Stack Distance Implem.", self.lru_stack_bits / 1024),
            ("Hit Counters", self.hit_counter_bits / 1024),
        ]


def profiler_overhead(
    *,
    num_sets: int = 2048,
    profiler: ProfilerConfig | None = None,
    total_ways: int = 128,
    head_tail_bits: int = 0,
) -> OverheadReport:
    """Storage for one profiler, following Table II's equations.

    ``head_tail_bits`` defaults to 0 to reproduce the paper's 27 kbit LRU
    figure exactly; pass ``2 * lru_pointer_bits`` to also count the per-set
    head/tail pointers the equation mentions (+0.75 kbit).
    """
    prof = profiler or ProfilerConfig()
    prof.validate()
    ways = prof.max_assignable_ways(total_ways)
    sampled_sets = num_sets // prof.set_sampling
    if sampled_sets < 1:
        raise ValueError("sampling ratio leaves no profiled sets")
    tags = prof.partial_tag_bits * ways * sampled_sets
    lru = (prof.lru_pointer_bits * ways + head_tail_bits) * sampled_sets
    counters = ways * prof.hit_counter_bits
    return OverheadReport(tags, lru, counters)


def system_overhead_fraction(config: SystemConfig | None = None) -> float:
    """All profilers' storage as a fraction of the L2 data capacity (the
    paper's '0.4 % of our baseline L2 cache design' headline)."""
    cfg = (config or SystemConfig()).validate()
    report = profiler_overhead(
        num_sets=cfg.l2.sets_per_bank,
        profiler=cfg.profiler,
        total_ways=cfg.l2.total_ways,
    )
    total_profiler_bits = report.total_bits * cfg.num_cores
    cache_bits = cfg.l2.total_size_bytes * 8
    return total_profiler_bits / cache_bits
