"""repro — Bank-aware Dynamic Cache Partitioning for Multicore Architectures.

A complete Python reproduction of Kaseridis, Stuecheli & John (ICPP 2009):
an 8-core CMP with a 16-bank DNUCA L2, MSA stack-distance profiling in
hardware-feasible form, marginal-utility cache partitioning under realistic
bank restrictions, and the trace-driven full-system simulation
infrastructure needed to evaluate it.

Typical entry points:

>>> from repro import scaled_config, get, generate_trace
>>> from repro.profiling import MSAProfiler, MissCurve
>>> from repro.partitioning import bank_aware_partition
>>> from repro.sim import run_mix, compare_schemes

See README.md for the architecture overview and DESIGN.md/EXPERIMENTS.md
for the per-paper-figure experiment index.
"""

from repro.config import (
    ResilienceConfig,
    SystemConfig,
    baseline_config,
    default_scale,
    scaled_config,
)
from repro.resilience import (
    DecisionGuard,
    FaultPlan,
    ReproError,
)
from repro.workloads import (
    ALL_NAMES,
    TABLE_III_SETS,
    Mix,
    WorkloadSpec,
    generate_trace,
    get,
    random_mixes,
    suite,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_NAMES",
    "DecisionGuard",
    "FaultPlan",
    "Mix",
    "ReproError",
    "ResilienceConfig",
    "SystemConfig",
    "TABLE_III_SETS",
    "WorkloadSpec",
    "__version__",
    "baseline_config",
    "default_scale",
    "generate_trace",
    "get",
    "random_mixes",
    "scaled_config",
    "suite",
]
