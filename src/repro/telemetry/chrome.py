"""Chrome-trace (``about://tracing`` / Perfetto) export of a trace stream.

Renders one JSONL telemetry stream as a Chrome Trace Event Format file
with two process tracks:

* **pid 1 — simulated time**: instant events for every epoch decision,
  skip and guard action, plus counter tracks for the cumulative migration
  and writeback totals carried by bank snapshots.  The timestamp unit is
  one microsecond per simulated kilocycle, which keeps multi-million-cycle
  runs within the viewer's comfortable zoom range.
* **pid 2 — sweep wall clock**: complete ("X") events for every
  ``sweep_item``, laid end-to-end per scheme lane in submission order.
  Items overlapped in a parallel run, so this lane shows *per-item cost*,
  not the run's true concurrency; the JSONL stays the source of truth.
* **pid 3 — profiler spans**: complete ("X") events for every ``span``
  event (see :mod:`repro.telemetry.spans`), on true wall-clock offsets
  relative to the earliest span, one lane per nesting depth — so the
  flame-graph structure of the epoch phases renders directly.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.util.atomic_write import atomic_write_text

#: simulated cycles per Chrome-trace microsecond.
CYCLES_PER_US = 1000.0


def chrome_trace(events: Iterable[Mapping]) -> dict:
    """Convert a telemetry stream to a Chrome Trace Event Format payload."""
    trace: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "simulated time"}},
        {"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
         "args": {"name": "sweep wall clock"}},
    ]
    lanes: dict[str, int] = {}  # scheme/label lane -> tid
    cursor: dict[int, float] = {}  # tid -> next free wall microsecond
    spans: list[Mapping] = []  # span events, rendered after the pass
    for event in events:
        etype = event.get("type")
        scheme = event.get("scheme", "")
        if etype in ("epoch_decision", "epoch_skip", "guard_action"):
            ts = float(event.get("time", 0.0)) / CYCLES_PER_US
            if etype == "epoch_decision":
                name = f"epoch {event.get('epoch')}: ways={event.get('ways')}"
            elif etype == "epoch_skip":
                name = (
                    f"epoch {event.get('epoch')} skipped: "
                    f"{event.get('reason')}"
                )
            else:
                name = (
                    f"guard {event.get('kind')} -> {event.get('mode')}"
                )
            trace.append(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": _lane(lanes, scheme or "epochs"),
                    "ts": ts,
                    "args": {
                        k: v
                        for k, v in event.items()
                        if k not in ("type", "seq")
                    },
                }
            )
        elif etype == "bank_snapshot":
            ts = float(event.get("time", 0.0)) / CYCLES_PER_US
            trace.append(
                {
                    "name": f"L2 totals{f' [{scheme}]' if scheme else ''}",
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "ts": ts,
                    "args": {
                        "migrations": event.get("migrations", 0),
                        "writebacks": event.get("writebacks", 0),
                    },
                }
            )
        elif etype == "sweep_item":
            tid = _lane(lanes, f"sweep:{scheme}" if scheme else "sweep")
            dur = max(float(event.get("wall_s", 0.0)), 0.0) * 1e6
            start = cursor.get(tid, 0.0)
            cursor[tid] = start + dur
            trace.append(
                {
                    "name": str(event.get("label", event.get("index"))),
                    "ph": "X",
                    "pid": 2,
                    "tid": tid,
                    "ts": start,
                    "dur": dur,
                    "args": {"index": event.get("index")},
                }
            )
        elif etype == "span":
            spans.append(event)
    if spans:
        trace.append(
            {"name": "process_name", "ph": "M", "pid": 3, "tid": 0,
             "args": {"name": "profiler spans"}}
        )
        origin = min(float(s.get("t0", 0.0)) for s in spans)
        for event in spans:
            t0 = float(event.get("t0", 0.0))
            t1 = float(event.get("t1", t0))
            depth = int(event.get("depth", 0))
            trace.append(
                {
                    "name": str(event.get("path", event.get("name"))),
                    "ph": "X",
                    "pid": 3,
                    "tid": depth,
                    "ts": (t0 - origin) * 1e6,
                    "dur": max(t1 - t0, 0.0) * 1e6,
                    "args": {"scheme": event.get("scheme", "")},
                }
            )
        for depth in sorted(
            {int(s.get("depth", 0)) for s in spans}
        ):
            trace.append(
                {"name": "thread_name", "ph": "M", "pid": 3, "tid": depth,
                 "args": {"name": f"depth {depth}"}}
            )
    for name, tid in lanes.items():
        for pid in (1, 2):
            trace.append(
                {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"name": name}}
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def _lane(lanes: dict[str, int], name: str) -> int:
    if name not in lanes:
        lanes[name] = len(lanes)
    return lanes[name]


def write_chrome_trace(
    path: str | Path, events: Sequence[Mapping]
) -> None:
    """Durably write the Chrome-trace JSON for ``events`` to ``path``."""
    atomic_write_text(path, json.dumps(chrome_trace(events)))
