"""Per-epoch digests of a telemetry trace (the ``repro report`` command).

Consumes a JSONL trace (see :mod:`repro.telemetry.events` for the schema)
and renders what the end-of-run aggregates hide: *which* epoch installed
*which* way vector, where the guard fell back or descended its ladder,
how bank-level counters moved between epochs, and how sweep items spent
their wall time.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections.abc import Mapping, Sequence

from repro.telemetry.events import validate_events


def epoch_digest(events: Sequence[Mapping]) -> dict:
    """Structured per-epoch digest of one trace stream.

    Events are grouped by their ``scheme`` tag (untagged events group under
    ``""``); within each scheme the decisions, skips and guard actions are
    keyed by epoch, and bank snapshots report the *delta* of migrations and
    writebacks since the previous snapshot of that scheme.
    """
    schemes: dict[str, dict] = {}
    counts: TallyCounter = TallyCounter()
    meta: list[dict] = []
    for event in events:
        etype = event.get("type", "?")
        counts[etype] += 1
        if etype == "run_meta":
            meta.append(
                {k: v for k, v in event.items() if k not in ("type", "seq")}
            )
            continue
        scheme = schemes.setdefault(
            str(event.get("scheme", "")),
            {"epochs": {}, "guard": [], "snapshots": [], "sweep": []},
        )
        if etype in ("epoch_decision", "epoch_skip"):
            record = scheme["epochs"].setdefault(
                int(event.get("epoch", -1)), {}
            )
            record.update(
                {k: v for k, v in event.items() if k not in ("type", "seq")}
            )
            record["installed"] = etype == "epoch_decision"
        elif etype == "guard_action":
            scheme["guard"].append(
                {k: v for k, v in event.items() if k not in ("type", "seq")}
            )
        elif etype == "bank_snapshot":
            previous = (
                scheme["snapshots"][-1] if scheme["snapshots"] else None
            )
            snap = {k: v for k, v in event.items() if k not in ("type", "seq")}
            snap["migrations_delta"] = snap.get("migrations", 0) - (
                previous.get("migrations", 0) if previous else 0
            )
            snap["writebacks_delta"] = snap.get("writebacks", 0) - (
                previous.get("writebacks", 0) if previous else 0
            )
            scheme["snapshots"].append(snap)
        elif etype in ("sweep_item", "mc_point"):
            scheme["sweep"].append(
                {k: v for k, v in event.items() if k not in ("type", "seq")}
            )
    return {
        "event_counts": dict(sorted(counts.items())),
        "run_meta": meta,
        "schemes": schemes,
    }


def render_json(events: Sequence[Mapping]) -> str:
    """The digest as pretty-printed JSON."""
    return json.dumps(epoch_digest(events), indent=2, sort_keys=True)


def render_text(events: Sequence[Mapping]) -> str:
    """The digest as aligned monospace tables."""
    # imported here: analysis pulls in the sweep harnesses, and telemetry
    # must stay importable from inside them without a cycle
    from repro.analysis.report import format_table

    digest = epoch_digest(events)
    blocks: list[str] = []
    counts = digest["event_counts"]
    blocks.append(
        format_table(
            ["event type", "count"],
            sorted(counts.items()),
            title="Trace summary",
        )
    )
    for meta in digest["run_meta"]:
        line = f"run: source={meta.get('source')}"
        if meta.get("detail"):
            line += f" ({meta['detail']})"
        if meta.get("scheme"):
            line += f" [scheme {meta['scheme']}]"
        blocks.append(line)
    for scheme, data in digest["schemes"].items():
        label = f" [{scheme}]" if scheme else ""
        if data["epochs"]:
            rows = []
            for epoch in sorted(data["epochs"]):
                rec = data["epochs"][epoch]
                if rec.get("installed"):
                    detail = (
                        f"ways={rec.get('ways')} "
                        f"centers={rec.get('center_banks', '-')} "
                        f"pairs={rec.get('pairs', '-')}"
                    )
                    projected = rec.get("projected_misses") or []
                    misses = f"{sum(projected):,.0f}"
                else:
                    detail = f"skipped: {rec.get('reason')}"
                    misses = "-"
                rows.append(
                    (epoch, f"{rec.get('time', 0):,.0f}",
                     "yes" if rec.get("installed") else "no", misses, detail)
                )
            blocks.append(
                format_table(
                    ["epoch", "time", "installed", "proj. misses",
                     "decision"],
                    rows,
                    title=f"Epoch decisions{label}",
                )
            )
        if data["guard"]:
            rows = [
                (g.get("epoch", "-"), f"{g.get('time', 0):,.0f}",
                 g.get("kind"), g.get("mode"), g.get("detail"))
                for g in data["guard"]
            ]
            blocks.append(
                format_table(
                    ["epoch", "time", "action", "mode", "detail"], rows,
                    title=f"Guard ladder{label}",
                )
            )
        if data["snapshots"]:
            rows = [
                (s.get("epoch"), f"{s.get('time', 0):,.0f}",
                 sum(s.get("hits", [])), sum(s.get("misses", [])),
                 sum(s.get("occupancy", [])), s["migrations_delta"],
                 s["writebacks_delta"])
                for s in data["snapshots"]
            ]
            blocks.append(
                format_table(
                    ["epoch", "time", "hits", "misses", "resident",
                     "migr. delta", "wb delta"],
                    rows,
                    title=f"Bank snapshots{label} (totals across banks)",
                )
            )
        items = [s for s in data["sweep"] if "wall_s" in s]
        if items:
            total_wall = sum(s.get("wall_s", 0.0) for s in items)
            slowest = max(items, key=lambda s: s.get("wall_s", 0.0))
            blocks.append(
                f"sweep{label}: {len(items)} items, "
                f"{total_wall:.3f}s total item-wall, slowest "
                f"{slowest.get('label')} at {slowest.get('wall_s', 0.0):.3f}s"
            )
    return "\n\n".join(blocks)


def render_spans_text(events: Sequence[Mapping]) -> str:
    """The span self-time attribution table (``repro report --spans``).

    Self times sum to the total duration of the root spans by
    construction (see :mod:`repro.telemetry.spans`), and the footer
    prints both totals so the reconciliation is visible.
    """
    from repro.analysis.report import format_table
    from repro.telemetry.spans import span_attribution, span_totals

    rows = span_attribution(events)
    if not rows:
        return ("no span events in this trace (record one with "
                "--spans on a traced run)")
    totals = span_totals(events)
    table = format_table(
        ["phase", "count", "total s", "self s", "mean s", "self %"],
        [
            (r["path"], r["count"], f"{r['total_s']:.4f}",
             f"{r['self_s']:.4f}", f"{r['mean_s']:.6f}",
             f"{r['self_s'] / totals['wall_total_s'] * 100:.1f}"
             if totals["wall_total_s"] else "-")
            for r in rows
        ],
        title="Span self-time attribution",
    )
    footer = (
        f"{totals['spans']} spans over {totals['paths']} phases; "
        f"self-time total {totals['self_total_s']:.4f}s reconciles with "
        f"root-span wall total {totals['wall_total_s']:.4f}s"
    )
    return f"{table}\n{footer}"


def check_trace(events: Sequence[Mapping]) -> list[str]:
    """Schema-validate a loaded trace stream; returns the problem list."""
    problems = validate_events(events)
    if events and events[0].get("type") != "run_meta":
        problems.insert(0, "trace does not open with a run_meta event")
    return problems
