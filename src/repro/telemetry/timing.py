"""Wall-clock reads for telemetry timing.

This is the *only* module in the telemetry/parallel tree allowed to touch
the host clock (scoped via ``det002-allow`` in ``[tool.repro-lint]``, the
same carve-out the bench harness uses).  Everything else consumes either
simulated cycles or the opaque floats returned here, and the schema marks
every field derived from them ``deterministic=False``.
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """Monotonic wall-clock seconds (host ``perf_counter``)."""
    return time.perf_counter()
