"""repro.telemetry — zero-overhead-when-off tracing and metrics.

The observability layer of the reproduction: a :class:`Tracer` of typed,
schema-stable events (epoch decisions, guard ladder actions, bank counter
snapshots, sweep-item timing) written as JSON-lines, a
:class:`MetricsRegistry` of counters/gauges/histograms surfaced through
``SystemResult.telemetry``, a Chrome-trace exporter for timelines, and the
per-epoch digest behind ``repro report``.

The subsystem is opt-in by construction: nothing here is instantiated
unless a run asks for tracing (``--trace`` / ``RunSettings.trace``), and
every emission site is guarded with ``if tracer is not None`` — the
default path allocates no telemetry objects and stays bit-identical.
Serial and parallel runs of the same experiment produce equal event
streams (worker events merge in submission order, like results); only the
fields the schema marks ``deterministic=False`` — wall-clock timings —
may differ.
"""

from repro.telemetry.chrome import chrome_trace, write_chrome_trace
from repro.telemetry.events import (
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    TelemetryError,
    canonical_events,
    schema_rows,
    validate_event,
    validate_events,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report import (
    check_trace,
    epoch_digest,
    render_json,
    render_text,
)
from repro.telemetry.tracer import Tracer, read_jsonl, write_jsonl

__all__ = [
    "Counter",
    "EVENT_SCHEMAS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "Tracer",
    "TelemetryError",
    "canonical_events",
    "check_trace",
    "chrome_trace",
    "epoch_digest",
    "read_jsonl",
    "render_json",
    "render_text",
    "schema_rows",
    "validate_event",
    "validate_events",
    "write_chrome_trace",
    "write_jsonl",
]
