"""repro.telemetry — zero-overhead-when-off tracing and metrics.

The observability layer of the reproduction: a :class:`Tracer` of typed,
schema-stable events (epoch decisions, guard ladder actions, bank counter
snapshots, sweep-item timing) written as JSON-lines, a
:class:`MetricsRegistry` of counters/gauges/histograms surfaced through
``SystemResult.telemetry``, a Chrome-trace exporter for timelines, and the
per-epoch digest behind ``repro report``.  :mod:`repro.telemetry.spans`
adds a hierarchical wall-clock span profiler whose records travel as
advisory events inside the same stream (``repro report --spans``).

The subsystem is opt-in by construction: nothing here is instantiated
unless a run asks for tracing (``--trace`` / ``RunSettings.trace``), and
every emission site is guarded with ``if tracer is not None`` — the
default path allocates no telemetry objects and stays bit-identical.
Serial and parallel runs of the same experiment produce equal event
streams (worker events merge in submission order, like results); only the
fields the schema marks ``deterministic=False`` — wall-clock timings —
may differ.
"""

from repro.telemetry.chrome import chrome_trace, write_chrome_trace
from repro.telemetry.events import (
    ADVISORY_EVENTS,
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    TelemetryError,
    canonical_events,
    schema_rows,
    validate_event,
    validate_events,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report import (
    check_trace,
    epoch_digest,
    render_json,
    render_spans_text,
    render_text,
)
from repro.telemetry.spans import (
    SpanRecorder,
    maybe_span,
    self_seconds_by_phase,
    span_attribution,
    span_records,
    span_totals,
)
from repro.telemetry.tracer import Tracer, read_jsonl, write_jsonl

__all__ = [
    "ADVISORY_EVENTS",
    "Counter",
    "EVENT_SCHEMAS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "SpanRecorder",
    "Tracer",
    "TelemetryError",
    "canonical_events",
    "check_trace",
    "chrome_trace",
    "epoch_digest",
    "maybe_span",
    "read_jsonl",
    "render_json",
    "render_spans_text",
    "render_text",
    "schema_rows",
    "self_seconds_by_phase",
    "span_attribution",
    "span_records",
    "span_totals",
    "validate_event",
    "validate_events",
    "write_chrome_trace",
    "write_jsonl",
]
