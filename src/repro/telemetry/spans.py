"""Hierarchical span profiler: where does an epoch's wall time go?

A :class:`SpanRecorder` is a stack of nested, named wall-clock timers.
The hot paths (sim engines, executor, supervisor) open a span around each
phase of interest — profiler observe/flush, policy decide, guard check,
install, bank-queue drain — and the recorder keeps one flat record per
completed span: its name, its slash-joined ancestry path, its depth and
its ``[t0, t1)`` wall-clock window.

The recorder follows the telemetry layer's two standing contracts:

* **zero overhead when off** — nothing here is constructed unless a run
  asks for spans (``--spans`` / ``RunSettings.spans``), and every
  instrumentation site is guarded with ``if spans is not None`` (or goes
  through :func:`maybe_span`, which returns a shared no-op context);
* **determinism** — span timings are host wall clock, so the ``span``
  event type is *advisory*: :func:`repro.telemetry.events.canonical_events`
  drops it wholesale and a spanned run's canonical trace equals the
  unspanned run's (``repro diff`` gates this in CI).

All clock reads go through :func:`repro.telemetry.timing.wall_clock`,
the tree's single sanctioned host-clock chokepoint.

Attribution works on the *path* aggregate: a path's **self time** is its
total duration minus the total duration of its direct children, so the
self times of every path sum exactly to the total duration of the root
spans — the reconciliation property ``repro report --spans`` prints.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from contextlib import AbstractContextManager, contextmanager, nullcontext
from typing import TYPE_CHECKING

from repro.telemetry.timing import wall_clock

if TYPE_CHECKING:  # annotation-only; spans must stay a leaf module
    from repro.telemetry.tracer import Tracer

#: shared no-op context manager handed out when spans are off.
#: ``contextlib.nullcontext()`` is stateless and reentrant, so one module
#: level instance serves every call site without per-entry allocation.
_NULL_SPAN = nullcontext()


class SpanRecorder:
    """Stack-shaped recorder of nested wall-clock spans.

    Use :meth:`span` as a context manager around a phase, or the explicit
    :meth:`push`/:meth:`pop` pair where a ``with`` block does not fit the
    control flow.  Completed spans accumulate in :attr:`records` in
    completion order (children before their parent, like a Chrome trace).
    """

    __slots__ = ("records", "_stack")

    def __init__(self) -> None:
        #: completed spans: ``{name, path, depth, t0, t1}`` dicts.
        self.records: list[dict] = []
        self._stack: list[tuple[str, str, int, float]] = []

    def push(self, name: str) -> None:
        """Open a span named ``name`` nested under the current span."""
        if self._stack:
            path = f"{self._stack[-1][1]}/{name}"
        else:
            path = name
        self._stack.append((name, path, len(self._stack), wall_clock()))

    def pop(self) -> None:
        """Close the innermost open span."""
        name, path, depth, t0 = self._stack.pop()
        self.records.append(
            {"name": name, "path": path, "depth": depth,
             "t0": t0, "t1": wall_clock()}
        )

    @contextmanager
    def span(self, name: str) -> Iterator["SpanRecorder"]:
        self.push(name)
        try:
            yield self
        finally:
            self.pop()

    @property
    def open_depth(self) -> int:
        """Number of spans currently open (0 when balanced)."""
        return len(self._stack)

    def emit_events(self, tracer: "Tracer") -> None:
        """Flush every completed span into ``tracer`` as ``span`` events.

        The event type is advisory (dropped from the canonical
        projection), so flushing never perturbs determinism gates.
        """
        for rec in self.records:
            tracer.emit("span", **rec)


def maybe_span(
    recorder: SpanRecorder | None, name: str
) -> AbstractContextManager:
    """``recorder.span(name)`` when spans are on, a shared no-op otherwise.

    The off branch returns a module-level ``nullcontext`` — no allocation,
    no clock read — so instrumentation sites can use one ``with`` statement
    for both modes at epoch granularity.
    """
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name)


def span_records(events: Iterable[Mapping]) -> list[dict]:
    """The ``span`` events of a trace, as plain record dicts."""
    return [
        {"name": e["name"], "path": e["path"], "depth": e["depth"],
         "t0": e["t0"], "t1": e["t1"]}
        for e in events
        if e.get("type") == "span"
    ]


def span_attribution(events: Iterable[Mapping]) -> list[dict]:
    """Per-path wall-time attribution over a trace's span events.

    Returns one row per distinct span path, sorted by descending self
    time then path, with::

        {path, name, depth, count, total_s, self_s, mean_s}

    ``self_s`` is the path's total minus its direct children's totals;
    summed over all paths it equals the total duration of the root spans
    (``wall_total_s`` in :func:`span_totals`), so the table reconciles
    with end-to-end wall time by construction.
    """
    totals: dict[str, dict] = {}
    for rec in span_records(events):
        row = totals.get(rec["path"])
        if row is None:
            row = totals[rec["path"]] = {
                "path": rec["path"], "name": rec["name"],
                "depth": rec["depth"], "count": 0, "total_s": 0.0,
            }
        row["count"] += 1
        row["total_s"] += rec["t1"] - rec["t0"]
    children_total: dict[str, float] = {}
    for path, row in totals.items():
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            children_total[parent] = (
                children_total.get(parent, 0.0) + row["total_s"]
            )
    rows = []
    for path, row in totals.items():
        self_s = row["total_s"] - children_total.get(path, 0.0)
        rows.append(
            {**row, "self_s": self_s,
             "mean_s": row["total_s"] / row["count"]}
        )
    rows.sort(key=lambda r: (-r["self_s"], r["path"]))
    return rows


def span_totals(events: Iterable[Mapping]) -> dict:
    """Headline reconciliation over a trace's span events.

    ``wall_total_s`` is the summed duration of the root (depth-0) spans;
    ``self_total_s`` sums every path's self time.  The two are equal up
    to float addition order — the invariant the report surfaces.
    """
    rows = span_attribution(events)
    return {
        "spans": sum(r["count"] for r in rows),
        "paths": len(rows),
        "wall_total_s": sum(
            r["total_s"] for r in rows if r["depth"] == 0
        ),
        "self_total_s": sum(r["self_s"] for r in rows),
    }


def self_seconds_by_phase(events: Iterable[Mapping]) -> dict[str, float]:
    """``{path: self_s}`` map — the shape ``repro bench --attribute``
    stores and compares between two bench reports."""
    return {r["path"]: r["self_s"] for r in span_attribution(events)}


__all__ = (
    "SpanRecorder",
    "maybe_span",
    "self_seconds_by_phase",
    "span_attribution",
    "span_records",
    "span_totals",
)
