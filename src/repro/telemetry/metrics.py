"""Counters, gauges and summary histograms for run-level metrics.

A :class:`MetricsRegistry` is the pull-side companion of the event tracer:
subsystems (``CMPSystem``, ``NucaL2``, ``ParallelExecutor``) publish their
totals into one registry, and the registry's :meth:`~MetricsRegistry.snapshot`
becomes ``SystemResult.telemetry`` — a plain JSON-serialisable dict, stable
across serial and parallel runs because every published value is derived
from simulated state, never from the host.

Like the tracer, a registry is only constructed when telemetry is enabled;
hot paths guard every touch with ``if metrics is not None``.

Histograms bucket observations into **fixed log-spaced buckets** (the
geometry is a module constant, never data-dependent), so two runs that
observe the same values report the same buckets and the same estimated
percentiles — p50/p95/p99 in :meth:`Histogram.summary` are deterministic
functions of the observed multiset, not of arrival order or host state.
"""

from __future__ import annotations

import math

#: lower bound of the first histogram bucket; values at or below it (and
#: non-positive values, which the tracked quantities never produce) land in
#: bucket 0.  1 ns covers every wall-clock and per-item latency we track.
BUCKET_SCALE = 1e-9

#: geometric bucket growth: four buckets per octave keeps the relative
#: quantile error below ~19 % while hundreds of buckets span 1 ns..10^29.
BUCKET_GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(BUCKET_GROWTH)
_LOG_SCALE = math.log(BUCKET_SCALE)

#: hard ceiling on the bucket index (upper bound ~3.8e29 at the defaults);
#: anything larger clamps here instead of growing the key space unboundedly.
MAX_BUCKET = 512


def bucket_index(value: float) -> int:
    """Deterministic bucket for one observation.

    Bucket ``i > 0`` spans ``(SCALE * GROWTH**(i-1), SCALE * GROWTH**i]``;
    bucket 0 holds everything at or below :data:`BUCKET_SCALE`.
    """
    if value <= BUCKET_SCALE:
        return 0
    if math.isinf(value):  # ceil(inf) cannot convert; clamp directly
        return MAX_BUCKET
    # log difference, not log of a quotient: value / BUCKET_SCALE can
    # overflow a float for huge observations
    index = int(math.ceil((math.log(value) - _LOG_SCALE) / _LOG_GROWTH))
    return min(max(index, 1), MAX_BUCKET)


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index``."""
    if index <= 0:
        return BUCKET_SCALE
    return BUCKET_SCALE * BUCKET_GROWTH ** index


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (occupancy, worker count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary over fixed log-spaced buckets.

    Tracks exact count/total/min/max plus a sparse ``{bucket: count}``
    map, from which :meth:`quantile` answers p50/p95/p99 with the bucket
    geometry's bounded relative error.  Memory stays O(occupied buckets)
    regardless of observation count.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram in place.

        Buckets, count and total sum; min/max take the envelope.  Because
        the bucket geometry is a module constant, merging worker-local
        histograms is deterministic and order-independent — the result
        equals a single histogram that observed the union multiset.
        """
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) from the bucket counts.

        Returns the upper bound of the bucket containing the target rank,
        clamped into the exact observed ``[min, max]`` envelope so a
        histogram of identical values reports that value for every
        quantile.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                estimate = bucket_upper_bound(index)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to `count`

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def snapshot(self) -> dict:
        """JSON-serialisable view of every published metric."""
        return {
            "counters": {
                name: m.value for name, m in sorted(self._counters.items())
            },
            "gauges": {
                name: m.value for name, m in sorted(self._gauges.items())
            },
            "histograms": {
                name: m.summary()
                for name, m in sorted(self._histograms.items())
            },
        }
