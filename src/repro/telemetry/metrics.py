"""Counters, gauges and summary histograms for run-level metrics.

A :class:`MetricsRegistry` is the pull-side companion of the event tracer:
subsystems (``CMPSystem``, ``NucaL2``, ``ParallelExecutor``) publish their
totals into one registry, and the registry's :meth:`~MetricsRegistry.snapshot`
becomes ``SystemResult.telemetry`` — a plain JSON-serialisable dict, stable
across serial and parallel runs because every published value is derived
from simulated state, never from the host.

Like the tracer, a registry is only constructed when telemetry is enabled;
hot paths guard every touch with ``if metrics is not None``.
"""

from __future__ import annotations

import math


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (occupancy, worker count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary (count/total/min/max) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def snapshot(self) -> dict:
        """JSON-serialisable view of every published metric."""
        return {
            "counters": {
                name: m.value for name, m in sorted(self._counters.items())
            },
            "gauges": {
                name: m.value for name, m in sorted(self._gauges.items())
            },
            "histograms": {
                name: m.summary()
                for name, m in sorted(self._histograms.items())
            },
        }
