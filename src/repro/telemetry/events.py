"""Typed, schema-stable telemetry events.

Every event a :class:`~repro.telemetry.tracer.Tracer` emits is a flat JSON
object with a ``type`` field naming one of the schemas below and a ``seq``
field giving its position in the merged (submission-order) stream.  The
schema is the contract between the emitters (epoch controller, decision
guard, NUCA L2, sweep harnesses) and the consumers (``repro report``, the
Chrome-trace exporter, CI validation): fields are never renamed, only
added, and :data:`SCHEMA_VERSION` is bumped on any breaking change.

Determinism is part of the contract.  Fields marked ``deterministic=False``
(wall-clock timings) are the *only* fields allowed to differ between a
serial and a ``--jobs N`` run of the same experiment;
:func:`canonical_events` projects a stream onto its deterministic fields so
equality can be asserted exactly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ReproError

#: bumped on any breaking change to an event schema below.
SCHEMA_VERSION = 1


class TelemetryError(ReproError):
    """An event violates its schema, or a trace file is malformed."""


@dataclass(frozen=True)
class FieldSpec:
    """Declared shape of one event field."""

    types: tuple[type, ...]
    required: bool = True
    #: False for wall-clock fields, which may differ run-to-run and are
    #: excluded from serial-vs-parallel stream equality.
    deterministic: bool = True


_NUM = FieldSpec((int, float))
_INT = FieldSpec((int,))
_STR = FieldSpec((str,))
_LIST = FieldSpec((list, tuple))
_OPT_STR = FieldSpec((str,), required=False)
_OPT_LIST = FieldSpec((list, tuple), required=False)
_WALL = FieldSpec((int, float), deterministic=False)

#: fields present on (or permitted for) every event regardless of type.
#: ``scheme`` lets multi-scheme streams (``compare``) tag merged worker
#: events with their origin.
COMMON_FIELDS: dict[str, FieldSpec] = {
    "type": _STR,
    "seq": _INT,
    "scheme": _OPT_STR,
}

#: the event catalogue.  ``epoch`` is the controller's boundary index;
#: ``-1`` marks an end-of-run snapshot taken outside any boundary.
EVENT_SCHEMAS: dict[str, dict[str, FieldSpec]] = {
    # stream header: who produced this trace and under what settings.
    "run_meta": {
        "schema_version": _INT,
        "source": _STR,  #: 'simulate' | 'compare' | 'sweep' | 'montecarlo'
        "detail": _OPT_STR,
    },
    # one installed repartitioning decision (simulated time, per-core ways,
    # layout, and the MSA-projected misses at the installed allocation).
    "epoch_decision": {
        "time": _NUM,
        "epoch": _INT,
        "algorithm": _STR,
        #: registry name of the deciding policy (added with the policy
        #: lab; equals ``algorithm`` for registry-dispatched runs).
        "policy": _OPT_STR,
        "ways": _LIST,
        "center_banks": _OPT_LIST,
        "pairs": _OPT_LIST,
        "projected_misses": _LIST,
    },
    # a boundary that fired but installed nothing (and why).
    "epoch_skip": {
        "time": _NUM,
        "epoch": _INT,
        "reason": _STR,
    },
    # one decision-guard ladder action (fault/fallback/degrade/recover).
    "guard_action": {
        "time": _NUM,
        "epoch": _INT,
        "kind": _STR,
        "detail": _STR,
        "mode": _STR,
    },
    # per-bank L2 counters at an epoch install (or end of run, epoch=-1):
    # cumulative hits/misses/occupancy per bank, port-queue state, and the
    # cumulative migration/writeback totals.
    "bank_snapshot": {
        "time": _NUM,
        "epoch": _INT,
        "hits": _LIST,
        "misses": _LIST,
        "occupancy": _LIST,
        "queue_served": _LIST,
        "queue_delay": _LIST,
        "migrations": _INT,
        "writebacks": _INT,
        #: cumulative per-core hit/miss totals (added with the time-series
        #: store; both sim backends emit bit-identical values).
        "core_hits": _OPT_LIST,
        "core_misses": _OPT_LIST,
    },
    # one Monte Carlo mix outcome (analytic sweep).  ``policies`` holds
    # the per-policy projected misses when the sweep ranks registry
    # policies (``--rank-policies``); absent otherwise.
    "mc_point": {
        "index": _INT,
        "mix": _LIST,
        "equal_misses": _NUM,
        "unrestricted_misses": _NUM,
        "bank_aware_misses": _NUM,
        "ways": _LIST,
        "policies": FieldSpec((dict,), required=False),
    },
    # one sweep work item's observed completion latency (wall clock).
    "sweep_item": {
        "index": _INT,
        "label": _STR,
        "wall_s": _WALL,
    },
    # periodic sweep heartbeat, emitted parent-side at yield points every
    # fixed number of completed items — deterministic fields agree between
    # serial and parallel runs; ``wall_s`` (elapsed seconds since the sweep
    # began) feeds `repro watch` throughput/ETA and is wall clock.
    "progress": {
        "done": _INT,
        "total": _INT,
        "source": _STR,  #: 'montecarlo' | 'sweep'
        "wall_s": _WALL,
    },
    # one fabric supervision action (retry / timeout / quarantine / degrade
    # / requeue).  Advisory: recovery actions describe *how* a run survived
    # the host, not *what* it computed, so the whole event is dropped from
    # the canonical projection (see :data:`ADVISORY_EVENTS`).
    "supervisor": {
        "kind": _STR,  #: 'retry' | 'timeout' | 'quarantine' | 'degrade' | 'requeue'
        "index": _INT,
        "attempt": _INT,
        "label": _OPT_STR,
        "rung": _OPT_STR,  #: degradation-ladder rung the action ran under
        "detail": _OPT_STR,
    },
    # one completed profiler span (see :mod:`repro.telemetry.spans`):
    # a named phase's wall-clock window with its slash-joined ancestry
    # path and nesting depth.  Advisory: spans describe where *host* time
    # went, never what the run computed, so the canonical projection
    # drops them and a spanned run's trace equals the unspanned run's.
    "span": {
        "name": _STR,
        "path": _STR,
        "depth": _INT,
        "t0": _WALL,
        "t1": _WALL,
    },
}

#: event types that may legitimately differ between two otherwise
#: identical runs (a retry happens only in the run whose worker crashed;
#: a span exists only in the run that asked for profiling).
#: :func:`canonical_events` removes them wholesale and renumbers ``seq``,
#: so the determinism gate compares only the computed stream.
ADVISORY_EVENTS = frozenset({"supervisor", "span"})


def validate_event(event: Mapping) -> list[str]:
    """Problems with one event (empty list = valid)."""
    etype = event.get("type")
    if not isinstance(etype, str):
        return ["event has no string 'type' field"]
    schema = EVENT_SCHEMAS.get(etype)
    if schema is None:
        return [f"unknown event type {etype!r}"]
    problems = []
    for name, spec in schema.items():
        if name not in event:
            if spec.required:
                problems.append(f"{etype}: missing required field {name!r}")
            continue
        if not isinstance(event[name], spec.types):
            problems.append(
                f"{etype}.{name}: expected "
                f"{'/'.join(t.__name__ for t in spec.types)}, "
                f"got {type(event[name]).__name__}"
            )
    for name, spec in COMMON_FIELDS.items():
        if name in event and not isinstance(event[name], spec.types):
            problems.append(
                f"{etype}.{name}: expected "
                f"{'/'.join(t.__name__ for t in spec.types)}, "
                f"got {type(event[name]).__name__}"
            )
    unknown = set(event) - set(schema) - set(COMMON_FIELDS)
    if unknown:
        problems.append(f"{etype}: unknown fields {sorted(unknown)}")
    return problems


def validate_events(events: Iterable[Mapping]) -> list[str]:
    """Problems across a whole stream, prefixed with the event index."""
    problems = []
    for i, event in enumerate(events):
        problems.extend(f"event #{i}: {p}" for p in validate_event(event))
    return problems


def canonical_events(events: Iterable[Mapping]) -> list[dict]:
    """The deterministic projection of a stream: advisory event types
    (:data:`ADVISORY_EVENTS`) removed entirely, every surviving event
    stripped of its ``deterministic=False`` fields, and ``seq`` renumbered
    to the canonical position — suitable for exact ``==`` comparison
    between serial, parallel, and crash-resumed runs.  For a stream with
    no advisory events the projection keeps every original ``seq``."""
    out = []
    for event in events:
        if event.get("type") in ADVISORY_EVENTS:
            continue
        schema = EVENT_SCHEMAS.get(event.get("type"), {})
        projected = {
            k: v
            for k, v in event.items()
            if schema.get(k, COMMON_FIELDS.get(k, _STR)).deterministic
        }
        if "seq" in projected:
            projected["seq"] = len(out)
        out.append(projected)
    return out


def schema_rows() -> list[tuple[str, str, str]]:
    """(event type, field, declared shape) rows for documentation output."""
    rows = []
    for etype in sorted(EVENT_SCHEMAS):
        for name, spec in EVENT_SCHEMAS[etype].items():
            shape = "/".join(t.__name__ for t in spec.types)
            notes = []
            if not spec.required:
                notes.append("optional")
            if not spec.deterministic:
                notes.append("wall-clock")
            if notes:
                shape += f" ({', '.join(notes)})"
            rows.append((etype, name, shape))
    return rows


def _jsonify(value: object) -> object:
    """Coerce emitted values to stable JSON shapes (tuples become lists,
    numpy scalars become their Python equivalents)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bool)):
        return item()  # numpy scalar
    return value


def jsonify_fields(fields: Mapping[str, object]) -> dict:
    """JSON-stable copy of one event's payload fields."""
    return {name: _jsonify(value) for name, value in fields.items()}


__all__: Sequence[str] = (
    "ADVISORY_EVENTS",
    "COMMON_FIELDS",
    "EVENT_SCHEMAS",
    "FieldSpec",
    "SCHEMA_VERSION",
    "TelemetryError",
    "canonical_events",
    "jsonify_fields",
    "schema_rows",
    "validate_event",
    "validate_events",
)
