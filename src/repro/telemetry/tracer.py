"""The event tracer: collect, merge, and persist JSON-lines traces.

A :class:`Tracer` is an append-only, order-tagged event log.  The
zero-overhead-when-off contract is enforced *at the call sites*: no
subsystem ever constructs a tracer (or any event payload) unless tracing
was requested, and every emission is guarded by ``if tracer is not None``
— so the default path allocates nothing and stays bit-identical.

Parallel runs keep one tracer per work item inside the worker (or carry
events inside each worker's result object) and merge the streams into the
parent tracer **in submission order** via :meth:`Tracer.extend` — the same
discipline :class:`~repro.parallel.executor.ParallelExecutor` applies to
results, so serial and ``--jobs N`` runs produce equal event streams (up
to the wall-clock fields the schema explicitly marks non-deterministic).
Worker streams were already validated event-by-event on emit, so the merge
takes a ``pre_validated=True`` fast path instead of re-walking every
schema.

Traces persist two ways:

* :func:`write_jsonl` — the durable final artefact, **stream-encoded** in
  chunks through :func:`repro.util.atomic_write.atomic_write` (temp +
  fsync + replace + dir-fsync), so a multi-million-event trace never
  materialises a second full copy of itself as one string;
* a live **sink** (``Tracer(sink=path)``) — a best-effort JSONL append
  feed flushed every few events while the run is still going, which is
  what ``repro watch`` tails.  The final :meth:`Tracer.write_jsonl`
  atomically replaces the sink file with the complete durable stream.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import IO

from repro.telemetry.events import (
    SCHEMA_VERSION,
    TelemetryError,
    jsonify_fields,
    validate_event,
)
from repro.util.atomic_write import atomic_write

#: events per encoded chunk in :func:`write_jsonl`: large enough to keep
#: syscall overhead negligible, small enough that peak extra memory is a
#: few hundred KB instead of a second copy of the whole trace.
WRITE_CHUNK_EVENTS = 4096

#: default live-sink flush cadence (events); small enough that a watcher
#: sees progress promptly, large enough to stay off the hot path.
SINK_FLUSH_EVERY = 64


class Tracer:
    """Append-only telemetry event log with schema validation on emit.

    ``sink`` names an optional live JSONL feed: emitted events are
    appended (buffered, flushed every ``sink_flush_every`` events) so a
    concurrent ``repro watch`` can follow the run.  The sink is a
    monitoring feed, not the durable artefact — call :meth:`write_jsonl`
    at the end for the atomic, fsynced replacement.
    """

    def __init__(
        self,
        *,
        validate: bool = True,
        sink: str | Path | None = None,
        sink_flush_every: int = SINK_FLUSH_EVERY,
    ) -> None:
        self.events: list[dict] = []
        self.validate = validate
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_fh: IO[str] | None = None
        self._sink_flushed = 0
        self._sink_flush_every = max(1, sink_flush_every)

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, etype: str, **fields: object) -> dict:
        """Append one event; returns the stored (sequenced) record."""
        event = {"type": etype, "seq": len(self.events)}
        event.update(jsonify_fields(fields))
        if self.validate:
            problems = validate_event(event)
            if problems:
                raise TelemetryError("; ".join(problems))
        self.events.append(event)
        if self._sink_path is not None:
            self._pump_sink()
        return event

    def emit_run_meta(self, source: str, detail: str | None = None) -> dict:
        """Convenience header event opening a stream."""
        fields: dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "source": source,
        }
        if detail is not None:
            fields["detail"] = detail
        return self.emit("run_meta", **fields)

    def extend(
        self,
        events: Iterable[Mapping],
        *,
        scheme: str | None = None,
        pre_validated: bool = False,
    ) -> None:
        """Merge a worker's event stream, re-sequencing into this log.

        Callers invoke this in submission order, so the merged stream is
        identical whether the work ran serially or on a pool.  ``scheme``
        tags every merged event with its origin (used by ``compare``,
        where several schemes' streams interleave into one trace).

        ``pre_validated=True`` skips per-event schema validation for
        streams that a validating tracer already checked on emit (every
        worker-side tracer does) — re-walking each schema on merge is
        pure overhead, measured by the ``tracer_extend`` entry in
        ``repro bench``.  Re-sequencing and scheme-tagging cannot
        invalidate a valid event (``seq`` and ``scheme`` are common
        fields), so the fast path is exact, not approximate.
        """
        check = self.validate and not pre_validated
        for event in events:
            merged = dict(event)
            merged["seq"] = len(self.events)
            if scheme is not None:
                merged["scheme"] = scheme
            if check:
                problems = validate_event(merged)
                if problems:
                    raise TelemetryError("; ".join(problems))
            self.events.append(merged)
        if self._sink_path is not None:
            self._pump_sink()

    def select(self, etype: str) -> list[dict]:
        """All events of one type, in stream order."""
        return [e for e in self.events if e["type"] == etype]

    # -- live sink ----------------------------------------------------------

    def _pump_sink(self, *, force: bool = False) -> None:
        """Append not-yet-flushed events to the live sink (best effort)."""
        pending = len(self.events) - self._sink_flushed
        if pending <= 0 or (not force and pending < self._sink_flush_every):
            return
        if self._sink_fh is None:
            # "w": a stale file from an earlier run must not prefix this one
            self._sink_fh = open(self._sink_path, "w", encoding="utf-8")
        for event in self.events[self._sink_flushed:]:
            self._sink_fh.write(
                json.dumps(event, separators=(",", ":")) + "\n"
            )
        self._sink_fh.flush()
        self._sink_flushed = len(self.events)

    def flush_sink(self) -> None:
        """Push every buffered event to the live sink now."""
        if self._sink_path is not None:
            self._pump_sink(force=True)

    def close_sink(self) -> None:
        """Close the live sink handle (the file itself is left in place)."""
        if self._sink_fh is not None:
            self._pump_sink(force=True)
            self._sink_fh.close()
            self._sink_fh = None

    def write_jsonl(self, path: str | Path) -> None:
        """Durably write the stream as JSON-lines.

        Closes the live sink first (when the target *is* the sink path,
        the append feed is atomically replaced by the complete durable
        stream — a watcher observes the swap as a file replacement and
        re-reads from the top).
        """
        self.close_sink()
        write_jsonl(path, self.events)
        self._sink_flushed = len(self.events)


def write_jsonl(path: str | Path, events: Iterable[Mapping]) -> None:
    """Durably write an event stream as JSON-lines (one object per line).

    Encoding is streamed in :data:`WRITE_CHUNK_EVENTS`-sized chunks
    straight into the atomic-write temp file, so peak memory stays flat
    in the number of events while keeping the temp+fsync+replace+dir-fsync
    durability contract of :func:`repro.util.atomic_write.atomic_write`.
    """

    def writer(tmp: str) -> None:
        with open(tmp, "w", encoding="utf-8") as fh:
            chunk: list[str] = []
            for event in events:
                chunk.append(json.dumps(dict(event), separators=(",", ":")))
                if len(chunk) >= WRITE_CHUNK_EVENTS:
                    fh.write("\n".join(chunk) + "\n")
                    chunk.clear()
            if chunk:
                fh.write("\n".join(chunk) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    atomic_write(path, writer)


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSON-lines trace; raises :class:`TelemetryError` on damage."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(event, dict):
                raise TelemetryError(
                    f"{path}:{lineno}: expected a JSON object"
                )
            events.append(event)
    return events
