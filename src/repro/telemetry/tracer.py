"""The event tracer: collect, merge, and persist JSON-lines traces.

A :class:`Tracer` is an append-only, order-tagged event log.  The
zero-overhead-when-off contract is enforced *at the call sites*: no
subsystem ever constructs a tracer (or any event payload) unless tracing
was requested, and every emission is guarded by ``if tracer is not None``
— so the default path allocates nothing and stays bit-identical.

Parallel runs keep one tracer per work item inside the worker (or carry
events inside each worker's result object) and merge the streams into the
parent tracer **in submission order** via :meth:`Tracer.extend` — the same
discipline :class:`~repro.parallel.executor.ParallelExecutor` applies to
results, so serial and ``--jobs N`` runs produce equal event streams (up
to the wall-clock fields the schema explicitly marks non-deterministic).

Traces persist as JSON-lines (one event per line), written durably through
:func:`repro.util.atomic_write.atomic_write_text`.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.telemetry.events import (
    SCHEMA_VERSION,
    TelemetryError,
    jsonify_fields,
    validate_event,
)
from repro.util.atomic_write import atomic_write_text


class Tracer:
    """Append-only telemetry event log with schema validation on emit."""

    def __init__(self, *, validate: bool = True) -> None:
        self.events: list[dict] = []
        self.validate = validate

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, etype: str, **fields: object) -> dict:
        """Append one event; returns the stored (sequenced) record."""
        event = {"type": etype, "seq": len(self.events)}
        event.update(jsonify_fields(fields))
        if self.validate:
            problems = validate_event(event)
            if problems:
                raise TelemetryError("; ".join(problems))
        self.events.append(event)
        return event

    def emit_run_meta(self, source: str, detail: str | None = None) -> dict:
        """Convenience header event opening a stream."""
        fields: dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "source": source,
        }
        if detail is not None:
            fields["detail"] = detail
        return self.emit("run_meta", **fields)

    def extend(
        self, events: Iterable[Mapping], *, scheme: str | None = None
    ) -> None:
        """Merge a worker's event stream, re-sequencing into this log.

        Callers invoke this in submission order, so the merged stream is
        identical whether the work ran serially or on a pool.  ``scheme``
        tags every merged event with its origin (used by ``compare``,
        where several schemes' streams interleave into one trace).
        """
        for event in events:
            merged = dict(event)
            merged["seq"] = len(self.events)
            if scheme is not None:
                merged["scheme"] = scheme
            if self.validate:
                problems = validate_event(merged)
                if problems:
                    raise TelemetryError("; ".join(problems))
            self.events.append(merged)

    def select(self, etype: str) -> list[dict]:
        """All events of one type, in stream order."""
        return [e for e in self.events if e["type"] == etype]

    def write_jsonl(self, path: str | Path) -> None:
        """Durably write the stream as JSON-lines."""
        write_jsonl(path, self.events)


def write_jsonl(path: str | Path, events: Iterable[Mapping]) -> None:
    """Durably write an event stream as JSON-lines (one object per line)."""
    lines = [json.dumps(dict(e), separators=(",", ":")) for e in events]
    atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSON-lines trace; raises :class:`TelemetryError` on damage."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(event, dict):
                raise TelemetryError(
                    f"{path}:{lineno}: expected a JSON object"
                )
            events.append(event)
    return events
