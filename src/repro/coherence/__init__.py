"""Directory-based MESI coherence substrate."""

from repro.coherence.directory import Directory, DirectoryEntry, DirState
from repro.coherence.mesi import CacheState, MESISystem, ProtocolStats
from repro.coherence.messages import DIRECTORY, Message, MessageType

__all__ = [
    "DIRECTORY",
    "CacheState",
    "DirState",
    "Directory",
    "DirectoryEntry",
    "MESISystem",
    "Message",
    "MessageType",
    "ProtocolStats",
]
