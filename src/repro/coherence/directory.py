"""Directory state for a MESI protocol (one entry per tracked line).

The directory is the serialisation point: it knows, per line, which cores
hold copies and which (if any) is the exclusive owner.  States follow the
standard directory MESI formulation:

* ``I`` — no cached copies;
* ``S`` — one or more read-only sharers;
* ``M`` — exactly one core owns the line (Exclusive and Modified are merged
  at the directory: the owner may silently upgrade E->M, so the directory
  must treat both as "owned").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class DirState(str, Enum):
    I = "I"  # noqa: E741 - canonical MESI state name
    S = "S"
    M = "M"


@dataclass
class DirectoryEntry:
    state: DirState = DirState.I
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None

    def check_invariants(self) -> None:
        """The protocol's safety net, asserted liberally in tests."""
        if self.state is DirState.I:
            if self.sharers or self.owner is not None:
                raise AssertionError("I-state entry with copies")
        elif self.state is DirState.S:
            if not self.sharers:
                raise AssertionError("S-state entry with no sharers")
            if self.owner is not None:
                raise AssertionError("S-state entry with an owner")
        else:  # M
            if self.owner is None:
                raise AssertionError("M-state entry with no owner")
            if self.sharers:
                raise AssertionError("M-state entry with sharers")


class Directory:
    """Sparse full-map directory over cache lines."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, line: int) -> DirectoryEntry:
        ent = self._entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            self._entries[line] = ent
        return ent

    def peek(self, line: int) -> DirectoryEntry:
        """Entry without creating one (absent lines read as I)."""
        return self._entries.get(line, DirectoryEntry())

    def drop(self, line: int) -> None:
        self._entries.pop(line, None)

    def tracked_lines(self) -> list[int]:
        return [l for l, e in self._entries.items() if e.state is not DirState.I]

    def check_all_invariants(self) -> None:
        for entry in self._entries.values():
            entry.check_invariants()
