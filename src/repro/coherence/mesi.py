"""A directory-based MESI protocol over per-core private caches.

Atomic-transaction formulation: each core request (load/store/evict) runs to
completion at the directory before the next begins, which keeps the model
simple while preserving every steady-state property the tests care about
(single-writer/multiple-reader, data value propagation, invariant directory
state).  Message objects are recorded for traffic accounting so examples can
show coherence cost.

Core cache states are the classic MESI four; the directory merges E and M
(see :mod:`repro.coherence.directory`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.coherence.directory import Directory, DirState
from repro.coherence.messages import DIRECTORY, Message, MessageType


class CacheState(str, Enum):
    M = "M"
    E = "E"
    S = "S"
    I = "I"  # noqa: E741 - canonical MESI state name


@dataclass
class ProtocolStats:
    loads: int = 0
    stores: int = 0
    hits: int = 0
    invalidations: int = 0
    writebacks: int = 0
    messages: list[Message] = field(default_factory=list)

    def send(self, mtype: MessageType, line: int, source: int, dest: int) -> None:
        self.messages.append(Message(mtype, line, source, dest))

    @property
    def message_count(self) -> int:
        return len(self.messages)


class MESISystem:
    """N private caches + a directory + a backing value store.

    Values are modelled as integers so tests can check that every load
    observes the most recent store (coherence's actual contract).
    """

    def __init__(self, num_cores: int) -> None:
        self.directory = Directory(num_cores)
        self.num_cores = num_cores
        #: per-core cached state/value: line -> (state, value)
        self.caches: list[dict[int, tuple[CacheState, int]]] = [
            {} for _ in range(num_cores)
        ]
        self.memory: dict[int, int] = {}
        self.stats = ProtocolStats()

    # -- helpers --------------------------------------------------------------

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise IndexError(f"core {core} out of range")

    def state_of(self, core: int, line: int) -> CacheState:
        self._check_core(core)
        return self.caches[core].get(line, (CacheState.I, 0))[0]

    def _invalidate_sharers(self, line: int, except_core: int) -> None:
        entry = self.directory.entry(line)
        for sharer in sorted(entry.sharers):
            if sharer == except_core:
                continue
            self.stats.send(MessageType.INV, line, DIRECTORY, sharer)
            self.caches[sharer].pop(line, None)
            self.stats.send(MessageType.ACK, line, sharer, except_core)
            self.stats.invalidations += 1
        entry.sharers.clear()

    def _recall_owner(self, line: int, demote_to: CacheState, requestor: int) -> int:
        """Fetch the line's value from its M/E owner, demoting or
        invalidating the owner's copy.  Returns the current value."""
        entry = self.directory.entry(line)
        owner = entry.owner
        assert owner is not None
        fwd = (
            MessageType.FWD_GET_S
            if demote_to is CacheState.S
            else MessageType.FWD_GET_M
        )
        self.stats.send(fwd, line, DIRECTORY, owner)
        state, value = self.caches[owner][line]
        if state is CacheState.M:
            self.memory[line] = value  # owner writes back on demotion
            self.stats.writebacks += 1
        if demote_to is CacheState.S:
            self.caches[owner][line] = (CacheState.S, value)
        else:
            del self.caches[owner][line]
            self.stats.invalidations += 1
        self.stats.send(MessageType.DATA, line, owner, requestor)
        entry.owner = None
        return value

    # -- the three core-visible operations -------------------------------------

    def load(self, core: int, line: int) -> int:
        """Core reads a word of ``line``; returns the coherent value."""
        self._check_core(core)
        self.stats.loads += 1
        state, value = self.caches[core].get(line, (CacheState.I, 0))
        if state is not CacheState.I:
            self.stats.hits += 1
            return value

        self.stats.send(MessageType.GET_S, line, core, DIRECTORY)
        entry = self.directory.entry(line)
        if entry.state is DirState.I:
            value = self.memory.get(line, 0)
            self.caches[core][line] = (CacheState.E, value)
            entry.state = DirState.M  # E merged into "owned" at the directory
            entry.owner = core
        elif entry.state is DirState.S:
            value = self.memory.get(line, 0)
            self.stats.send(MessageType.DATA, line, DIRECTORY, core)
            self.caches[core][line] = (CacheState.S, value)
            entry.sharers.add(core)
        else:  # M: recall from owner, both become sharers
            old_owner = entry.owner
            assert old_owner is not None
            value = self._recall_owner(line, CacheState.S, core)
            self.caches[core][line] = (CacheState.S, value)
            entry.state = DirState.S
            entry.sharers.update((core, old_owner))
        entry.check_invariants()
        return value

    def store(self, core: int, line: int, value: int) -> None:
        """Core writes ``value`` to ``line`` (needs exclusive ownership)."""
        self._check_core(core)
        self.stats.stores += 1
        state, _ = self.caches[core].get(line, (CacheState.I, 0))
        if state in (CacheState.M, CacheState.E):
            self.stats.hits += 1
            self.caches[core][line] = (CacheState.M, value)
            return

        self.stats.send(MessageType.GET_M, line, core, DIRECTORY)
        entry = self.directory.entry(line)
        if entry.state is DirState.S:
            # upgrade: invalidate the other sharers (and our own S copy)
            self._invalidate_sharers(line, except_core=core)
            self.caches[core].pop(line, None)
        elif entry.state is DirState.M:
            self._recall_owner(line, CacheState.I, core)
        self.caches[core][line] = (CacheState.M, value)
        entry.state = DirState.M
        entry.owner = core
        entry.sharers.clear()
        entry.check_invariants()

    def evict(self, core: int, line: int) -> None:
        """Core drops its copy (capacity eviction), writing back if dirty."""
        self._check_core(core)
        state, value = self.caches[core].pop(line, (CacheState.I, 0))
        if state is CacheState.I:
            return
        entry = self.directory.entry(line)
        if state is CacheState.M:
            self.stats.send(MessageType.PUT_M, line, core, DIRECTORY)
            self.memory[line] = value
            self.stats.writebacks += 1
            entry.state = DirState.I
            entry.owner = None
        elif state is CacheState.E:
            self.stats.send(MessageType.PUT_M, line, core, DIRECTORY)
            entry.state = DirState.I
            entry.owner = None
        else:  # S
            self.stats.send(MessageType.PUT_S, line, core, DIRECTORY)
            entry.sharers.discard(core)
            if not entry.sharers:
                entry.state = DirState.I
        entry.check_invariants()

    # -- verification hooks -----------------------------------------------------

    def check_coherence(self) -> None:
        """Global safety check: single writer, directory/cache agreement."""
        self.directory.check_all_invariants()
        lines = {l for cache in self.caches for l in cache}
        for line in lines:
            states = [
                (core, self.caches[core][line][0])
                for core in range(self.num_cores)
                if line in self.caches[core]
            ]
            exclusive = [c for c, s in states if s in (CacheState.M, CacheState.E)]
            shared = [c for c, s in states if s is CacheState.S]
            if exclusive and (len(exclusive) > 1 or shared):
                raise AssertionError(
                    f"line {line}: exclusive copy coexists with others: {states}"
                )
            entry = self.directory.peek(line)
            if exclusive:
                if entry.state is not DirState.M or entry.owner != exclusive[0]:
                    raise AssertionError(f"line {line}: directory disagrees")
            elif shared:
                if entry.state is not DirState.S or not set(shared) <= entry.sharers:
                    raise AssertionError(f"line {line}: sharer set disagrees")
