"""Coherence protocol message vocabulary.

The paper's memory timing model (GEMS Ruby) uses a detailed message-based
MOESI protocol; the multiprogrammed SPEC mixes it simulates share no data,
so protocol traffic does not influence the reproduced numbers.  This module
and its siblings provide the substrate anyway — a directory-based MESI
protocol — for the shared-memory example and for correctness tests of the
L1/L2 interaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class MessageType(Enum):
    """Requests from cores and responses/forwards from the directory."""

    GET_S = auto()  #: read request (shared access)
    GET_M = auto()  #: write request (exclusive access)
    PUT_M = auto()  #: dirty writeback from an owner
    PUT_S = auto()  #: clean eviction notice from a sharer
    INV = auto()  #: directory -> sharer invalidation
    FWD_GET_S = auto()  #: directory -> owner: forward data, demote to S
    FWD_GET_M = auto()  #: directory -> owner: forward data, invalidate
    DATA = auto()  #: data response
    ACK = auto()  #: invalidation acknowledgement


@dataclass(frozen=True)
class Message:
    """One hop of protocol traffic (used for accounting and tests)."""

    mtype: MessageType
    line: int
    source: int  #: core id, or -1 for the directory
    dest: int  #: core id, or -1 for the directory

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise ValueError("a message cannot be sent to its source")


DIRECTORY = -1  #: pseudo-node id for the directory/L2 home.
