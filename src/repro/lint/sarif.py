"""SARIF 2.1.0 reporter: lint findings as GitHub code-scanning input.

SARIF (Static Analysis Results Interchange Format) is the exchange format
GitHub's code-scanning UI ingests, turning findings into inline PR
annotations.  The mapping from the engine's model is small and lossless:

* one *run* with one *tool driver* (``repro-lint``), its rule catalogue
  populated from both the per-file and cross-module registries;
* one *result* per :class:`~repro.lint.findings.Finding`; severity
  ``error`` maps to SARIF level ``error``, ``advice`` to ``warning``;
* locations use 1-based lines (shared convention) and 1-based columns
  (SARIF's convention; the engine stores 0-based columns, so +1 here).

The output is deterministic — stable key order, findings pre-sorted by the
engine — so the golden-file test can compare bytes.
"""

from __future__ import annotations

import json

from repro.lint.findings import Finding, LintResult
from repro.lint.rules import RULES
from repro.lint.xmod.rules import XMOD_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "advice": "warning"}


def _rule_catalogue() -> list[dict[str, object]]:
    """Every known rule id, per-file and cross-module, as SARIF metadata."""
    catalogue: list[dict[str, object]] = []
    seen: set[str] = set()
    for registry in (RULES, XMOD_RULES):
        for rule in registry.values():
            if rule.id in seen:
                continue
            seen.add(rule.id)
            catalogue.append(
                {
                    "id": rule.id,
                    "shortDescription": {"text": rule.title},
                    "fullDescription": {"text": rule.rationale},
                    "defaultConfiguration": {
                        "level": _LEVELS.get(rule.default_severity, "warning")
                    },
                }
            )
    return sorted(catalogue, key=lambda r: str(r["id"]))


def _result_of(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
    }


def to_sarif(result: LintResult) -> dict[str, object]:
    """The SARIF document for one lint run, as a plain dict."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": _rule_catalogue(),
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": [
                    _result_of(finding) for finding in result.findings
                ],
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """The SARIF document serialized deterministically (golden-testable)."""
    return json.dumps(to_sarif(result), indent=2) + "\n"


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "to_sarif"]
