"""Configuration of the ``repro lint`` engine (``[tool.repro-lint]``).

The engine is configured from ``pyproject.toml`` so the whole team (and CI)
lints with one source of truth.  All keys are optional; the defaults encode
this repository's layout:

.. code-block:: toml

    [tool.repro-lint]
    exclude = ["tests", "_bootstrap"]        # path fragments to skip
    select = []                              # only these rule ids ([] = all)
    ignore = []                              # rule ids to drop entirely

    [tool.repro-lint.severity]               # per-rule severity overrides
    API001 = "advice"

    [tool.repro-lint.rules]                  # rule-specific path scoping
    det001-allow = ["repro/util/rng.py"]
    det002-paths = ["repro/sim/", "repro/cache/", "repro/partitioning/"]
    det002-allow = ["repro/parallel/bench.py"]   # measurement harnesses
    inv001-allow = ["repro/partitioning/", "repro/resilience/guard.py",
                    "repro/cache/partition_map.py"]
    api001-annotation-paths = ["src/"]
    res002-paths = ["repro/"]

Path scoping uses *posix fragment containment*: a file matches a fragment
when the fragment occurs in its ``/``-joined path as given on the command
line (e.g. ``repro/sim/`` matches ``src/repro/sim/controller.py``).  That
keeps the config independent of where the tree is checked out.

Parsing uses :mod:`tomllib` (Python >= 3.11).  On 3.10, where tomllib does
not exist, the engine silently falls back to the built-in defaults — the
rules still run, only project overrides are unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback, defaults only
    tomllib = None  # type: ignore[assignment]

from repro.lint.findings import SEVERITIES
from repro.errors import ReproError

#: directories never worth descending into.
DEFAULT_EXCLUDE = ("__pycache__", ".git", "_bootstrap", "build", "dist")


class LintConfigError(ReproError, ValueError):
    """``[tool.repro-lint]`` contains an out-of-domain value.

    Inherits :class:`~repro.resilience.errors.ReproError` so the CLI
    boundary turns a bad config into a clean exit-2 instead of a traceback
    (the same contract ERR001 enforces on everything else), and
    ``ValueError`` so pre-taxonomy callers keep working.
    """


@dataclass(frozen=True)
class LintConfig:
    """Engine configuration (built-in defaults unless overridden)."""

    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    severity: dict[str, str] = field(default_factory=dict)
    #: files allowed to use raw RNG constructors (DET001).
    det001_allow: tuple[str, ...] = ("repro/util/rng.py",)
    #: deterministic subsystems where wall-clock reads are forbidden (DET002).
    det002_paths: tuple[str, ...] = (
        "repro/sim/",
        "repro/cache/",
        "repro/partitioning/",
    )
    #: files inside ``det002_paths`` that legitimately measure wall time
    #: (benchmark harnesses), carved out here instead of inline disables.
    det002_allow: tuple[str, ...] = ("repro/parallel/bench.py",)
    #: files allowed to construct PartitionMap directly (INV001).
    inv001_allow: tuple[str, ...] = (
        "repro/partitioning/",
        "repro/resilience/guard.py",
        "repro/cache/partition_map.py",
    )
    #: paths whose public functions must be fully annotated (API001).
    api001_annotation_paths: tuple[str, ...] = ("src/",)
    #: paths where swallow-only broad except handlers are forbidden (RES002).
    res002_paths: tuple[str, ...] = ("repro/",)
    #: files allowed to construct raw numpy generators (DET003, xmod).
    det003_allow: tuple[str, ...] = ("repro/util/rng.py",)
    #: ``module:prefix`` specs naming the CLI roots ERR001 traces from.
    err001_entrypoints: tuple[str, ...] = ("repro.cli:cmd_",)
    #: the taxonomy base every CLI-reachable raise must derive from.
    err001_base: str = "repro.errors.ReproError"
    #: attribute-call names treated as worker submissions (PAR001/PAR002).
    xmod_submit_methods: tuple[str, ...] = (
        "map_ordered",
        "map_supervised",
        "submit",
    )
    #: module whose EVENT_SCHEMAS/COMMON_FIELDS TEL001 checks against.
    tel001_events_module: str = "repro.telemetry.events"

    def __post_init__(self) -> None:
        for rule_id, severity in self.severity.items():
            if severity not in SEVERITIES:
                raise LintConfigError(
                    f"severity override for {rule_id} must be one of "
                    f"{SEVERITIES}, got {severity!r}"
                )

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return not self.select or rule_id in self.select

    def severity_of(self, rule_id: str, default: str) -> str:
        return self.severity.get(rule_id, default)


def _str_tuple(section: dict, key: str, where: str) -> tuple[str, ...] | None:
    if key not in section:
        return None
    value = section[key]
    if not isinstance(value, list) or not all(
        isinstance(v, str) for v in value
    ):
        raise LintConfigError(f"{where}.{key} must be a list of strings")
    return tuple(value)


def config_from_mapping(data: dict) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.repro-lint]`` table."""
    cfg = LintConfig()
    updates: dict[str, object] = {}
    for toml_key, attr in (
        ("exclude", "exclude"),
        ("select", "select"),
        ("ignore", "ignore"),
    ):
        value = _str_tuple(data, toml_key, "tool.repro-lint")
        if value is not None:
            updates[attr] = value
    severity = data.get("severity", {})
    if not isinstance(severity, dict):
        raise LintConfigError("tool.repro-lint.severity must be a table")
    if severity:
        updates["severity"] = dict(severity)
    rules = data.get("rules", {})
    if not isinstance(rules, dict):
        raise LintConfigError("tool.repro-lint.rules must be a table")
    for toml_key, attr in (
        ("det001-allow", "det001_allow"),
        ("det002-paths", "det002_paths"),
        ("det002-allow", "det002_allow"),
        ("inv001-allow", "inv001_allow"),
        ("api001-annotation-paths", "api001_annotation_paths"),
        ("res002-paths", "res002_paths"),
        ("det003-allow", "det003_allow"),
        ("err001-entrypoints", "err001_entrypoints"),
        ("xmod-submit-methods", "xmod_submit_methods"),
    ):
        value = _str_tuple(rules, toml_key, "tool.repro-lint.rules")
        if value is not None:
            updates[attr] = value
    for toml_key, attr in (
        ("err001-base", "err001_base"),
        ("tel001-events-module", "tel001_events_module"),
    ):
        if toml_key in rules:
            value = rules[toml_key]
            if not isinstance(value, str):
                raise LintConfigError(
                    f"tool.repro-lint.rules.{toml_key} must be a string"
                )
            updates[attr] = value
    unknown = set(data) - {"exclude", "select", "ignore", "severity", "rules"}
    if unknown:
        raise LintConfigError(
            f"unknown tool.repro-lint keys: {sorted(unknown)}"
        )
    return replace(cfg, **updates) if updates else cfg


def find_pyproject(start: Path | None = None) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start`` (default: cwd)."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``pyproject`` (auto-discovered when
    ``None``); missing file/table/tomllib all yield the built-in defaults."""
    path = pyproject if pyproject is not None else find_pyproject()
    if path is None or tomllib is None:
        return LintConfig()
    try:
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
    except tomllib.TOMLDecodeError as exc:
        raise LintConfigError(f"{path}: {exc}") from exc
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise LintConfigError("tool.repro-lint must be a table")
    return config_from_mapping(table)
