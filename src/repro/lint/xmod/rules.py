"""The cross-module rule catalogue of ``repro lint --xmod``.

Each rule enforces a contract the per-file engine cannot see because it
spans modules:

* **PAR001 — submitted callables must pickle.**  A callable handed to
  ``map_ordered``/``map_supervised``/``submit`` must resolve to a
  module-level function: lambdas and nested defs capture state that either
  fails to pickle (pool backends) or silently diverges between the serial
  and parallel paths.
* **PAR002 — no global mutation on worker paths.**  Any function
  reachable (via the call graph) from a worker-mapped callable must not
  write module-level mutable state: each pool process has its own copy,
  so the write is lost, unordered, or both — a race against determinism.
* **DET003 — RNG provenance.**  Every numpy ``Generator`` must descend
  from :func:`repro.util.rng.rng_stream` (tracked through import aliasing,
  which the per-file DET001 cannot follow), and a single ``Generator``
  object must not flow into a parallel fan-out (``initargs``/``partial``):
  draw order would depend on scheduling.
* **TEL001 — telemetry schema drift.**  The literal field set of every
  ``tracer.emit("type", field=...)`` call is checked against
  ``telemetry/events.py``'s declared ``EVENT_SCHEMAS``: unknown event
  types, unknown fields, and missing required fields are all drift that
  runtime validation only catches when the emitting path runs.
* **ERR001 — CLI-reachable raises use the taxonomy.**  Every ``raise``
  reachable from a CLI command handler must resolve to the
  :class:`~repro.resilience.errors.ReproError` taxonomy (or an exit/OS
  family the CLI already handles), so users get clean error exits instead
  of tracebacks.

A rule is a function ``(ctx) -> iterator of RawXFinding``; the xmod engine
attaches severities, applies the per-line suppressions of the per-file
engine, then the baseline.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.lint.config import LintConfig
from repro.lint.xmod.callgraph import (
    CallGraph,
    FunctionUnit,
    iter_own_nodes,
    resolve_callable,
)
from repro.lint.xmod.dataflow import (
    assignment_origins,
    initializer_sites,
    module_mutable_globals,
    nonlocal_mutations,
    submission_sites,
    value_atoms,
)
from repro.lint.xmod.symbols import Project

#: (path, line, column, message)
RawXFinding = tuple[str, int, int, str]

#: the RNG chokepoint every Generator must descend from.
RNG_STREAM_QUALNAME = "repro.util.rng.rng_stream"

#: external callables that construct raw numpy generators/streams.
RAW_RNG_QUALNAMES = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.seed",
})

#: raises that are *not* ReproError but are already handled cleanly by the
#: CLI boundary (argparse exits, OS errors, interpreter control flow).
ERR001_EXEMPT = frozenset({
    "SystemExit", "KeyboardInterrupt", "GeneratorExit", "StopIteration",
    "StopAsyncIteration", "NotImplementedError", "AssertionError",
    "OSError", "IOError", "FileNotFoundError", "FileExistsError",
    "PermissionError", "IsADirectoryError", "NotADirectoryError",
    "InterruptedError", "BlockingIOError", "ChildProcessError",
    "ProcessLookupError", "TimeoutError", "ConnectionError",
    "BrokenPipeError", "ConnectionResetError", "ConnectionAbortedError",
    "ConnectionRefusedError", "ArgumentTypeError",
})


@dataclass
class XmodContext:
    """Everything a cross-module rule may consult, built once per run."""

    project: Project
    graph: CallGraph
    config: LintConfig
    #: lazily shared caches
    _sites: list | None = field(default=None, repr=False)
    _worker_roots: set[str] | None = field(default=None, repr=False)

    # -- shared site discovery ----------------------------------------------

    def all_submission_sites(self) -> list:
        if self._sites is None:
            self._sites = [
                site
                for unit in self.graph.units.values()
                for site in submission_sites(
                    unit, self.config.xmod_submit_methods
                )
            ]
        return self._sites

    def worker_roots(self) -> set[str]:
        """Unit ids of every resolvable worker-mapped callable."""
        if self._worker_roots is None:
            roots: set[str] = set()
            for site in self.all_submission_sites():
                for unit_id in self._resolve_site_callables(site):
                    roots.add(unit_id)
            self._worker_roots = roots
        return self._worker_roots

    def _resolve_site_callables(self, site) -> list[str]:
        """Unit ids the callable slot of a submission site may denote,
        chasing one level of local assignment (``fn = a if c else b``)."""
        if site.fn_expr is None or site.unit is None:
            return []
        out: list[str] = []
        for atom in self._callable_atoms(site.unit, site.fn_expr):
            resolved = resolve_callable(self.graph, site.unit, atom)
            if not resolved and isinstance(atom, ast.Name):
                # nested def of the submitting unit itself
                local_id = f"{site.unit.unit_id}.<locals>.{atom.id}"
                if local_id in self.graph.units:
                    resolved = [local_id]
            out.extend(resolved)
        return out

    def _callable_atoms(
        self, unit: FunctionUnit, expr: ast.expr
    ) -> list[ast.expr]:
        """Flatten conditionals and follow single-name local assignments."""
        atoms: list[ast.expr] = []
        origins = assignment_origins(unit.node)
        seen: set[str] = set()

        def expand(node: ast.expr) -> None:
            for atom in value_atoms(node):
                if (
                    isinstance(atom, ast.Name)
                    and atom.id in origins
                    and atom.id not in seen
                ):
                    seen.add(atom.id)
                    for assigned in origins[atom.id]:
                        expand(assigned)
                else:
                    atoms.append(atom)

        expand(expr)
        return atoms


@dataclass(frozen=True)
class XmodRule:
    """One registered cross-module rule."""

    id: str
    title: str
    default_severity: str
    rationale: str
    check: Callable[[XmodContext], Iterator[RawXFinding]]


XMOD_RULES: dict[str, XmodRule] = {}


def _register(
    rule_id: str, title: str, severity: str, rationale: str
) -> Callable:
    def wrap(fn: Callable) -> Callable:
        XMOD_RULES[rule_id] = XmodRule(rule_id, title, severity, rationale, fn)
        return fn

    return wrap


def _unit_path(ctx: XmodContext, unit: FunctionUnit) -> str:
    return ctx.project.modules[unit.module].path


# -- PAR001 ------------------------------------------------------------------


@_register(
    "PAR001",
    "non-module-level callable submitted to a process fan-out",
    "error",
    "callables handed to ParallelExecutor/Supervisor/pool.submit must be "
    "module-level functions: lambdas and nested defs capture state that "
    "fails to pickle or silently diverges between serial and parallel runs",
)
def _par001(ctx: XmodContext) -> Iterator[RawXFinding]:
    for site in ctx.all_submission_sites():
        unit = site.unit
        path = _unit_path(ctx, unit)
        for atom in ctx._callable_atoms(unit, site.fn_expr or site.call.func):
            if site.fn_expr is None:
                break
            if isinstance(atom, ast.Lambda):
                yield (
                    path, atom.lineno, atom.col_offset,
                    f"lambda submitted to {site.method}(): workers need a "
                    "picklable module-level function",
                )
                continue
            if not isinstance(atom, (ast.Name, ast.Attribute)):
                continue  # call results etc.: unknown, stay silent
            resolved = resolve_callable(ctx.graph, unit, atom)
            if not resolved and isinstance(atom, ast.Name):
                # a function-local name the symbol table cannot see: it may
                # still be a nested def of this very unit
                local_id = f"{unit.unit_id}.<locals>.{atom.id}"
                if local_id in ctx.graph.units:
                    resolved = [local_id]
            for unit_id in resolved:
                callee = ctx.graph.units[unit_id]
                if callee.parent is not None:
                    yield (
                        path, atom.lineno, atom.col_offset,
                        f"{callee.node.name}() submitted to "
                        f"{site.method}() is a nested function: it closes "
                        "over its enclosing frame and cannot pickle; move "
                        "it to module level",
                    )


# -- PAR002 ------------------------------------------------------------------


@_register(
    "PAR002",
    "module-level mutable global written on a worker-reachable path",
    "error",
    "a function reachable from a worker-mapped callable that writes a "
    "module-level container races against determinism: each pool process "
    "mutates its own copy in scheduling order, so state diverges from the "
    "serial run",
)
def _par002(ctx: XmodContext) -> Iterator[RawXFinding]:
    reachable = ctx.graph.reachable(ctx.worker_roots())
    for unit_id in sorted(reachable):
        unit = ctx.graph.units[unit_id]
        info = ctx.project.modules[unit.module]
        mutables = module_mutable_globals(info.tree)
        if not mutables:
            continue
        for mutation in nonlocal_mutations(unit.node, set(mutables)):
            yield (
                info.path, mutation.line, mutation.column,
                f"worker-reachable {unit.node.name}() {mutation.detail} "
                f"of module-level global {mutation.name!r} (defined at "
                f"line {mutables[mutation.name]}); pass state through "
                "arguments/results or the executor initializer instead",
            )


# -- DET003 ------------------------------------------------------------------


def _generator_locals(
    ctx: XmodContext, unit: FunctionUnit
) -> dict[str, ast.expr]:
    """Local names bound to an rng_stream() Generator in this unit."""
    out: dict[str, ast.expr] = {}
    for name, values in assignment_origins(unit.node).items():
        for value in values:
            for atom in value_atoms(value):
                if isinstance(atom, ast.Call):
                    resolved = ctx.project.resolve_expr(
                        unit.module, atom.func
                    )
                    if (
                        resolved is not None
                        and resolved.qualname == RNG_STREAM_QUALNAME
                    ):
                        out[name] = atom
    return out


@_register(
    "DET003",
    "numpy Generator without rng_stream provenance (or shared across a fan-out)",
    "error",
    "every Generator must be created through repro.util.rng.rng_stream "
    "(keyed, replayable) and derived per work item: one Generator object "
    "flowing into a parallel fan-out draws in scheduling order",
)
def _det003(ctx: XmodContext) -> Iterator[RawXFinding]:
    allow = ctx.config.det003_allow
    # (a) raw generator construction, resolved through import aliases
    for module_name, info in ctx.project.modules.items():
        if any(fragment in info.path for fragment in allow):
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.project.resolve_expr(module_name, node.func)
            if resolved is not None and resolved.qualname in RAW_RNG_QUALNAMES:
                yield (
                    info.path, node.lineno, node.col_offset,
                    f"{resolved.qualname} creates an unkeyed random stream; "
                    "derive it from repro.util.rng.rng_stream(seed, *keys) "
                    "so provenance is replayable",
                )
    # (b) one Generator object flowing into a parallel fan-out
    for unit in ctx.graph.units.values():
        rng_locals = _generator_locals(ctx, unit)
        if not rng_locals:
            continue
        info = ctx.project.modules[unit.module]

        def name_hits(expr: ast.expr | None):
            if expr is None:
                return
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in rng_locals:
                    yield node

        for site in submission_sites(unit, ctx.config.xmod_submit_methods):
            for arg in [*site.call.args, *[k.value for k in site.call.keywords]]:
                for hit in name_hits(arg):
                    yield (
                        info.path, hit.lineno, hit.col_offset,
                        f"Generator {hit.id!r} flows into "
                        f"{site.method}(): a single stream drawn from "
                        "multiple work items depends on scheduling order; "
                        "derive a per-item stream with rng_stream(seed, key) "
                        "inside the worker",
                    )
        for init_site in initializer_sites(unit):
            for hit in name_hits(init_site.initargs):
                yield (
                    info.path, hit.lineno, hit.col_offset,
                    f"Generator {hit.id!r} shipped via initargs: every "
                    "worker process receives a copy of the same stream "
                    "state; key per-worker streams with rng_stream instead",
                )


# -- TEL001 ------------------------------------------------------------------


@dataclass(frozen=True)
class EventSchema:
    """Statically extracted shape of one telemetry event type."""

    fields: frozenset[str]
    required: frozenset[str]


def extract_event_schemas(
    project: Project, events_module: str
) -> tuple[dict[str, EventSchema], frozenset[str]] | None:
    """Parse ``EVENT_SCHEMAS``/``COMMON_FIELDS`` out of the events module.

    Returns ``(schemas, common_field_names)`` or ``None`` when the module
    is not part of the analyzed tree (TEL001 then stays silent).
    """
    info = project.modules.get(events_module)
    if info is None:
        return None

    def spec_required(expr: ast.expr) -> bool:
        """Is the FieldSpec this expression denotes required?"""
        node = expr
        if isinstance(node, ast.Name):
            node = info.assigns.get(node.id, node)
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "required" and isinstance(
                    keyword.value, ast.Constant
                ):
                    return bool(keyword.value.value)
            return True
        return True

    def field_table(value: ast.expr) -> dict[str, bool] | None:
        if not isinstance(value, ast.Dict):
            return None
        table: dict[str, bool] = {}
        for key, spec in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                table[key.value] = spec_required(spec)
        return table

    schemas_node = info.assigns.get("EVENT_SCHEMAS")
    common_node = info.assigns.get("COMMON_FIELDS")
    if not isinstance(schemas_node, ast.Dict):
        return None
    schemas: dict[str, EventSchema] = {}
    for key, value in zip(schemas_node.keys, schemas_node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        table = field_table(value)
        if table is None:
            continue
        schemas[key.value] = EventSchema(
            fields=frozenset(table),
            required=frozenset(f for f, req in table.items() if req),
        )
    common = frozenset(field_table(common_node) or {"type", "seq", "scheme"})
    return schemas, common


@_register(
    "TEL001",
    "telemetry emission drifts from the declared event schema",
    "error",
    "emit sites must agree with telemetry/events.py: an unknown event "
    "type, an unknown field, or a missing required field only fails at "
    "runtime when that emitting path happens to execute — CI should not "
    "have to wait for it",
)
def _tel001(ctx: XmodContext) -> Iterator[RawXFinding]:
    extracted = extract_event_schemas(
        ctx.project, ctx.config.tel001_events_module
    )
    if extracted is None:
        return
    schemas, common = extracted
    for module_name, info in ctx.project.modules.items():
        for node in ast.walk(info.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            etype = node.args[0].value
            schema = schemas.get(etype)
            if schema is None:
                yield (
                    info.path, node.lineno, node.col_offset,
                    f"emit of unknown event type {etype!r}: not declared "
                    f"in {ctx.config.tel001_events_module}.EVENT_SCHEMAS",
                )
                continue
            has_splat = any(k.arg is None for k in node.keywords)
            literal_fields = {k.arg for k in node.keywords if k.arg}
            for name in sorted(literal_fields - schema.fields - common):
                yield (
                    info.path, node.lineno, node.col_offset,
                    f"emit of {etype!r} passes field {name!r} that the "
                    "schema does not declare (schema drift: add the field "
                    "to EVENT_SCHEMAS or fix the emitter)",
                )
            if not has_splat:
                for name in sorted(schema.required - literal_fields):
                    yield (
                        info.path, node.lineno, node.col_offset,
                        f"emit of {etype!r} is missing required field "
                        f"{name!r}",
                    )


# -- ERR001 ------------------------------------------------------------------


def _is_builtin_exception(name: str) -> bool:
    """Does ``name`` denote a builtin exception class (ValueError, ...)?"""
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


def _entrypoint_units(ctx: XmodContext) -> set[str]:
    """Unit ids matching the configured ``module:prefix`` entry points."""
    roots: set[str] = set()
    for spec in ctx.config.err001_entrypoints:
        module, _, prefix = spec.partition(":")
        info = ctx.project.modules.get(module)
        if info is None:
            continue
        for unit_id, unit in ctx.graph.units.items():
            if unit.module == module and unit.parent is None and (
                unit.owner_class is None
            ) and unit.node.name.startswith(prefix):
                roots.add(unit_id)
    return roots


@_register(
    "ERR001",
    "CLI-reachable raise outside the ReproError taxonomy",
    "error",
    "the CLI promises clean error exits: every raise reachable from a "
    "command handler must be a ReproError (or an exit/OS-error family the "
    "CLI boundary already catches), not a bare ValueError/RuntimeError "
    "that dumps a traceback at the user",
)
def _err001(ctx: XmodContext) -> Iterator[RawXFinding]:
    base = ctx.config.err001_base
    reachable = ctx.graph.reachable(_entrypoint_units(ctx))
    for unit_id in sorted(reachable):
        unit = ctx.graph.units[unit_id]
        info = ctx.project.modules[unit.module]
        for node in iter_own_nodes(unit.node):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if not isinstance(target, (ast.Name, ast.Attribute)):
                continue  # raise of a computed value: unknown, stay silent
            resolved = ctx.project.resolve_expr(unit.module, target)
            if resolved is None:
                if (
                    isinstance(target, ast.Name)
                    and _is_builtin_exception(target.id)
                    and target.id not in ERR001_EXEMPT
                ):
                    # raise of a builtin (ValueError, RuntimeError, ...):
                    # the symbol table has no entry, but the name is
                    # unambiguous — it cannot be shadowed by a local here
                    # or resolve_expr would have found the binding
                    yield (
                        info.path, node.lineno, node.col_offset,
                        f"raise of builtin {target.id} in "
                        f"{unit.node.name}() is reachable from a CLI "
                        f"command handler; raise a "
                        f"{base.rsplit('.', 1)[-1]} subclass so the CLI "
                        "exits cleanly instead of printing a traceback",
                    )
                # otherwise a local name (e.g. a caught exception being
                # re-raised): stay silent
                continue
            leaf = resolved.qualname.rsplit(".", 1)[-1]
            if resolved.qualname == base or leaf in ERR001_EXEMPT:
                continue
            if (
                resolved.kind == "class"
                and isinstance(resolved.node, ast.ClassDef)
                and resolved.module is not None
            ):
                if ctx.project.is_subclass_of(
                    resolved.module, resolved.node, {base}
                ):
                    continue
            elif resolved.kind == "external":
                # builtin / third-party exceptions not in the exempt set
                pass
            else:
                continue  # functions/values: not an exception class
            yield (
                info.path, node.lineno, node.col_offset,
                f"raise of {resolved.qualname} in {unit.node.name}() is "
                "reachable from a CLI command handler but is not a "
                f"{base.rsplit('.', 1)[-1]}: users get a traceback instead "
                "of a clean error exit",
            )


__all__ = [
    "ERR001_EXEMPT",
    "EventSchema",
    "RAW_RNG_QUALNAMES",
    "RNG_STREAM_QUALNAME",
    "RawXFinding",
    "XMOD_RULES",
    "XmodContext",
    "XmodRule",
    "extract_event_schemas",
]
