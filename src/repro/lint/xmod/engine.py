"""Orchestration of the whole-program pass: parse once, resolve, check.

The flow mirrors the per-file engine deliberately — same config object,
same :class:`~repro.lint.findings.Finding` model, same suppression
directives, same exit-code contract — so ``repro lint --xmod`` composes
with everything already built on ``repro lint`` (text/JSON reporters, CI
gating) and adds only what is genuinely new: the cross-module context and
the baseline/cache layers.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.engine import PARSE_RULE, _suppressed, iter_python_files
from repro.lint.findings import Finding, LintResult
from repro.lint.xmod.callgraph import CallGraph, build_call_graph
from repro.lint.xmod.rules import XMOD_RULES, XmodContext
from repro.lint.xmod.symbols import Project

#: bumped whenever rule semantics change, so stale caches self-invalidate.
XMOD_ANALYZER_VERSION = 1


def analyze_project(
    project: Project, config: LintConfig
) -> tuple[list[Finding], CallGraph]:
    """Run every enabled cross-module rule over an already-loaded project."""
    graph = build_call_graph(project)
    ctx = XmodContext(project=project, graph=graph, config=config)
    by_path = {info.path: info for info in project.modules.values()}

    findings: list[Finding] = []
    for path, message in project.parse_failures:
        findings.append(
            Finding(
                path=path,
                line=1,
                column=0,
                rule=PARSE_RULE,
                severity="error",
                message=f"file does not parse: {message}",
            )
        )
    for rule in XMOD_RULES.values():
        if not config.rule_enabled(rule.id):
            continue
        severity = config.severity_of(rule.id, rule.default_severity)
        for path, line, column, message in rule.check(ctx):
            info = by_path.get(path)
            if info is not None and _suppressed(
                line, rule.id, info.suppressions
            ):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    column=column,
                    rule=rule.id,
                    severity=severity,
                    message=message,
                )
            )
    # one callable flowing into several submission sites yields the same
    # finding once per site — report each distinct location once
    return sorted(dict.fromkeys(findings)), graph


def analyze_files(
    files: list[Path], config: LintConfig
) -> LintResult:
    """Whole-program analysis over an explicit file list."""
    project = Project.load(files)
    findings, _ = analyze_project(project, config)
    return LintResult(
        findings=tuple(findings), files_checked=len(project.modules)
        + len(project.parse_failures),
    )


def analyze_paths(paths: list[str], config: LintConfig) -> LintResult:
    """Whole-program analysis over command-line path operands."""
    return analyze_files(iter_python_files(paths, config), config)


__all__ = [
    "XMOD_ANALYZER_VERSION",
    "analyze_files",
    "analyze_paths",
    "analyze_project",
]
