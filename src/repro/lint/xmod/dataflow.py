"""Small, per-function dataflow facts the cross-module rules share.

Nothing here is a fixpoint analysis: these are single-pass syntactic
summaries (local binding sets, assignment origins, mutation sites,
worker-submission sites) that are cheap to compute and precise enough for
the rules' purposes.  The guiding rule is the same as the per-file
engine's: anything the summary cannot prove stays unflagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.xmod.callgraph import FunctionUnit, iter_own_nodes as _own_nodes

#: constructor calls whose result is a mutable container.
MUTABLE_FACTORIES = (
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
)

#: method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "appendleft",
    "extendleft", "sort", "reverse",
})

#: method names at which a callable + work items are handed to a process
#: fan-out (the executor, the supervisor, raw pool submission).
DEFAULT_SUBMIT_METHODS = ("map_ordered", "map_supervised", "submit")


def is_mutable_literal(node: ast.expr) -> bool:
    """Is this expression a mutable-container construction?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_FACTORIES
    )


def module_mutable_globals(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable containers -> defining line."""
    out: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target]
            value = node.value
        else:
            continue
        if value is not None and is_mutable_literal(value):
            for target in targets:
                out[target.id] = node.lineno
    return out


def local_bindings(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every name the function binds locally (so a Store to anything else
    must be targeting an enclosing scope)."""
    args = fn.args
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names - declared_global


def assignment_origins(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, list[ast.expr]]:
    """Local name -> every expression ever assigned to it in this function
    (conditional branches included; flow order deliberately ignored)."""
    origins: dict[str, list[ast.expr]] = {}
    for node in _own_nodes(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    origins.setdefault(target.id, []).append(node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ) and node.value is not None:
            origins.setdefault(node.target.id, []).append(node.value)
    return origins


def value_atoms(expr: ast.expr) -> list[ast.expr]:
    """Flatten conditional expressions into their possible values:
    ``a if c else b`` -> atoms of ``a`` + atoms of ``b``; ``(a or b)``
    likewise.  Anything else is its own (single) atom."""
    if isinstance(expr, ast.IfExp):
        return value_atoms(expr.body) + value_atoms(expr.orelse)
    if isinstance(expr, ast.BoolOp):
        out: list[ast.expr] = []
        for value in expr.values:
            out.extend(value_atoms(value))
        return out
    return [expr]


@dataclass
class SubmissionSite:
    """One hand-off of a callable to a process fan-out API."""

    call: ast.Call
    method: str  #: map_ordered / map_supervised / submit / (constructor)
    #: the expression in the callable slot (first positional / ``fn=``).
    fn_expr: ast.expr | None
    #: items expression (second positional), when present.
    items_expr: ast.expr | None = None
    #: the enclosing unit the site was found in.
    unit: FunctionUnit | None = None


def submission_sites(
    unit: FunctionUnit,
    submit_methods: tuple[str, ...] = DEFAULT_SUBMIT_METHODS,
) -> list[SubmissionSite]:
    """Worker-submission call sites inside one unit.

    A site is any call whose callee is an attribute named in
    ``submit_methods`` (``executor.map_ordered(fn, items)``,
    ``pool.submit(fn, item)``) — receiver type is not checked, which can
    over-match foreign ``submit`` APIs; those are suppressed inline.
    """
    sites: list[SubmissionSite] = []
    for node in _own_nodes(unit.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in submit_methods
        ):
            continue
        fn_expr = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "fn":
                fn_expr = keyword.value
        items_expr = node.args[1] if len(node.args) > 1 else None
        sites.append(SubmissionSite(
            call=node, method=func.attr, fn_expr=fn_expr,
            items_expr=items_expr, unit=unit,
        ))
    return sites


@dataclass
class InitializerSite:
    """An ``initializer=``/``initargs=`` pair handed to an executor-like
    constructor (ParallelExecutor, Supervisor, make_backend, a raw pool)."""

    call: ast.Call
    initializer: ast.expr | None = None
    initargs: ast.expr | None = None
    unit: FunctionUnit | None = None


def initializer_sites(unit: FunctionUnit) -> list[InitializerSite]:
    """Calls in ``unit`` that carry ``initializer=`` or ``initargs=``."""
    sites: list[InitializerSite] = []
    for node in _own_nodes(unit.node):
        if not isinstance(node, ast.Call):
            continue
        site = InitializerSite(call=node, unit=unit)
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                site.initializer = keyword.value
            elif keyword.arg == "initargs":
                site.initargs = keyword.value
        if site.initializer is not None or site.initargs is not None:
            sites.append(site)
    return sites


@dataclass
class MutationSite:
    """One write to a name that is not local to the function."""

    name: str
    line: int
    column: int
    how: str  #: 'global-assign' / 'subscript' / 'attribute' / 'augment' / 'method'
    detail: str = ""


def _base_name(expr: ast.expr) -> str | None:
    """The root Name of a subscript/attribute chain (``X[0].y`` -> X)."""
    node = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def nonlocal_mutations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    candidates: set[str],
) -> list[MutationSite]:
    """Writes inside ``fn`` that hit a name in ``candidates`` (typically the
    defining module's top-level names) rather than a local binding."""
    locals_ = local_bindings(fn)
    interesting = candidates - locals_
    out: list[MutationSite] = []

    def hit(name: str | None) -> bool:
        return name is not None and name in interesting

    for node in _own_nodes(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            # only reachable for names declared ``global``/``nonlocal``
            if hit(node.id):
                out.append(MutationSite(
                    node.id, node.lineno, node.col_offset, "global-assign",
                    "rebinds the module-level name",
                ))
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = _base_name(target)
                    if hit(name):
                        how = (
                            "subscript" if isinstance(target, ast.Subscript)
                            else "attribute"
                        )
                        out.append(MutationSite(
                            name, target.lineno, target.col_offset, how,
                            "writes into the shared object",
                        ))
        elif isinstance(node, ast.AugAssign):
            name = _base_name(node.target)
            if hit(name):
                out.append(MutationSite(
                    name, node.lineno, node.col_offset, "augment",
                    "augments shared state in place",
                ))
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in MUTATING_METHODS:
            name = _base_name(node.func.value)
            if hit(name):
                out.append(MutationSite(
                    name, node.lineno, node.col_offset, "method",
                    f".{node.func.attr}() mutates the shared object",
                ))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = (
                    target.id if isinstance(target, ast.Name)
                    else _base_name(target)
                )
                if hit(name):
                    out.append(MutationSite(
                        name, node.lineno, node.col_offset, "global-assign",
                        "deletes shared state",
                    ))
    return sorted(out, key=lambda m: (m.line, m.column))


__all__ = [
    "DEFAULT_SUBMIT_METHODS",
    "InitializerSite",
    "MUTABLE_FACTORIES",
    "MUTATING_METHODS",
    "MutationSite",
    "SubmissionSite",
    "assignment_origins",
    "initializer_sites",
    "is_mutable_literal",
    "local_bindings",
    "module_mutable_globals",
    "nonlocal_mutations",
    "submission_sites",
    "value_atoms",
]
