"""Whole-program symbol table: modules, top-level bindings, import edges.

The per-file engine (:mod:`repro.lint.engine`) sees one AST at a time; the
cross-module rules need to answer questions like *"what does the name
``mk`` in this module actually denote?"* when ``mk`` arrived via
``from numpy.random import default_rng as mk``.  This module parses the
whole analyzed tree **once** and builds:

* a module table (dotted module name -> parsed source + AST + suppressions);
* per-module top-level bindings: function/class definitions, assignments,
  and import aliases;
* a resolver that follows import chains (bounded, cycle-safe) until a name
  lands on a definition inside the tree or escapes to an external dotted
  name (``numpy.random.default_rng``).

Everything is deliberately *approximate but honest*: a name the resolver
cannot pin down resolves to ``None`` and the rules stay silent about it
(no guessing), which keeps the pass low-noise at the cost of documented
unsoundness (see DESIGN.md section 14).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import collect_suppressions

#: resolver recursion bound: import chains deeper than this (or cyclic
#: re-exports) resolve to None instead of recursing forever.
MAX_RESOLVE_DEPTH = 16


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walking up through packages.

    A directory is part of the package path exactly when it contains an
    ``__init__.py``; the walk stops at the first directory that does not,
    which makes the name independent of where the tree is checked out
    (``src/repro/sim/controller.py`` -> ``repro.sim.controller``).
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed tree."""

    name: str
    path: str  #: posix path, exactly as discovered (finding locations)
    source: str
    tree: ast.Module
    #: line -> rule ids disabled on that line (engine suppression format).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: top-level function/class definitions by name.
    defs: dict[str, ast.AST] = field(default_factory=dict)
    #: top-level plain assignments by name (last binding wins).
    assigns: dict[str, ast.expr] = field(default_factory=dict)
    #: import aliases: local name -> dotted target.  ``import numpy as np``
    #: binds ``np -> numpy``; ``from repro.util.rng import rng_stream``
    #: binds ``rng_stream -> repro.util.rng.rng_stream``.
    imports: dict[str, str] = field(default_factory=dict)

    def top_level_names(self) -> set[str]:
        return set(self.defs) | set(self.assigns) | set(self.imports)


@dataclass(frozen=True)
class Resolved:
    """Outcome of resolving one name through the import graph.

    ``qualname`` is the full dotted name the symbol denotes; ``kind`` is
    ``function`` / ``class`` / ``value`` (top-level assignment) for
    definitions inside the tree, or ``external`` for anything that leaves
    it.  Internal symbols carry their defining ``module`` and AST ``node``.
    """

    qualname: str
    kind: str
    module: str | None = None
    node: ast.AST | None = None


def _bind_target(info: ModuleInfo, target: ast.expr, value: ast.expr) -> None:
    if isinstance(target, ast.Name):
        info.assigns[target.id] = value


def _index_module(info: ModuleInfo) -> None:
    """Populate the top-level binding tables of one module."""
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            info.defs[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                _bind_target(info, target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            _bind_target(info, node.target, node.value)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                # ``import a.b.c`` binds the *root* package name ``a``
                target = alias.name if alias.asname else alias.name.split(
                    ".", 1
                )[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: anchor on this package
                base_parts = info.name.split(".")
                anchor = base_parts[: len(base_parts) - node.level]
                module = ".".join(anchor + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue  # star imports stay unresolved (documented)
                local = alias.asname or alias.name
                info.imports[local] = (
                    f"{module}.{alias.name}" if module else alias.name
                )


class Project:
    """The parsed whole-program view the cross-module rules run against."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.parse_failures: list[tuple[str, str]] = []  #: (path, message)

    @classmethod
    def load(cls, files: list[Path]) -> "Project":
        """Parse every file once and index its top-level bindings."""
        project = cls()
        for path in files:
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=path.as_posix())
            except SyntaxError as exc:
                project.parse_failures.append(
                    (path.as_posix(), exc.msg or "syntax error")
                )
                continue
            info = ModuleInfo(
                name=module_name_for(path),
                path=path.as_posix(),
                source=source,
                tree=tree,
                suppressions=collect_suppressions(source),
            )
            _index_module(info)
            project.modules[info.name] = info
        return project

    # -- resolution ----------------------------------------------------------

    def resolve(self, module: str, name: str, _depth: int = 0) -> Resolved | None:
        """What the top-level name ``name`` in ``module`` denotes."""
        if _depth > MAX_RESOLVE_DEPTH:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        node = info.defs.get(name)
        if node is not None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            return Resolved(f"{module}.{name}", kind, module, node)
        if name in info.assigns:
            return Resolved(
                f"{module}.{name}", "value", module, info.assigns[name]
            )
        if name in info.imports:
            return self.resolve_dotted(info.imports[name], _depth + 1)
        return None

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> Resolved | None:
        """Resolve a dotted name to a definition inside the tree, or tag it
        external.  ``repro.util.rng.rng_stream`` lands on the function def;
        ``numpy.random.default_rng`` is external."""
        if _depth > MAX_RESOLVE_DEPTH:
            return None
        if dotted in self.modules:
            return Resolved(dotted, "module", dotted, self.modules[dotted].tree)
        head, _, leaf = dotted.rpartition(".")
        if head and head in self.modules:
            return self.resolve(head, leaf, _depth + 1)
        # walk shorter prefixes: ``pkg.mod.Class.attr`` -> module pkg.mod
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                inner = self.resolve(prefix, parts[cut], _depth + 1)
                if inner is None:
                    return None
                rest = parts[cut + 1:]
                if not rest:
                    return inner
                return Resolved(
                    f"{inner.qualname}." + ".".join(rest), "external"
                )
        return Resolved(dotted, "external")

    def resolve_expr(self, module: str, expr: ast.expr) -> Resolved | None:
        """Resolve a ``Name`` or dotted ``Attribute`` expression.

        Anything else (calls, subscripts, locals the symbol table does not
        know) resolves to ``None`` — the rules treat that as "unknown",
        never as a finding.
        """
        dotted = _dotted_of(expr)
        if dotted is None:
            return None
        first, _, rest = dotted.partition(".")
        base = self.resolve(module, first)
        if base is None:
            return None
        if not rest:
            return base
        if base.kind == "module":
            return self.resolve_dotted(f"{base.qualname}.{rest}", 1)
        if base.kind == "external":
            return Resolved(f"{base.qualname}.{rest}", "external")
        if base.kind == "class" and base.module is not None:
            # Class attribute: resolve one method level when possible
            method = _class_member(base.node, rest)
            if method is not None:
                return Resolved(
                    f"{base.qualname}.{rest}", "function", base.module, method
                )
        return None

    def class_mro_member(
        self, module: str, cls: ast.ClassDef, name: str
    ) -> Resolved | None:
        """Look ``name`` up on ``cls`` and then its in-tree base classes."""
        seen: set[str] = set()
        queue: list[tuple[str, ast.ClassDef]] = [(module, cls)]
        while queue:
            mod, node = queue.pop(0)
            key = f"{mod}.{node.name}"
            if key in seen:
                continue
            seen.add(key)
            member = _class_member(node, name)
            if member is not None:
                return Resolved(
                    f"{key}.{name}", "function", mod, member
                )
            for base in node.bases:
                resolved = self.resolve_expr(mod, base)
                if (
                    resolved is not None
                    and resolved.kind == "class"
                    and isinstance(resolved.node, ast.ClassDef)
                    and resolved.module is not None
                ):
                    queue.append((resolved.module, resolved.node))
        return None

    def is_subclass_of(
        self, module: str, cls: ast.ClassDef, base_qualnames: set[str]
    ) -> bool:
        """Does ``cls`` (transitively, within the tree) derive from any of
        ``base_qualnames`` (full dotted names, e.g.
        ``repro.resilience.errors.ReproError``)?"""
        seen: set[str] = set()
        queue: list[tuple[str, ast.ClassDef]] = [(module, cls)]
        while queue:
            mod, node = queue.pop(0)
            key = f"{mod}.{node.name}"
            if key in seen:
                continue
            seen.add(key)
            if key in base_qualnames:
                return True
            for base in node.bases:
                resolved = self.resolve_expr(mod, base)
                if resolved is None:
                    continue
                if resolved.qualname in base_qualnames:
                    return True
                if resolved.kind == "class" and isinstance(
                    resolved.node, ast.ClassDef
                ) and resolved.module is not None:
                    queue.append((resolved.module, resolved.node))
        return False


def _dotted_of(expr: ast.expr) -> str | None:
    """``a.b.c`` -> "a.b.c"; anything not a pure Name/Attribute chain -> None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _class_member(
    cls: ast.AST | None, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    if not isinstance(cls, ast.ClassDef):
        return None
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name == name:
                return item
    return None


__all__ = [
    "MAX_RESOLVE_DEPTH",
    "ModuleInfo",
    "Project",
    "Resolved",
    "module_name_for",
]
