"""On-disk findings cache: incremental ``--xmod`` runs are near-instant.

Because every rule is *cross*-module, per-file caching would be unsound: a
change to ``telemetry/events.py`` can create findings in files that did not
change.  The cache therefore keys one entry on the **whole analyzed input**:

    key = sha256( analyzer version
                  ‖ config fingerprint
                  ‖ sorted (path, content-sha256) pairs )

Any file edit, any config edit, or any analyzer upgrade changes the key and
the entry is recomputed from scratch.  Unchanged trees replay the stored
findings without parsing a single file — which is what makes the
run-twice-in-CI pattern cheap.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, LintResult

CACHE_SCHEMA_VERSION = 1

#: default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = Path(".repro-cache") / "lint-xmod.json"


def config_fingerprint(config: LintConfig) -> str:
    """Stable digest of every config field that affects xmod findings."""
    payload = asdict(config)
    blob = json.dumps(payload, sort_keys=True, default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def tree_key(
    files: list[Path], config: LintConfig, analyzer_version: int
) -> str:
    """The cache key for this exact (analyzer, config, file-contents) input."""
    digest = hashlib.sha256()
    digest.update(f"xmod-v{analyzer_version}\n".encode("utf-8"))
    digest.update(config_fingerprint(config).encode("utf-8"))
    for path in sorted(files, key=lambda p: p.as_posix()):
        content_hash = hashlib.sha256(path.read_bytes()).hexdigest()
        digest.update(f"\n{path.as_posix()}\0{content_hash}".encode("utf-8"))
    return digest.hexdigest()


def load_cached(cache_path: Path, key: str) -> LintResult | None:
    """The stored result for ``key``, or ``None`` on miss/corruption.

    A corrupt or wrong-schema cache file is treated as a miss — the cache
    must never be able to fail a run that would otherwise succeed.
    """
    try:
        data = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if (
        not isinstance(data, dict)
        or data.get("schema") != CACHE_SCHEMA_VERSION
        or data.get("key") != key
    ):
        return None
    try:
        findings = tuple(
            Finding(
                path=str(raw["path"]),
                line=int(raw["line"]),
                column=int(raw["column"]),
                rule=str(raw["rule"]),
                severity=str(raw["severity"]),
                message=str(raw["message"]),
            )
            for raw in data["findings"]
        )
        files_checked = int(data["files_checked"])
    except (KeyError, TypeError, ValueError):
        return None
    return LintResult(findings=findings, files_checked=files_checked)


def store(cache_path: Path, key: str, result: LintResult) -> None:
    """Persist ``result`` under ``key`` (single-entry cache, last run wins)."""
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "key": key,
        "files_checked": result.files_checked,
        "findings": [finding.to_dict() for finding in result.findings],
    }
    tmp = cache_path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    tmp.replace(cache_path)


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_PATH",
    "config_fingerprint",
    "load_cached",
    "store",
    "tree_key",
]
