"""Baseline ratcheting: adopt the analyzer today, pay down debt over time.

A *baseline* is a committed JSON file enumerating the findings the team has
looked at and consciously deferred, each with a human-written ``reason``.
On every run:

* a finding **matched** by a baseline entry is demoted to ``advice`` (it is
  reported, prefixed ``[baselined]``, but never fails the build);
* a finding **not** in the baseline keeps its severity — new debt fails CI
  the moment it is introduced;
* a baseline entry matching nothing is reported as stale advice, so the
  file shrinks as debt is fixed (the ratchet only turns one way).

Entries match on ``(rule, path, message)`` — deliberately *not* on line
numbers, which shift with every unrelated edit.  If a message changes the
finding is new again, which is the conservative direction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding
from repro.errors import ConfigError

BASELINE_SCHEMA_VERSION = 1

#: filename auto-discovered next to pyproject.toml when --baseline is absent.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One consciously deferred finding, with its justification."""

    rule: str
    path: str
    message: str
    reason: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)


@dataclass(frozen=True)
class BaselineOutcome:
    """Result of applying a baseline to a run's findings."""

    #: findings not covered by the baseline — these keep their severity.
    new: tuple[Finding, ...]
    #: baseline-covered findings, demoted to advice.
    baselined: tuple[Finding, ...]
    #: entries that matched nothing this run (stale — remove them).
    stale: tuple[BaselineEntry, ...]


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Parse a baseline file; every entry must carry a non-empty reason."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise ConfigError(f"baseline {path} must be an object with 'entries'")
    entries: list[BaselineEntry] = []
    for i, raw in enumerate(data["entries"]):
        if not isinstance(raw, dict):
            raise ConfigError(f"baseline {path}: entry {i} is not an object")
        try:
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                message=str(raw["message"]),
                reason=str(raw["reason"]),
            )
        except KeyError as exc:
            raise ConfigError(
                f"baseline {path}: entry {i} is missing key {exc.args[0]!r}"
            ) from exc
        if not entry.reason.strip():
            raise ConfigError(
                f"baseline {path}: entry {i} ({entry.rule} at {entry.path}) "
                "has an empty 'reason' — every deferred finding needs a "
                "written justification"
            )
        entries.append(entry)
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> BaselineOutcome:
    """Split findings into new vs baselined and spot stale entries."""
    by_key = {entry.key: entry for entry in entries}
    matched: set[tuple[str, str, str]] = set()
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.message)
        entry = by_key.get(key)
        if entry is None:
            new.append(finding)
            continue
        matched.add(key)
        baselined.append(
            Finding(
                path=finding.path,
                line=finding.line,
                column=finding.column,
                rule=finding.rule,
                severity="advice",
                message=f"[baselined: {entry.reason}] {finding.message}",
            )
        )
    stale = tuple(
        entry for entry in entries if entry.key not in matched
    )
    return BaselineOutcome(
        new=tuple(new), baselined=tuple(baselined), stale=stale
    )


def write_baseline(
    findings: list[Finding],
    path: Path,
    previous: list[BaselineEntry] | None = None,
) -> int:
    """Write a baseline covering ``findings``; reasons carry over from
    ``previous`` where the key matches, otherwise a fill-me-in marker is
    emitted (CI loading rejects empty reasons, not markers — review them).
    Returns the number of entries written."""
    carried = {entry.key: entry.reason for entry in (previous or [])}
    entries = []
    seen: set[tuple[str, str, str]] = set()
    for finding in sorted(findings):
        key = (finding.rule, finding.path, finding.message)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "reason": carried.get(
                    key, "TODO: justify or fix before merging"
                ),
            }
        )
    payload = {
        "version": BASELINE_SCHEMA_VERSION,
        "entries": entries,
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def find_baseline(start: Path | None = None) -> Path | None:
    """Nearest committed ``lint-baseline.json`` at or above ``start``."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        baseline = candidate / DEFAULT_BASELINE_NAME
        if baseline.is_file():
            return baseline
    return None


__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BaselineEntry",
    "BaselineOutcome",
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "find_baseline",
    "load_baseline",
    "write_baseline",
]
