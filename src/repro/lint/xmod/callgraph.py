"""Approximate whole-program call graph over a :class:`~.symbols.Project`.

Function *units* are every ``def`` in the tree — module level, methods,
and nested functions — identified by dotted ids::

    repro.analysis.montecarlo._montecarlo_point
    repro.fabric.supervisor.Supervisor._drive
    repro.cli.cmd_chaos.<locals>.note

Call edges are added only where the callee can be *resolved* through the
symbol table:

* plain names (``foo()``), including names that arrived through imports;
* dotted module attributes (``mod.foo()`` where ``mod`` is an imported
  analyzed module);
* ``self.meth()`` / ``cls.meth()``, looked up on the enclosing class and
  its in-tree base classes;
* calls of a class add edges to its ``__init__`` **and** ``__post_init__``
  (the dataclass construction path the taxonomy rules care about);
* a nested ``def`` gets an edge from its enclosing unit (it only exists
  because the parent created it — conservative for reachability).

Receiver-typed method calls (``executor.map_ordered(...)`` where
``executor`` is a local) are *not* resolved — the pass has no type
inference — which is the documented unsoundness boundary: reachability is
an under-approximation on dynamic dispatch and an over-approximation on
nested defs.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.lint.xmod.symbols import Project, Resolved

#: methods that make a class call "reach" user code on construction.
_CTOR_METHODS = ("__init__", "__post_init__", "__new__")


@dataclass
class FunctionUnit:
    """One analyzed ``def``: identity, location, and lexical context."""

    unit_id: str  #: dotted id, e.g. ``pkg.mod.Class.method``
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: enclosing ClassDef when this unit is a method.
    owner_class: ast.ClassDef | None = None
    #: unit id of the lexically enclosing function (nested defs).
    parent: str | None = None


@dataclass
class CallGraph:
    """Units plus resolved call edges; build with :func:`build_call_graph`."""

    project: Project
    units: dict[str, FunctionUnit] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: def-node identity -> unit, so resolution is O(1) per call site.
    _by_node: dict[int, FunctionUnit] = field(default_factory=dict)

    def add_unit(self, unit: FunctionUnit) -> None:
        self.units[unit.unit_id] = unit
        self._by_node[id(unit.node)] = unit

    def add_edge(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, set()).add(dst)

    def unit_of_def(
        self, module: str, node: ast.AST
    ) -> FunctionUnit | None:
        """The unit wrapping one specific def node (identity match)."""
        unit = self._by_node.get(id(node))
        return unit if unit is not None and unit.module == module else None

    def reachable(self, roots: set[str]) -> set[str]:
        """Every unit id reachable from ``roots`` (roots included)."""
        seen = set(root for root in roots if root in self.units)
        queue = deque(seen)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in seen and callee in self.units:
                    seen.add(callee)
                    queue.append(callee)
        return seen


def _flat_statements(body: list[ast.stmt]):
    """Every statement in ``body``, descending through compound statements
    (if/for/while/with/try, including handlers and else/finally blocks) but
    NOT into def/class bodies — those are walked as their own scopes."""
    stack = list(reversed(body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            stack.extend(reversed(getattr(node, field_name, []) or []))
        for handler in getattr(node, "handlers", []) or []:
            stack.extend(reversed(handler.body))


def _collect_units(graph: CallGraph) -> None:
    for module_name, info in graph.project.modules.items():

        def walk(
            body: list[ast.stmt],
            prefix: str,
            owner: ast.ClassDef | None,
            parent: str | None,
        ) -> None:
            for node in _flat_statements(body):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    unit_id = f"{prefix}.{node.name}"
                    graph.add_unit(FunctionUnit(
                        unit_id, module_name, node, owner, parent
                    ))
                    walk(
                        node.body, f"{unit_id}.<locals>", owner=None,
                        parent=unit_id,
                    )
                elif isinstance(node, ast.ClassDef):
                    walk(
                        node.body, f"{prefix}.{node.name}", owner=node,
                        parent=parent,
                    )

        walk(info.tree.body, owner=None, parent=None, prefix=module_name)


def resolve_callable(
    graph: CallGraph, unit: FunctionUnit, expr: ast.expr
) -> list[str]:
    """Unit ids a call/reference expression may land on (empty = unknown).

    Resolving a *class* yields its constructor-path methods, so taxonomy
    rules see ``__post_init__`` validation raises behind ``Cls(...)``.
    """
    project = graph.project
    # self.meth / cls.meth -> enclosing class MRO lookup
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in ("self", "cls")
        and unit.owner_class is not None
    ):
        member = project.class_mro_member(
            unit.module, unit.owner_class, expr.attr
        )
        return _units_for(graph, member)
    resolved = project.resolve_expr(unit.module, expr)
    return _units_for(graph, resolved)


def _units_for(graph: CallGraph, resolved: Resolved | None) -> list[str]:
    if resolved is None or resolved.module is None:
        return []
    if resolved.kind == "function":
        unit = graph.unit_of_def(resolved.module, resolved.node)
        return [unit.unit_id] if unit is not None else []
    if resolved.kind == "class" and isinstance(resolved.node, ast.ClassDef):
        out = []
        for ctor in _CTOR_METHODS:
            member = graph.project.class_mro_member(
                resolved.module, resolved.node, ctor
            )
            if member is not None and member.module is not None:
                unit = graph.unit_of_def(member.module, member.node)
                if unit is not None:
                    out.append(unit.unit_id)
        return out
    return []


def _collect_edges(graph: CallGraph) -> None:
    for unit in graph.units.values():
        # nested defs: conservatively reachable from their parent
        if unit.parent is not None and unit.parent in graph.units:
            graph.add_edge(unit.parent, unit.unit_id)
        for node in iter_own_nodes(unit.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in resolve_callable(graph, unit, node.func):
                graph.add_edge(unit.unit_id, callee)
            # callables passed by reference (decorator-less callbacks,
            # executor submissions) also create reachability
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                if isinstance(arg, (ast.Name, ast.Attribute)):
                    for callee in resolve_callable(graph, unit, arg):
                        graph.add_edge(unit.unit_id, callee)


def iter_own_nodes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested function bodies (those are
    their own units) but including nested class bodies and lambdas."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def build_call_graph(project: Project) -> CallGraph:
    """Index every unit and resolve every resolvable call edge."""
    graph = CallGraph(project)
    _collect_units(graph)
    _collect_edges(graph)
    return graph


__all__ = [
    "CallGraph",
    "iter_own_nodes",
    "FunctionUnit",
    "build_call_graph",
    "resolve_callable",
]
