"""``repro.lint.xmod`` — whole-program cross-module analysis.

Layers (each usable on its own):

* :mod:`~repro.lint.xmod.symbols` — parse the tree once; import/symbol
  resolution (:class:`~repro.lint.xmod.symbols.Project`);
* :mod:`~repro.lint.xmod.callgraph` — approximate call graph over the
  project's function units;
* :mod:`~repro.lint.xmod.dataflow` — shared per-function facts (mutable
  globals, submission sites, mutation sites);
* :mod:`~repro.lint.xmod.rules` — PAR001/PAR002/DET003/TEL001/ERR001;
* :mod:`~repro.lint.xmod.engine` — orchestration into
  :class:`~repro.lint.findings.LintResult`;
* :mod:`~repro.lint.xmod.baseline` / :mod:`~repro.lint.xmod.cache` —
  ratcheting adoption and incremental-run support.
"""

from repro.lint.xmod.baseline import (
    apply_baseline,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.xmod.callgraph import CallGraph, build_call_graph
from repro.lint.xmod.engine import (
    XMOD_ANALYZER_VERSION,
    analyze_files,
    analyze_paths,
    analyze_project,
)
from repro.lint.xmod.rules import XMOD_RULES
from repro.lint.xmod.symbols import Project

__all__ = [
    "CallGraph",
    "Project",
    "XMOD_ANALYZER_VERSION",
    "XMOD_RULES",
    "analyze_files",
    "analyze_paths",
    "analyze_project",
    "apply_baseline",
    "build_call_graph",
    "find_baseline",
    "load_baseline",
    "write_baseline",
]
