"""The lint engine: file discovery, suppression handling, rule dispatch.

Suppressions are inline comments on the flagged line::

    rng = np.random.default_rng()  # repro-lint: disable=DET001
    x = compute()                  # repro-lint: disable=FP001,API001
    y = legacy()                   # repro-lint: disable=all

Comments are located with :mod:`tokenize`, so the directive is never
confused with string contents.  A finding is suppressed only by a directive
on its own line — blanket file-level opt-outs are deliberately unsupported;
exclude the file in ``[tool.repro-lint]`` instead if it truly is exempt.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, LintResult
from repro.lint.rules import RULES, FileContext

#: rule id reserved for files the engine cannot parse.
PARSE_RULE = "PARSE001"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+|all)\s*$"
)


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line (``{'all'}`` for a
    blanket line suppression)."""
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            suppressions.setdefault(token.start[0], set()).update(
                i for i in ids if i
            )
    except tokenize.TokenError:
        # Unterminated constructs: the ast parse will report the real error.
        pass
    return suppressions


def _suppressed(
    finding_line: int, rule_id: str, suppressions: dict[int, set[str]]
) -> bool:
    active = suppressions.get(finding_line, ())
    return rule_id in active or "all" in active


def lint_source(source: str, path: str, config: LintConfig) -> list[Finding]:
    """Lint one already-read source blob (the unit the tests target)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
                rule=PARSE_RULE,
                severity="error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = collect_suppressions(source)
    ctx = FileContext(path=path, config=config)
    findings: list[Finding] = []
    for rule in RULES.values():
        if not config.rule_enabled(rule.id):
            continue
        severity = config.severity_of(rule.id, rule.default_severity)
        for line, column, message in rule.check(tree, ctx):
            if _suppressed(line, rule.id, suppressions):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    column=column,
                    rule=rule.id,
                    severity=severity,
                    message=message,
                )
            )
    return sorted(findings)


def _excluded(path: Path, exclude: tuple[str, ...]) -> bool:
    """Does any exclusion fragment match a *path-segment run* of ``path``?

    Fragments are matched against whole ``/``-separated segments, never raw
    substrings: ``obs`` excludes ``repro/obs/watch.py`` but not ``jobs.py``,
    and a multi-segment fragment like ``repro/obs`` must appear as a
    contiguous segment run.  (Raw containment used to exclude unintended
    files whose names merely *contained* a fragment.)
    """
    parts = path.as_posix().split("/")
    for fragment in exclude:
        want = [seg for seg in fragment.split("/") if seg]
        if not want:
            continue
        span = len(want)
        if any(
            parts[i : i + span] == want
            for i in range(len(parts) - span + 1)
        ):
            return True
    return False


def iter_python_files(
    paths: list[str], config: LintConfig
) -> list[Path]:
    """Expand the command-line path operands into the files to lint."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root]
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for path in candidates:
            if _excluded(path, config.exclude):
                continue
            if path not in seen:
                seen.add(path)
                out.append(path)
    return out


def lint_paths(paths: list[str], config: LintConfig) -> LintResult:
    """Lint every Python file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    files = iter_python_files(paths, config)
    for path in files:
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), path.as_posix(), config
            )
        )
    return LintResult(findings=tuple(sorted(findings)), files_checked=len(files))
