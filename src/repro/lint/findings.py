"""Finding and severity model of the ``repro lint`` engine.

A *finding* is one rule violation at one source location.  Severities are
deliberately minimal:

* ``error``  — a violation of a domain invariant the reproduction depends
  on (determinism, partition safety, float comparison discipline).  Any
  error finding makes ``repro lint`` exit nonzero, so CI fails.
* ``advice`` — style/API guidance worth surfacing but not worth breaking a
  build over.  Reported, never fatal.

Rules declare a default severity; ``[tool.repro-lint.severity]`` in
pyproject.toml can promote or demote individual rules per project.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import ConfigError

SEVERITIES = ("error", "advice")

#: schema version stamped into the JSON report (bump on breaking changes).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location (1-based line, 0-based col)."""

    path: str
    line: int
    column: int
    rule: str
    severity: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable key set, schema version 1)."""
        return asdict(self)

    def render(self) -> str:
        """The one-line text-reporter form."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"[{self.severity}] {self.rule} {self.message}"
        )


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run over a set of paths."""

    findings: tuple[Finding, ...]
    files_checked: int

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def advice_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "advice")

    @property
    def exit_code(self) -> int:
        """CI contract: 0 = clean (advice allowed), 1 = error findings."""
        return 1 if self.error_count else 0
