"""The domain-invariant rule catalogue of ``repro lint``.

Each rule encodes an invariant the paper (or this reproduction's
architecture) depends on but Python cannot enforce by itself:

* **DET001 — seeded randomness only.**  Every stochastic component must
  draw from :func:`repro.util.rng.rng_stream`; raw ``random`` /
  ``np.random.default_rng`` / ``np.random.seed`` calls create unkeyed
  streams that silently break Monte Carlo replayability (paper §V).
* **DET002 — no wall clock in the simulator.**  ``repro.sim``, ``cache``
  and ``partitioning`` operate purely in *simulated* cycles; any
  ``time.time`` / ``datetime.now`` read couples results to the host.
* **FP001 — no float equality.**  Miss ratios, weights and utilities are
  floats; ``==``/``!=`` against float expressions is order-of-evaluation
  dependent.  Compare with a tolerance (``math.isclose``/``pytest.approx``)
  or compare the underlying integer counters.
* **INV001 — partition decisions go through the guard.**  Direct
  ``PartitionMap`` construction outside the partitioning algorithms and
  ``resilience/guard.py`` bypasses way conservation, the 9/16 capacity cap
  and Rules 1–3 validation.
* **API001 — API hygiene.**  Mutable default arguments, bare ``except:``
  and (inside the library tree) unannotated public functions.
* **RES002 — no silently swallowed broad exceptions.**  An ``except``
  over ``Exception``/``BaseException`` (or bare) whose body is only
  ``pass``/``...`` hides worker crashes from the fault-tolerance layer;
  failures must be wrapped, retried, quarantined, or at least logged.

A rule is a pure function ``(tree, ctx) -> iterator of (line, col, msg)``;
the engine attaches severities, applies suppressions and sorts.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.lint.config import LintConfig

RawFinding = tuple[int, int, str]
CheckFn = Callable[[ast.Module, "FileContext"], Iterator[RawFinding]]


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may consult about the file being linted."""

    path: str  #: posix-joined path exactly as passed on the command line
    config: LintConfig

    def matches(self, fragments: tuple[str, ...]) -> bool:
        """Fragment-containment path scoping (see :mod:`repro.lint.config`)."""
        return any(fragment in self.path for fragment in fragments)


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, default severity, and its checker."""

    id: str
    title: str
    default_severity: str
    rationale: str
    check: CheckFn


RULES: dict[str, Rule] = {}


def _register(
    rule_id: str, title: str, severity: str, rationale: str
) -> Callable[[CheckFn], CheckFn]:
    def wrap(fn: CheckFn) -> CheckFn:
        RULES[rule_id] = Rule(rule_id, title, severity, rationale, fn)
        return fn

    return wrap


def _loc(node: ast.AST) -> tuple[int, int]:
    return node.lineno, node.col_offset


# -- DET001 ------------------------------------------------------------------

#: module names whose import anywhere outside util/rng.py is a finding.
_RNG_MODULES = ("random", "numpy.random")


def _is_np_random(node: ast.expr) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


@_register(
    "DET001",
    "unseeded randomness outside util/rng.py",
    "error",
    "all randomness must derive from repro.util.rng.rng_stream so every "
    "experiment is replayable from (seed, keys)",
)
def _det001(tree: ast.Module, ctx: FileContext) -> Iterator[RawFinding]:
    if ctx.matches(ctx.config.det001_allow):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _RNG_MODULES or alias.name.startswith(
                    "numpy.random."
                ):
                    line, col = _loc(node)
                    yield (
                        line, col,
                        f"import of {alias.name!r}: draw from "
                        "repro.util.rng.rng_stream instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            bad = module in _RNG_MODULES or module.startswith("numpy.random.")
            if module == "numpy" and any(
                alias.name == "random" for alias in node.names
            ):
                bad = True
            if bad:
                line, col = _loc(node)
                yield (
                    line, col,
                    f"import from {module!r}: draw from "
                    "repro.util.rng.rng_stream instead",
                )
        elif isinstance(node, ast.Attribute) and _is_np_random(node.value):
            line, col = _loc(node)
            yield (
                line, col,
                f"np.random.{node.attr}: use rng_stream(seed, *keys) so the "
                "stream is keyed and replayable",
            )


# -- DET002 ------------------------------------------------------------------

_WALL_CLOCK_ATTRS = {
    "time": ("time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "localtime", "gmtime"),
    "datetime": ("now", "utcnow", "today"),
}


@_register(
    "DET002",
    "wall-clock read inside the deterministic simulator",
    "error",
    "sim/, cache/ and partitioning/ operate in simulated cycles only; "
    "host-clock reads make runs irreproducible",
)
def _det002(tree: ast.Module, ctx: FileContext) -> Iterator[RawFinding]:
    if not ctx.matches(ctx.config.det002_paths):
        return
    if ctx.matches(ctx.config.det002_allow):
        return  # configured measurement harness (e.g. the bench suite)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("time", "datetime"):
                    line, col = _loc(node)
                    yield (
                        line, col,
                        f"import of {alias.name!r} in a simulated-time "
                        "subsystem: use simulated cycles, not the host clock",
                    )
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "") in ("time", "datetime"):
                line, col = _loc(node)
                yield (
                    line, col,
                    f"import from {node.module!r} in a simulated-time "
                    "subsystem: use simulated cycles, not the host clock",
                )
        elif isinstance(node, ast.Attribute) and isinstance(
            node.value, (ast.Name, ast.Attribute)
        ):
            base = node.value
            base_name = base.id if isinstance(base, ast.Name) else base.attr
            if node.attr in _WALL_CLOCK_ATTRS.get(base_name, ()):
                line, col = _loc(node)
                yield (
                    line, col,
                    f"{base_name}.{node.attr} is a wall-clock read; the "
                    "simulator must only consume simulated cycles",
                )


# -- FP001 -------------------------------------------------------------------


def _is_float_expr(node: ast.expr) -> bool:
    """Conservative float-typedness: float literals, arithmetic over them,
    and explicit ``float(...)`` conversions.  Anything the checker cannot
    prove float stays unflagged — zero false positives over cleverness."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_float_expr(node.left) or _is_float_expr(node.right)
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and not node.keywords
    )


@_register(
    "FP001",
    "equality comparison between float-typed expressions",
    "error",
    "miss ratios and utilities are floats; exact ==/!= depends on "
    "evaluation order — use math.isclose/pytest.approx or compare the "
    "underlying integer counters",
)
def _fp001(tree: ast.Module, ctx: FileContext) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_float_expr(left) or _is_float_expr(right):
                line, col = _loc(left)
                yield (
                    line, col,
                    "float equality: compare with a tolerance "
                    "(math.isclose / pytest.approx) or compare integer "
                    "counters",
                )


# -- INV001 ------------------------------------------------------------------


@_register(
    "INV001",
    "direct PartitionMap construction outside the partitioning layer",
    "error",
    "partition decisions must flow through the partitioning algorithms and "
    "DecisionGuard so way conservation, the 9/16 cap and Rules 1-3 are "
    "validated before installation",
)
def _inv001(tree: ast.Module, ctx: FileContext) -> Iterator[RawFinding]:
    if ctx.matches(ctx.config.inv001_allow):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "PartitionMap":
            line, col = _loc(node)
            yield (
                line, col,
                "construct partitions via bank_aware_partition/"
                "equal_partition_map (+ DecisionGuard), not PartitionMap() "
                "directly",
            )


# -- API001 ------------------------------------------------------------------

_MUTABLE_CALLS = ("list", "dict", "set", "bytearray")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _public_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module- and class-level defs (nested helpers are private by nature)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item


def _unannotated(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    missing = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.annotation is None and a.arg not in ("self", "cls")
    ]
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return missing


@_register(
    "API001",
    "API hygiene: mutable defaults, bare except, unannotated public API",
    "error",
    "mutable defaults alias state across calls, bare except swallows "
    "KeyboardInterrupt/SystemExit, and the public library surface must be "
    "typed",
)
def _api001(tree: ast.Module, ctx: FileContext) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is not None and _is_mutable_default(default):
                    line, col = _loc(default)
                    yield (
                        line, col,
                        f"mutable default argument in {node.name}(): default "
                        "to None and build inside the function",
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            line, col = _loc(node)
            yield (
                line, col,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "catch a concrete exception (ReproError for contained "
                "failures)",
            )
    if not ctx.matches(ctx.config.api001_annotation_paths):
        return
    for fn in _public_functions(tree):
        if fn.name.startswith("_") or fn.name.startswith("test_"):
            continue
        missing = _unannotated(fn)
        if missing:
            yield (
                fn.lineno, fn.col_offset,
                f"public function {fn.name}() has unannotated parameters: "
                f"{', '.join(missing)}",
            )
        if fn.returns is None:
            yield (
                fn.lineno, fn.col_offset,
                f"public function {fn.name}() has no return annotation",
            )


# -- RES002 ------------------------------------------------------------------

_BROAD_EXCEPTIONS = ("Exception", "BaseException")


def _is_broad_catch(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except Exception``, ``except BaseException``, or
    a tuple containing either — the catches wide enough to hide a worker
    crash.  Narrow typed catches stay RES002-clean."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        name = (
            candidate.id
            if isinstance(candidate, ast.Name)
            else candidate.attr if isinstance(candidate, ast.Attribute)
            else None
        )
        if name in _BROAD_EXCEPTIONS:
            return True
    return False


def _swallows_silently(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all: only ``pass`` and/or
    bare ``...`` statements.  A handler that assigns, logs, re-raises, or
    returns a fallback has made a visible decision and is not flagged."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@_register(
    "RES002",
    "broad exception swallowed silently",
    "error",
    "an 'except Exception: pass' (or bare except) hides worker crashes "
    "from the supervision layer; wrap in a typed error, retry, quarantine "
    "to the dead-letter ledger, or at minimum record the failure",
)
def _res002(tree: ast.Module, ctx: FileContext) -> Iterator[RawFinding]:
    if not ctx.matches(ctx.config.res002_paths):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_broad_catch(node) and _swallows_silently(node):
            line, col = _loc(node)
            caught = "bare except" if node.type is None else "broad except"
            yield (
                line, col,
                f"{caught} with a swallow-only body: handle the failure "
                "(wrap/retry/quarantine/log) or catch the precise "
                "exception instead",
            )
