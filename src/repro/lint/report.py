"""Reporters for ``repro lint``: human text and machine JSON.

The JSON schema (version 1) is a stable CI contract::

    {
      "version": 1,
      "files_checked": 42,
      "summary": {"error": 2, "advice": 1},
      "findings": [
        {"path": "src/x.py", "line": 10, "column": 4,
         "rule": "DET001", "severity": "error", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json

from repro.lint.findings import JSON_SCHEMA_VERSION, LintResult
from repro.lint.rules import RULES
from repro.lint.xmod.rules import XMOD_RULES


def render_text(result: LintResult) -> str:
    """One line per finding plus a summary tail."""
    lines = [finding.render() for finding in result.findings]
    noun = "file" if result.files_checked == 1 else "files"
    lines.append(
        f"{result.files_checked} {noun} checked: "
        f"{result.error_count} error(s), {result.advice_count} advice"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The version-1 JSON report (see module docstring)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "summary": {
            "error": result.error_count,
            "advice": result.advice_count,
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The ``--list-rules`` catalogue (per-file, then cross-module)."""
    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.id} [{rule.default_severity}] {rule.title}")
        lines.append(f"    {rule.rationale}")
    for rule in XMOD_RULES.values():
        lines.append(
            f"{rule.id} [{rule.default_severity}] [xmod] {rule.title}"
        )
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)
