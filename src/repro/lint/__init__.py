"""Domain-aware static analysis for the reproduction (``repro lint``).

A self-contained, stdlib-``ast`` rule engine that machine-checks the
invariants the paper states but Python cannot enforce: seeded randomness
only (DET001), no wall clock in the simulator (DET002), no float equality
(FP001), guarded partition construction (INV001) and API hygiene (API001).

Typical use::

    from repro.lint import lint_paths, load_config, render_text
    result = lint_paths(["src", "benchmarks"], load_config())
    print(render_text(result))
    raise SystemExit(result.exit_code)

or from the command line: ``python -m repro lint src benchmarks examples``.
"""

from repro.lint.config import (
    LintConfig,
    LintConfigError,
    config_from_mapping,
    find_pyproject,
    load_config,
)
from repro.lint.engine import (
    PARSE_RULE,
    collect_suppressions,
    lint_paths,
    lint_source,
)
from repro.lint.findings import JSON_SCHEMA_VERSION, Finding, LintResult
from repro.lint.report import render_json, render_rules, render_text
from repro.lint.rules import RULES, FileContext, Rule
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.xmod import XMOD_RULES, analyze_paths

__all__ = [
    "XMOD_RULES",
    "analyze_paths",
    "render_sarif",
    "to_sarif",
    "Finding",
    "FileContext",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintConfigError",
    "LintResult",
    "PARSE_RULE",
    "RULES",
    "Rule",
    "collect_suppressions",
    "config_from_mapping",
    "find_pyproject",
    "lint_paths",
    "lint_source",
    "load_config",
    "render_json",
    "render_rules",
    "render_text",
]
