"""The ``repro bench`` perf-tracking suite (writes ``BENCH_sweep.json``).

A fixed micro/meso benchmark ladder over the reproduction's hot paths:

* ``msa_observe_many``      — batched MSA profiling of the 26-workload
  suite's traces at K = 128 (the analytic experiments' inner loop);
* ``msa_observe_reference`` — the per-access reference loop on the same
  traces, so the batched entry carries its measured speedup;
* ``trace_generation``      — synthetic trace synthesis throughput;
* ``montecarlo_slice``      — a slice of the Fig. 7 sweep (profile reuse,
  partitioning algorithms, checkpoint-format serialisation);
* ``detailed_epoch``        — one detailed simulation through several
  repartitioning epochs (the reference object-model event loop);
* ``detailed_epoch_batched``— the identical simulation on the
  struct-of-arrays engine (``--sim-backend batched``), asserted
  bit-identical and recorded with its measured speedup;
* ``detailed_epoch_spans``  — the traced run again with the span
  profiler on, asserted bit-identical, recording the per-phase
  self-time profile (``span_self_s``) that ``repro bench --attribute``
  consumes plus the spans-on overhead percentage the CI gate checks;
* ``tracer_extend``         — parent-side merge of a worker event stream
  via the ``pre_validated`` fast path, with the re-validating merge
  measured alongside so the traced-overhead delta stays visible.

Every run writes a schema-stable JSON report (format/version/suite/git
rev, per-benchmark wall-clock seconds and throughput) so successive
changes leave a comparable perf trajectory.  Wall-clock reads live here
by design — this is the *measurement* harness, scoped accordingly in
``[tool.repro-lint]`` (``det002-allow``) rather than suppressed inline.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis.montecarlo import collect_profiles, run_monte_carlo
from repro.config import scaled_config
from repro.obs.store import git_rev
from repro.telemetry.tracer import Tracer
from repro.util.atomic_write import atomic_write_text
from repro.profiling.msa import MSAProfiler
from repro.sim.runner import RunSettings, run_mix
from repro.workloads.mixes import TABLE_III_SETS
from repro.workloads.spec_like import ALL_NAMES, get
from repro.workloads.synthetic import generate_trace

FORMAT = "repro-bench"
VERSION = 1

#: workloads for the quick (CI smoke) profiling benchmarks — a reuse-heavy
#: to streaming spread, so the batched kernel sees realistic window shapes.
QUICK_WORKLOADS = ("bzip2", "swim", "mcf", "art", "crafty", "equake")


def _entry(
    name: str, wall_s: float, throughput: float, unit: str, **meta: object
) -> dict:
    return {
        "name": name,
        "wall_s": round(wall_s, 6),
        "throughput": round(throughput, 3),
        "unit": unit,
        "meta": meta,
    }


def _bench_profiling(quick: bool) -> list[dict]:
    cfg = scaled_config()
    num_sets, positions = cfg.l2.sets_per_bank, cfg.l2.total_ways
    names = QUICK_WORKLOADS if quick else ALL_NAMES
    accesses = 20_000 if quick else 80_000

    t0 = time.perf_counter()
    traces = [
        generate_trace(get(name), accesses, num_sets, seed=11).lines
        for name in names
    ]
    gen_wall = time.perf_counter() - t0
    total = sum(t.size for t in traces)

    t0 = time.perf_counter()
    for trace in traces:
        MSAProfiler(num_sets, positions).observe_many(trace)
    batch_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    for trace in traces:
        MSAProfiler(num_sets, positions).observe_many_reference(trace)
    ref_wall = time.perf_counter() - t0

    shared = {
        "workloads": len(names),
        "accesses_per_workload": accesses,
        "positions": positions,
    }
    return [
        _entry(
            "msa_observe_many", batch_wall, total / batch_wall, "accesses/s",
            speedup_vs_reference=round(ref_wall / batch_wall, 2), **shared,
        ),
        _entry(
            "msa_observe_reference", ref_wall, total / ref_wall,
            "accesses/s", **shared,
        ),
        _entry(
            "trace_generation", gen_wall, total / gen_wall, "accesses/s",
            **shared,
        ),
    ]


def _bench_montecarlo(
    quick: bool, jobs: int | None, report_dir: Path
) -> dict:
    cfg = scaled_config()
    mixes = 8 if quick else 50
    accesses = 20_000 if quick else 60_000
    curves = collect_profiles(config=cfg, accesses=accesses)
    t0 = time.perf_counter()
    result = run_monte_carlo(mixes, cfg, curves=curves, jobs=jobs)
    wall = time.perf_counter() - t0
    # persist the points beside the report and prove the exact round-trip
    points_path = report_dir / "BENCH_sweep.points.json"
    result.to_json(points_path)
    reread = type(result).from_json(points_path)
    if reread.points != result.points:
        raise AssertionError("MonteCarloResult JSON round-trip drifted")
    return _entry(
        "montecarlo_slice", wall, mixes / wall, "mixes/s",
        mixes=mixes,
        profile_accesses=accesses,
        mean_unrestricted_ratio=round(result.mean_unrestricted_ratio, 6),
        mean_bank_aware_ratio=round(result.mean_bank_aware_ratio, 6),
        points_file=points_path.name,
    )


def _timed_mixes(cfg, settings_list, reps: int):
    """Best-of-``reps`` wall clock for several detailed runs (identical
    runs — the simulation is deterministic — so min is the honest
    estimator under scheduler/host jitter).  The variants are interleaved
    round-robin across reps so host frequency drift during the suite
    biases every variant equally instead of skewing their ratios."""
    best = [float("inf")] * len(settings_list)
    results = [None] * len(settings_list)
    for _ in range(reps):
        for i, settings in enumerate(settings_list):
            t0 = time.perf_counter()
            results[i] = run_mix(TABLE_III_SETS[1], "bank-aware", cfg, settings)
            best[i] = min(best[i], time.perf_counter() - t0)
    return best, results


def _bench_detailed(quick: bool) -> list[dict]:
    scale = 32 if quick else 8
    duration = 300_000.0 if quick else 1_500_000.0
    epoch = 100_000 if quick else 500_000
    # the quick suite is the CI smoke: take best-of-3 there so host jitter
    # does not leak into the backend-speedup gate; full runs stay single
    reps = 3 if quick else 1
    cfg = scaled_config(scale, epoch_cycles=epoch)
    walls, runs = _timed_mixes(
        cfg,
        [
            RunSettings(duration_cycles=duration, seed=7),
            # same run with telemetry on: the overhead contract says tracing
            # must stay within a few percent of the untraced wall clock
            RunSettings(duration_cycles=duration, seed=7, trace=True),
            # the struct-of-arrays backend on the identical simulation; the
            # result must be bit-identical to the reference run measured above
            RunSettings(duration_cycles=duration, seed=7, sim_backend="batched"),
            # traced run with the span profiler on — still bit-identical
            # (spans are advisory events); its phase profile feeds
            # 'repro bench --attribute' and the spans-off overhead gate
            RunSettings(duration_cycles=duration, seed=7, trace=True,
                        spans=True),
        ],
        reps,
    )
    wall, traced_wall, batched_wall, spanned_wall = walls
    result, traced, batched, spanned = runs
    if batched.to_dict() != result.to_dict():
        raise AssertionError("batched backend diverged from reference")

    def _sim_payload(run):
        # the simulation outcome alone: traced runs also carry their event
        # stream, which legitimately differs (span events are advisory)
        return {
            k: v for k, v in run.to_dict().items()
            if k not in ("events", "telemetry")
        }

    if _sim_payload(spanned) != _sim_payload(result):
        raise AssertionError("span profiling perturbed the simulation")
    from repro.telemetry.spans import self_seconds_by_phase

    span_self = {
        path: round(seconds, 6)
        for path, seconds in self_seconds_by_phase(spanned.events).items()
    }
    shared = {
        "scale": scale,
        "duration_cycles": duration,
        "epochs": len(result.epochs),
        "l2_accesses": sum(c.l2_accesses for c in result.cores),
    }
    return [
        _entry(
            "detailed_epoch", wall, duration / wall, "cycles/s",
            traced_wall_s=round(traced_wall, 6),
            traced_events=len(traced.events),
            traced_overhead_pct=round(100.0 * (traced_wall - wall) / wall, 2),
            **shared,
        ),
        _entry(
            "detailed_epoch_batched", batched_wall,
            duration / batched_wall, "cycles/s",
            speedup_vs_reference=round(wall / batched_wall, 2),
            **shared,
        ),
        _entry(
            "detailed_epoch_spans", spanned_wall,
            duration / spanned_wall, "cycles/s",
            # overhead of span profiling relative to the plain traced run:
            # the quantity the CI spans-off gate bounds
            spanned_overhead_pct=round(
                100.0 * (spanned_wall - traced_wall) / traced_wall, 2
            ),
            span_self_s=span_self,
            **shared,
        ),
    ]


def _bench_tracer_merge(quick: bool) -> dict:
    """Parent-side merge throughput of a pre-validated worker stream.

    Measures ``Tracer.extend`` both ways over the same synthetic worker
    stream: the ``pre_validated`` fast path (what ``compare_schemes`` and
    ``run_sweep`` use, since workers validate on emit) and the
    re-validating merge it replaced, so the report carries the measured
    overhead delta of per-event schema validation.
    """
    events = 20_000 if quick else 100_000
    worker = Tracer()
    for i in range(events):
        worker.emit(
            "epoch_decision", time=float(i), epoch=i,
            algorithm="bank-aware", ways=[4, 4, 8, 8, 4, 4, 8, 8],
            projected_misses=[100.0 + i] * 8,
        )

    t0 = time.perf_counter()
    fast = Tracer()
    fast.extend(worker.events, scheme="bench", pre_validated=True)
    fast_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    revalidating = Tracer()
    revalidating.extend(worker.events, scheme="bench")
    revalidate_wall = time.perf_counter() - t0

    return _entry(
        "tracer_extend", fast_wall, events / fast_wall, "events/s",
        events=events,
        revalidate_wall_s=round(revalidate_wall, 6),
        speedup_vs_revalidate=round(revalidate_wall / fast_wall, 2),
    )


def run_bench_suite(
    *, quick: bool = False, jobs: int | None = None, output: str | Path
) -> dict:
    """Run the suite and atomically write the JSON report to ``output``."""
    target = Path(output)
    target.parent.mkdir(parents=True, exist_ok=True)
    benchmarks = _bench_profiling(quick)
    benchmarks.append(_bench_montecarlo(quick, jobs, target.parent))
    benchmarks.extend(_bench_detailed(quick))
    benchmarks.append(_bench_tracer_merge(quick))
    payload = {
        "format": FORMAT,
        "version": VERSION,
        "suite": "quick" if quick else "full",
        "git_rev": git_rev(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "jobs": jobs,
        "benchmarks": benchmarks,
    }
    atomic_write_text(target, json.dumps(payload, indent=2) + "\n")
    return payload
