"""Order-preserving process-pool execution for deterministic sweeps.

Design constraints, in priority order:

1. **Serial default is the seed path.**  ``jobs=1`` runs work items in the
   caller's process, in order, with no pickling — byte-for-byte the
   behaviour (and numeric results) of the pre-parallel code.
2. **Results merge in submission order.**  Work items are order-tagged at
   submission; completions arriving out of order are buffered until the
   contiguous prefix is ready.  Callers therefore consume results exactly
   as if the sweep were serial, which keeps
   :class:`~repro.resilience.checkpoint.SweepCheckpoint` completed-prefix
   semantics intact: a kill loses only the buffered (not-yet-contiguous)
   tail, which a resume recomputes bit-identically.
3. **Workers are pure.**  Each item's result must be a function of the
   item and the (immutable) initializer payload; the executor adds no
   randomness, no timestamps and no scheduling-dependent state.

A bounded submission window (``4 * jobs``) keeps memory flat on
thousand-item sweeps while still keeping every worker busy.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any

from repro.errors import ConfigError, WorkerCrashError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecorder, maybe_span
from repro.telemetry.timing import wall_clock
from repro.telemetry.tracer import Tracer

#: submission-window multiple: at most this many items per worker are
#: in flight or buffered at once.
WINDOW_PER_JOB = 4


def _timed_call(fn: Callable[[Any], Any], item: Any) -> tuple[float, Any]:
    """Run ``fn(item)`` and return (wall seconds, result).

    Module-level so it pickles into worker processes; only used when the
    executor is tracing (untraced runs ship ``fn`` unwrapped).
    """
    start = wall_clock()
    result = fn(item)
    return wall_clock() - start, result


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from an explicit ``--jobs`` value or ``REPRO_JOBS``.

    ``None`` consults the environment and defaults to 1 (serial); ``0``
    means one worker per available CPU.  Anything negative is refused.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


class ParallelExecutor:
    """Fan out pure work items, yielding results in submission order.

    Parameters
    ----------
    jobs:
        Worker processes (see :func:`resolve_jobs`); 1 = in-process serial.
    initializer / initargs:
        Per-worker setup, the standard way to ship a large shared payload
        (e.g. the 26 miss curves) once per worker instead of once per
        item.  The serial path calls it once in-process, so worker
        functions can read the same module-level state either way.
    tracer / metrics:
        Optional telemetry sinks.  When a tracer is attached, every yielded
        item emits one ``sweep_item`` event *at yield time* — submission
        order — so serial and parallel runs of the same sweep produce
        identical event streams (only the non-deterministic ``wall_s``
        field differs).
    spans:
        Optional parent-side :class:`~repro.telemetry.spans.SpanRecorder`:
        the serial path wraps each item call in an ``executor.item`` span,
        the pool path wraps each completion wait in ``executor.wait``.
        Span events are advisory, so attaching a recorder never perturbs
        the determinism contract.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self._initializer = initializer
        self._initargs = initargs
        self.tracer = tracer
        self.metrics = metrics
        self.spans = spans

    def _emit_item(self, index: int, label: str, wall_s: float) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "sweep_item", index=index, label=label, wall_s=wall_s
            )
        if self.metrics is not None:
            self.metrics.counter("executor.items").inc()
            self.metrics.histogram("executor.item_wall_s").observe(wall_s)

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        labels: Sequence[str] | None = None,
    ) -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results in item order.

        ``labels`` (aligned with ``items``) names the per-item trace
        events; it defaults to the item index.
        """
        work: Sequence[Any] = list(items)
        if labels is not None and len(labels) != len(work):
            raise ConfigError(
                f"{len(labels)} labels for {len(work)} work items"
            )
        if self.metrics is not None:
            self.metrics.gauge("executor.jobs").set(self.jobs)
        if self.jobs == 1 or len(work) <= 1:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            for index, item in enumerate(work):
                if (
                    self.tracer is None
                    and self.metrics is None
                    and self.spans is None
                ):
                    yield fn(item)
                    continue
                start = wall_clock()
                with maybe_span(self.spans, "executor.item"):
                    result = fn(item)
                self._emit_item(
                    index,
                    labels[index] if labels else str(index),
                    wall_clock() - start,
                )
                yield result
            return
        yield from self._map_pool(fn, work, labels)

    def _map_pool(
        self,
        fn: Callable[[Any], Any],
        work: Sequence[Any],
        labels: Sequence[str] | None = None,
    ) -> Iterator[Any]:
        window = self.jobs * WINDOW_PER_JOB
        total = len(work)
        traced = self.tracer is not None or self.metrics is not None
        pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=self._initializer,
            initargs=self._initargs,
        )
        try:
            pending: dict[int, Any] = {}  # submission index -> future
            ready: dict[int, Any] = {}  # out-of-order completions
            submitted = 0
            emitted = 0
            while emitted < total:
                while submitted < total and len(pending) + len(ready) < window:
                    pending[submitted] = (
                        pool.submit(_timed_call, fn, work[submitted])
                        if traced
                        else pool.submit(fn, work[submitted])
                    )
                    submitted += 1
                if emitted in ready:
                    result = ready.pop(emitted)
                    if traced:
                        wall_s, result = result
                        self._emit_item(
                            emitted,
                            labels[emitted] if labels else str(emitted),
                            wall_s,
                        )
                    yield result
                    emitted += 1
                    continue
                with maybe_span(self.spans, "executor.wait"):
                    wait(pending.values(), return_when=FIRST_COMPLETED)
                for index in [i for i, f in pending.items() if f.done()]:
                    try:
                        ready[index] = pending.pop(index).result()
                    except Exception as exc:
                        # A worker raised: surface *which* item failed as a
                        # typed error (the raw exception stays attached as
                        # __cause__).  BaseException — KeyboardInterrupt,
                        # GeneratorExit — passes through unwrapped so
                        # interrupts keep their meaning.
                        label = labels[index] if labels else str(index)
                        raise WorkerCrashError(
                            f"work item #{index} ({label}) crashed: "
                            f"{type(exc).__name__}: {exc}",
                            index=index,
                            label=label,
                        ) from exc
        except BaseException:
            # A worker raised, the consumer abandoned the generator
            # (GeneratorExit lands here) or the user interrupted: drop
            # every queued-but-unstarted item instead of letting the
            # full submission window run to completion first.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            pool.shutdown(wait=True)
