"""Order-preserving process-pool execution for deterministic sweeps.

Design constraints, in priority order:

1. **Serial default is the seed path.**  ``jobs=1`` runs work items in the
   caller's process, in order, with no pickling — byte-for-byte the
   behaviour (and numeric results) of the pre-parallel code.
2. **Results merge in submission order.**  Work items are order-tagged at
   submission; completions arriving out of order are buffered until the
   contiguous prefix is ready.  Callers therefore consume results exactly
   as if the sweep were serial, which keeps
   :class:`~repro.resilience.checkpoint.SweepCheckpoint` completed-prefix
   semantics intact: a kill loses only the buffered (not-yet-contiguous)
   tail, which a resume recomputes bit-identically.
3. **Workers are pure.**  Each item's result must be a function of the
   item and the (immutable) initializer payload; the executor adds no
   randomness, no timestamps and no scheduling-dependent state.

A bounded submission window (``4 * jobs``) keeps memory flat on
thousand-item sweeps while still keeping every worker busy.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any

from repro.resilience.errors import ConfigError

#: submission-window multiple: at most this many items per worker are
#: in flight or buffered at once.
WINDOW_PER_JOB = 4


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from an explicit ``--jobs`` value or ``REPRO_JOBS``.

    ``None`` consults the environment and defaults to 1 (serial); ``0``
    means one worker per available CPU.  Anything negative is refused.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


class ParallelExecutor:
    """Fan out pure work items, yielding results in submission order.

    Parameters
    ----------
    jobs:
        Worker processes (see :func:`resolve_jobs`); 1 = in-process serial.
    initializer / initargs:
        Per-worker setup, the standard way to ship a large shared payload
        (e.g. the 26 miss curves) once per worker instead of once per
        item.  The serial path calls it once in-process, so worker
        functions can read the same module-level state either way.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self._initializer = initializer
        self._initargs = initargs

    def map_ordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results in item order."""
        work: Sequence[Any] = list(items)
        if self.jobs == 1 or len(work) <= 1:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            for item in work:
                yield fn(item)
            return
        yield from self._map_pool(fn, work)

    def _map_pool(
        self, fn: Callable[[Any], Any], work: Sequence[Any]
    ) -> Iterator[Any]:
        window = self.jobs * WINDOW_PER_JOB
        total = len(work)
        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=self._initializer,
            initargs=self._initargs,
        ) as pool:
            pending: dict[int, Any] = {}  # submission index -> future
            ready: dict[int, Any] = {}  # out-of-order completions
            submitted = 0
            emitted = 0
            while emitted < total:
                while submitted < total and len(pending) + len(ready) < window:
                    pending[submitted] = pool.submit(fn, work[submitted])
                    submitted += 1
                if emitted in ready:
                    yield ready.pop(emitted)
                    emitted += 1
                    continue
                wait(pending.values(), return_when=FIRST_COMPLETED)
                for index in [i for i, f in pending.items() if f.done()]:
                    # .result() re-raises worker exceptions here, in
                    # submission context, cancelling the rest of the pool
                    ready[index] = pending.pop(index).result()
