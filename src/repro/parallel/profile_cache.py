"""On-disk memoization of the stand-alone MSA profiling pass.

``collect_profiles`` is the fixed prologue of every analytic experiment:
26 synthetic traces, each pushed through an exact MSA profiler.  Its
output is a pure function of (workload model, cache geometry, trace
length, warmup split, seed), so the curves can be cached on disk and
reused across Monte Carlo runs, CLI invocations and benchmark sessions.

Keying is by an explicit fingerprint over *everything* that determines a
curve — including a format version bumped whenever profiling semantics
change — so a stale cache can only ever miss, never lie.  Entries are one
``.npz`` per (workload, fingerprint), written atomically (temp file +
``os.replace``); unreadable entries are treated as misses and recomputed,
because the cache is disposable by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.config import SystemConfig
from repro.profiling.miss_curve import MissCurve, load_curves, save_curves
from repro.util.atomic_write import atomic_write

#: bump when profiling semantics change (trace generation, warmup
#: handling, histogram projection) to invalidate every old entry.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_PROFILE_CACHE``, else ``~/.cache/repro/profiles``."""
    env = os.environ.get("REPRO_PROFILE_CACHE", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "profiles"


class ProfileCache:
    """Miss-curve store under one directory (created lazily on first put)."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def fingerprint(
        config: SystemConfig,
        *,
        accesses: int,
        warmup_fraction: float,
        seed: int,
    ) -> str:
        """Digest of every parameter that determines a profile curve."""
        payload = {
            "version": CACHE_VERSION,
            "sets_per_bank": config.l2.sets_per_bank,
            "total_ways": config.l2.total_ways,
            "accesses": accesses,
            "warmup_fraction": warmup_fraction,
            "seed": seed,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def _path(self, name: str, fingerprint: str) -> Path:
        return self.root / f"{name}-{fingerprint}.npz"

    def get(self, name: str, fingerprint: str) -> MissCurve | None:
        """The cached curve, or ``None`` on miss *or* unreadable entry."""
        path = self._path(name, fingerprint)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            curve = load_curves(path).get(name)
        except Exception:  # disposable cache: any corruption is a miss
            curve = None
        if curve is None:
            self.misses += 1
        else:
            self.hits += 1
        return curve

    def put(self, name: str, fingerprint: str, curve: MissCurve) -> None:
        """Durably store one curve (temp + fsync + rename + dir fsync)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(name, fingerprint)

        def writer(tmp: str) -> None:
            save_curves(tmp, {name: curve})
            fd = os.open(tmp, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

        # keep the .npz suffix: np.savez would append one to any other name
        atomic_write(path, writer, suffix=".npz")
