"""Deterministic sweep execution: process-pool fan-out + profile caching.

The paper's expensive experiments are embarrassingly parallel — Fig. 7 is
independent Monte Carlo mixes, Figs. 8/9 independent (mix, scheme)
simulations — and every work item is a pure function of its inputs.  This
package exploits that without giving up determinism or resumability:

* :mod:`~repro.parallel.executor` fans work items out to a process pool
  and merges results back **in submission order**, so sweep outputs (and
  their :class:`~repro.resilience.checkpoint.SweepCheckpoint` prefixes)
  are bit-identical for every ``--jobs`` value, serial default included;
* :mod:`~repro.parallel.profile_cache` memoizes the 26-workload MSA
  profiling pass on disk, keyed by everything that determines a curve;
* :mod:`~repro.parallel.bench` is the ``repro bench`` perf-tracking suite
  (imported directly by the CLI, not re-exported here).
"""

from repro.parallel.executor import ParallelExecutor, resolve_jobs
from repro.parallel.profile_cache import ProfileCache, default_cache_dir

__all__ = [
    "ParallelExecutor",
    "ProfileCache",
    "default_cache_dir",
    "resolve_jobs",
]
