"""Structured exception taxonomy of the whole package.

This module is a dependency *leaf* (it imports nothing from the
package), so every layer — ``repro.config`` at the bottom, the lint
engine at the top — can raise taxonomy errors without import cycles.
It moved here from ``repro.resilience.errors``, which remains as a
compatibility re-export.

Every failure the resilience machinery can detect — and therefore contain —
is a :class:`ReproError`, so callers (the epoch controller, the sweep
drivers, the CLI) can distinguish *contained, expected* faults from genuine
programming errors and react without a bare ``except Exception``.

Errors that replace what used to be plain ``ValueError`` raises also inherit
from :class:`ValueError`, so existing callers that caught ``ValueError`` on
those paths keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "CheckpointCorrupt",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "ConfigError",
    "PartitionInvariantError",
    "PoisonItemError",
    "ProfilerFault",
    "ReproError",
    "SanitizerViolation",
    "SimulationInvariantError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class of every structured error raised by this package."""


class ConfigError(ReproError, ValueError):
    """A component was constructed with out-of-domain parameters."""


class ProfilerFault(ReproError):
    """A profiler's output is unusable for a partitioning decision.

    Raised when an MSA histogram has too few observations, contains negative
    or non-finite counters, or projects a non-monotone miss curve — whether
    the cause is an injected fault or a real profiler pathology.
    """

    def __init__(self, message: str, *, core: int | None = None) -> None:
        super().__init__(message)
        self.core = core


class PartitionInvariantError(ReproError, ValueError):
    """A partitioning decision violates a hard structural invariant.

    The invariants are the ones the paper's scheme depends on for safety:
    way conservation, the 9/16 maximum-assignable-capacity cap, a minimum
    share per core, and Rules 1–3 of the Bank-aware assignment.
    """


class WorkerCrashError(ReproError):
    """A sweep worker raised while evaluating one work item.

    Wraps the worker's exception (available as ``__cause__``) with the
    submission ``index`` and trace ``label`` of the item that failed, so a
    thousand-item sweep aborts with *which* item died instead of a raw
    traceback from an anonymous pool process.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        label: str | None = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.label = label


class PoisonItemError(ReproError):
    """A work item kept failing after every permitted retry.

    Raised by the fabric supervisor once an item has exhausted its retry
    budget and been quarantined into the dead-letter ledger; ``attempts``
    counts how many times it was tried.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        label: str | None = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.label = label
        self.attempts = attempts


class CheckpointCorrupt(ReproError):
    """A sweep checkpoint file failed parsing or integrity validation."""


class CheckpointMismatchError(CheckpointCorrupt):
    """An intact checkpoint belongs to a *different* experiment.

    Raised when a resume is attempted with parameters (seed, mixes,
    schemes, machine shape, ...) that disagree with the snapshot's stored
    metadata: splicing its completed items into the current sweep would
    silently pair work item *i* with another experiment's result.  Subclass
    of :class:`CheckpointCorrupt` so existing refuse-to-resume handlers
    keep working; ``mismatched`` names the disagreeing metadata keys.
    """

    def __init__(self, message: str, *, mismatched: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.mismatched = mismatched


#: modern alias — new code should catch :class:`CheckpointCorruptError`;
#: the short name predates the ``*Error`` convention and stays for
#: backwards compatibility.
CheckpointCorruptError = CheckpointCorrupt


class SimulationInvariantError(ReproError):
    """Simulator state violated an internal should-be-impossible invariant.

    Replaces load-bearing ``assert`` statements on library paths (a
    directory entry pointing at a bank that does not hold the line, a
    replacement pass selecting no victim), so the checks survive
    ``python -O`` and carry context when they fire.
    """


class SanitizerViolation(ReproError):
    """A deep sanitizer check failed (see :mod:`repro.resilience.sanitizer`).

    Unlike the guard — which *contains* bad decisions and keeps running —
    the sanitizer is a debugging mode: a violation always propagates, with
    enough context (check name, bank/set/core) to localise the corruption.
    """

    def __init__(
        self,
        message: str,
        *,
        check: str | None = None,
        core: int | None = None,
        bank: int | None = None,
        set_index: int | None = None,
    ) -> None:
        where = ", ".join(
            f"{key}={value}"
            for key, value in (
                ("check", check), ("core", core),
                ("bank", bank), ("set", set_index),
            )
            if value is not None
        )
        super().__init__(f"sanitizer: {message}" + (f" [{where}]" if where else ""))
        self.check = check
        self.core = core
        self.bank = bank
        self.set_index = set_index
