"""Synthetic workload models standing in for SPEC CPU2000."""

from repro.workloads.mixes import TABLE_III_SETS, Mix, random_mixes, state_space_size
from repro.workloads.spec_like import ALL_NAMES, FP_NAMES, INTEGER_NAMES, get, suite
from repro.workloads.synthetic import (
    PhasedWorkload,
    ReusePool,
    WorkloadSpec,
    generate_trace,
)

__all__ = [
    "ALL_NAMES",
    "FP_NAMES",
    "INTEGER_NAMES",
    "Mix",
    "PhasedWorkload",
    "ReusePool",
    "TABLE_III_SETS",
    "WorkloadSpec",
    "generate_trace",
    "get",
    "random_mixes",
    "state_space_size",
    "suite",
]
