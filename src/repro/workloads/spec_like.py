"""SPEC CPU2000-like synthetic workload suite (26 benchmarks).

The paper draws its workloads from the 26 SPEC CPU2000 integer and floating
point benchmarks it could run.  We model each with a :class:`WorkloadSpec`
whose reuse-pool mixture reproduces the qualitative MSA miss-ratio-curve
behaviour the paper reports or that is well documented for these benchmarks
in the utility-based-partitioning literature:

* **sixtrack** — almost all misses removed by ~6 dedicated ways (Fig. 3).
* **applu** — improves up to ~10 ways, then flat: a large streaming floor.
* **bzip2** — gradual improvement up to ~45 ways (Fig. 3); modelled with a
  Zipf-skewed large pool.
* **mcf / art / swim** — memory-intensive with large footprints and heavy
  streaming: the classic "cache polluters" that make shared LLCs thrash.
* **eon / crafty / gzip / galgel** — small working sets, cache-friendly.

Footprints are expressed in ways (lines per set) so the suite scales with
the machine.  Per-benchmark ``l2_apki`` (L2 references per kilo-instruction),
``mlp`` and ``nonmem_cpi`` feed the analytic core model; their magnitudes
follow the usual characterisation of the suite (mcf/art/swim memory bound,
eon/crafty/sixtrack compute bound).
"""

from __future__ import annotations

from repro.workloads.synthetic import ReusePool, WorkloadSpec

_P = ReusePool


def _suite() -> dict[str, WorkloadSpec]:
    # Pool widths are solved for *effective* LRU demand: a stream component
    # interleaves one-touch lines between pool reuses, pushing the pool
    # deeper in the stack (self-inflation) — effective footprint is roughly
    # ``w + stream_weight * (w / pool_weight)``.  Streaming is concentrated
    # in the handful of genuinely memory-streaming benchmarks (swim, mcf,
    # applu, art, equake, lucas, wupwise); everyone else carries only a
    # token stream, so the 128-way budget reallocation dynamics match the
    # paper's Table III assignments (gcc 2-8, galgel/gap 4-5, eon 3,
    # art 16, mcf 24, mgrid 40, bzip2 48, facerec/twolf 56, ...).
    specs = [
        # --- SPEC CPU2000 integer ------------------------------------------
        WorkloadSpec("gzip", ( _P(4, 0.95), ), stream_weight=0.05,
                     l2_apki=8, mlp=1.5, nonmem_cpi=0.45),
        WorkloadSpec("vpr", ( _P(12, 0.94), ), stream_weight=0.06,
                     l2_apki=30, mlp=2.5, nonmem_cpi=0.55),
        WorkloadSpec("gcc", ( _P(2, 0.60), _P(24, 0.32) ), stream_weight=0.08,
                     l2_apki=25, mlp=2.5, nonmem_cpi=0.50),
        WorkloadSpec("mcf", ( _P(10, 0.45), ), stream_weight=0.55,
                     l2_apki=130, mlp=12.0, nonmem_cpi=0.60,
                     write_fraction=0.25),
        WorkloadSpec("crafty", ( _P(9, 0.95), ), stream_weight=0.05,
                     l2_apki=10, mlp=1.5, nonmem_cpi=0.40),
        WorkloadSpec("parser", ( _P(10, 0.62), _P(30, 0.32) ),
                     stream_weight=0.06, l2_apki=35, mlp=2.2, nonmem_cpi=0.55),
        WorkloadSpec("eon", ( _P(3, 0.97), ), stream_weight=0.03,
                     l2_apki=4, mlp=1.3, nonmem_cpi=0.40),
        WorkloadSpec("perlbmk", ( _P(6, 0.95), ), stream_weight=0.05,
                     l2_apki=7, mlp=1.5, nonmem_cpi=0.45),
        WorkloadSpec("gap", ( _P(4, 0.92), ), stream_weight=0.08,
                     l2_apki=18, mlp=2.2, nonmem_cpi=0.50),
        WorkloadSpec("vortex", ( _P(14, 0.94), ), stream_weight=0.06,
                     l2_apki=25, mlp=2.0, nonmem_cpi=0.50),
        WorkloadSpec("bzip2", ( _P(42, 0.96, zipf=0.4), ), stream_weight=0.04,
                     l2_apki=45, mlp=2.5, nonmem_cpi=0.50),
        WorkloadSpec("twolf", ( _P(46, 0.78, zipf=0.3), _P(6, 0.17) ),
                     stream_weight=0.05, l2_apki=55, mlp=2.0, nonmem_cpi=0.55),
        # --- SPEC CPU2000 floating point -----------------------------------
        WorkloadSpec("wupwise", ( _P(4, 0.70), ), stream_weight=0.30,
                     l2_apki=25, mlp=4.0, nonmem_cpi=0.45),
        WorkloadSpec("swim", ( _P(3, 0.25), ), stream_weight=0.75,
                     l2_apki=120, mlp=12.0, nonmem_cpi=0.50,
                     write_fraction=0.35),
        WorkloadSpec("mgrid", ( _P(32, 0.85, zipf=0.2), ), stream_weight=0.15,
                     l2_apki=55, mlp=5.0, nonmem_cpi=0.50),
        WorkloadSpec("applu", ( _P(5, 0.55), ), stream_weight=0.45,
                     l2_apki=55, mlp=5.0, nonmem_cpi=0.50),
        WorkloadSpec("mesa", ( _P(7, 0.68), _P(16, 0.26) ), stream_weight=0.06,
                     l2_apki=15, mlp=1.8, nonmem_cpi=0.45),
        WorkloadSpec("galgel", ( _P(4, 0.92), ), stream_weight=0.08,
                     l2_apki=14, mlp=2.0, nonmem_cpi=0.50),
        WorkloadSpec("art", ( _P(12, 0.72), ), stream_weight=0.28,
                     l2_apki=110, mlp=8.0, nonmem_cpi=0.55,
                     write_fraction=0.20),
        WorkloadSpec("equake", ( _P(6, 0.50), _P(6, 0.20) ),
                     stream_weight=0.30, l2_apki=45, mlp=5.0, nonmem_cpi=0.55),
        WorkloadSpec("facerec", ( _P(48, 0.94, zipf=0.25), ),
                     stream_weight=0.06, l2_apki=55, mlp=3.0, nonmem_cpi=0.50),
        WorkloadSpec("ammp", ( _P(8, 0.58), _P(16, 0.34) ),
                     stream_weight=0.08, l2_apki=45, mlp=3.0, nonmem_cpi=0.55),
        WorkloadSpec("lucas", ( _P(4, 0.50), _P(6, 0.20) ),
                     stream_weight=0.30, l2_apki=50, mlp=4.0, nonmem_cpi=0.50),
        WorkloadSpec("fma3d", ( _P(6, 0.70), _P(2, 0.22) ),
                     stream_weight=0.08, l2_apki=30, mlp=3.0, nonmem_cpi=0.55),
        WorkloadSpec("sixtrack", ( _P(5, 0.97), ), stream_weight=0.03,
                     l2_apki=10, mlp=1.5, nonmem_cpi=0.40),
        WorkloadSpec("apsi", ( _P(11, 0.72), _P(20, 0.20) ),
                     stream_weight=0.08, l2_apki=35, mlp=3.0, nonmem_cpi=0.50),
    ]
    return {s.name: s for s in specs}


_SUITE = _suite()

#: the 12 integer benchmarks of the modelled suite.
INTEGER_NAMES = (
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser",
    "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
)
#: the 14 floating point benchmarks of the modelled suite.
FP_NAMES = (
    "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art",
    "equake", "facerec", "ammp", "lucas", "fma3d", "sixtrack", "apsi",
)
ALL_NAMES = INTEGER_NAMES + FP_NAMES


def suite() -> dict[str, WorkloadSpec]:
    """All 26 SPEC-like workload specs, keyed by benchmark name."""
    return dict(_SUITE)


def get(name: str) -> WorkloadSpec:
    """Look up one benchmark spec by name."""
    try:
        return _SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose one of {sorted(_SUITE)}"
        ) from None
