"""Synthetic workload models standing in for SPEC CPU2000 traces.

The paper consumes its workloads exclusively through (a) their MSA
stack-distance histograms and (b) their interference in the shared L2.  Both
are fully determined by the stack-distance statistics of the L2 reference
stream, so we model each benchmark as a mixture of *reuse pools* plus a
*streaming* component:

* A reuse pool of ``w`` ways footprint holds ``w * num_sets`` distinct lines
  accessed with a stationary popularity distribution.  Under uniform
  popularity the move-to-front (LRU stack) position of a request is uniform
  over the pool's resident lines, which yields a miss-ratio curve that falls
  *linearly* until the pool fits (``w`` dedicated ways) and is flat beyond —
  exactly the knee shapes of the paper's Fig. 3 (sixtrack ~6 ways,
  applu ~10 ways).  Zipf popularity produces convex, gradually-improving
  curves (bzip2-like).
* A streaming component walks sequentially through a large region and never
  reuses a line: its references miss at every allocation, making the curve
  flat at ``stream_weight`` for any partition size (applu's floor).

Pool footprints are specified in *ways* so that the same spec scales with
the simulated machine: a pool of 6 ways is 6 lines per L2 set regardless of
whether a bank has 2048 or 256 sets.

Traces generated here represent the **L2 reference stream** (the paper's
profilers likewise monitor "the L2 cache accesses of each core"); the L1 is
modelled separately (``repro.cache.l1``) and its hit latency is folded into
the workload's non-memory CPI.  ``gap`` values encode the instructions
retired between consecutive L2 references, derived from the workload's L2
accesses-per-kilo-instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import zlib

from repro.mem.trace import Trace
from repro.util.rng import rng_stream

from repro.errors import ConfigError

#: byte span reserved for each pool/stream region so regions never overlap.
_REGION_SPAN = 1 << 34


def _region_base_lines(spec_name: str, component: int, region_lines: int) -> int:
    """Starting line of a component's region.

    Regions are spaced ``region_lines`` apart plus a deterministic sub-2^20
    salt, so their cache *tags* start at unrelated values.  Perfectly
    aligned regions would all truncate to the same partial-tag sequence and
    systematically alias in the hardware profiler — real program segments
    (heap, stacks, mmaps) are not giga-aligned either.
    """
    salt = zlib.crc32(f"{spec_name}:{component}".encode()) & 0xFFFFF
    return component * region_lines + salt


@dataclass(frozen=True)
class ReusePool:
    """A resident working-set component.

    Parameters
    ----------
    ways:
        Footprint in cache ways (lines per L2 set).
    weight:
        Un-normalised probability mass of this component in the mixture.
    zipf:
        Popularity skew exponent; ``0`` means uniform popularity (sharp
        linear knee), larger values give convex curves with long tails.
    """

    ways: int
    weight: float
    zipf: float = 0.0

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ConfigError("pool footprint must be at least one way")
        if self.weight <= 0:
            raise ConfigError("pool weight must be positive")
        if self.zipf < 0:
            raise ConfigError("zipf exponent must be non-negative")


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete synthetic model of one benchmark."""

    name: str
    pools: tuple[ReusePool, ...]
    stream_weight: float = 0.0
    write_fraction: float = 0.3
    #: L2 references per 1000 instructions; drives the gap distribution.
    l2_apki: float = 20.0
    #: average exploitable memory-level parallelism for L2/memory misses.
    mlp: float = 2.0
    #: CPI of the non-memory instruction stream (includes L1 hit latency).
    nonmem_cpi: float = 0.5

    def __post_init__(self) -> None:
        if isinstance(self.pools, ReusePool):  # forgive a missing comma
            object.__setattr__(self, "pools", (self.pools,))
        object.__setattr__(self, "pools", tuple(self.pools))
        if not self.pools and self.stream_weight <= 0:
            raise ConfigError("workload needs at least one component")
        if self.stream_weight < 0:
            raise ConfigError("stream weight must be non-negative")
        if not 0 <= self.write_fraction <= 1:
            raise ConfigError("write fraction must be in [0, 1]")
        if self.l2_apki <= 0:
            raise ConfigError("l2_apki must be positive")
        if self.mlp < 1:
            raise ConfigError("MLP must be at least 1")

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between consecutive L2 references."""
        return max(1000.0 / self.l2_apki - 1.0, 0.0)

    @property
    def total_footprint_ways(self) -> int:
        return sum(p.ways for p in self.pools)

    def component_weights(self) -> np.ndarray:
        """Normalised mixture weights: pools first, stream last."""
        raw = np.array([p.weight for p in self.pools] + [self.stream_weight])
        return raw / raw.sum()


def _pool_popularity(
    pool: ReusePool, num_lines: int, num_sets: int
) -> np.ndarray | None:
    """Per-line selection probabilities inside a pool (None for uniform).

    Zipf skew is applied over the line's *depth within its set* (line ``i``
    maps to set ``i % num_sets`` and depth ``i // num_sets``), so every set
    observes an identical popularity distribution.  Rank-ordering across raw
    line indices would pile the hottest lines into the lowest-numbered sets
    and systematically bias the set-sampled profiler.
    """
    if pool.zipf < 1e-12:  # vanishing skew: numerically uniform
        return None
    depth = np.arange(num_lines, dtype=np.float64) // num_sets + 1.0
    weights = depth ** (-pool.zipf)
    return weights / weights.sum()


def generate_trace(
    spec: WorkloadSpec,
    num_accesses: int,
    num_sets: int,
    *,
    seed: int = 0,
    base_address: int = 0,
) -> Trace:
    """Generate ``num_accesses`` L2 references for one benchmark.

    ``num_sets`` is the total number of L2 sets of the simulated machine
    (2048 for the paper baseline); pool footprints scale with it so that a
    pool of *w* ways always occupies *w* lines per set.

    Lines are striped across sets (line index ``i`` of a pool maps to set
    ``i % num_sets``) so that each set observes the same stack-distance
    statistics — the homogeneity assumption behind the paper's 1-in-32 set
    sampling.
    """
    if num_accesses < 0:
        raise ConfigError("num_accesses must be non-negative")
    # base_address deliberately not in the RNG key: offsetting a trace in
    # the address space must not change its access pattern.
    rng = rng_stream(seed, "trace", spec.name)

    weights = spec.component_weights()
    n_components = len(weights)
    stream_idx = n_components - 1
    choices = rng.choice(n_components, size=num_accesses, p=weights)

    lines = np.empty(num_accesses, dtype=np.uint64)
    region_lines = _REGION_SPAN >> 6
    for idx, pool in enumerate(spec.pools):
        mask = choices == idx
        count = int(mask.sum())
        if not count:
            continue
        pool_lines = pool.ways * num_sets
        pop = _pool_popularity(pool, pool_lines, num_sets)
        picks = rng.choice(pool_lines, size=count, p=pop)
        base = _region_base_lines(spec.name, idx, region_lines)
        lines[mask] = np.uint64(base) + picks.astype(np.uint64)

    stream_mask = choices == stream_idx
    n_stream = int(stream_mask.sum())
    if n_stream:
        # A sequential walk through a dedicated region; wraps far beyond any
        # realistic simulation length, so every reference is a cold line.
        start = int(rng.integers(0, num_sets))
        seq = (start + np.arange(n_stream, dtype=np.uint64)) % np.uint64(
            region_lines
        )
        base = _region_base_lines(spec.name, stream_idx, region_lines)
        lines[stream_mask] = np.uint64(base) + seq

    addresses = (lines << np.uint64(6)) + np.uint64(base_address)
    is_write = rng.random(num_accesses) < spec.write_fraction
    gaps = rng.poisson(spec.mean_gap, size=num_accesses).astype(np.uint32)
    return Trace(addresses, is_write, gaps)


@dataclass
class PhasedWorkload:
    """A workload whose behaviour changes over time (for the dynamic
    controller experiments): a list of ``(spec, num_accesses)`` phases."""

    phases: list[tuple[WorkloadSpec, int]] = field(default_factory=list)

    def generate(self, num_sets: int, *, seed: int = 0, base_address: int = 0) -> Trace:
        if not self.phases:
            raise ConfigError("phased workload needs at least one phase")
        parts = [
            generate_trace(
                spec,
                count,
                num_sets,
                seed=seed + i,
                base_address=base_address,
            )
            for i, (spec, count) in enumerate(self.phases)
        ]
        trace = parts[0]
        for part in parts[1:]:
            trace = trace.concat(part)
        return trace
