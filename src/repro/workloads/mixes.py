"""Workload mixes: Monte Carlo sampling and the paper's eight fixed sets.

The paper evaluates partitioning over the state space of SPEC CPU2000
combinations (C(26+8-1, 8) ≈ 14 M possibilities) with a Monte Carlo draw of
1000 random 8-workload assignments *with repetition*, then picks eight mixes
for detailed full-system simulation (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.util.rng import rng_stream
from repro.workloads.spec_like import ALL_NAMES, get
from repro.workloads.synthetic import WorkloadSpec

from repro.errors import ConfigError


@dataclass(frozen=True)
class Mix:
    """An assignment of one benchmark per core."""

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        for name in self.names:
            get(name)  # validate eagerly

    def __len__(self) -> int:
        return len(self.names)

    def specs(self) -> tuple[WorkloadSpec, ...]:
        return tuple(get(n) for n in self.names)

    def __str__(self) -> str:
        return "+".join(self.names)


#: The eight detailed-simulation mixes of paper Table III (core0..core7).
TABLE_III_SETS: tuple[Mix, ...] = (
    Mix(("apsi", "galgel", "gcc", "mgrid", "applu", "mesa", "facerec", "gzip")),
    Mix(("crafty", "gap", "mcf", "art", "equake", "equake", "bzip2", "equake")),
    Mix(("applu", "galgel", "art", "art", "sixtrack", "gcc", "mgrid", "lucas")),
    Mix(("mgrid", "mcf", "art", "equake", "gcc", "equake", "sixtrack", "crafty")),
    Mix(("facerec", "fma3d", "sixtrack", "apsi", "fma3d", "ammp", "lucas", "swim")),
    Mix(("bzip2", "gcc", "twolf", "mesa", "wupwise", "applu", "fma3d", "ammp")),
    Mix(("swim", "parser", "mgrid", "twolf", "fma3d", "parser", "swim", "mcf")),
    Mix(("ammp", "eon", "swim", "gap", "gcc", "art", "twolf", "art")),
)


def state_space_size(num_workloads: int = len(ALL_NAMES), num_cores: int = 8) -> int:
    """Size of the combination space the paper quotes (~14 M):
    ``C(num_workloads + num_cores - 1, num_cores)``."""
    return comb(num_workloads + num_cores - 1, num_cores)


def random_mixes(
    count: int,
    num_cores: int = 8,
    *,
    seed: int = 2009,
    names: tuple[str, ...] = ALL_NAMES,
) -> list[Mix]:
    """Draw ``count`` random mixes with repetition (the paper's Monte Carlo
    methodology, Section IV.A, step 2)."""
    if count < 0:
        raise ConfigError("count must be non-negative")
    rng = rng_stream(seed, "mixes", num_cores, names)
    out = []
    for _ in range(count):
        picks = rng.integers(0, len(names), size=num_cores)
        out.append(Mix(tuple(names[i] for i in picks)))
    return out
