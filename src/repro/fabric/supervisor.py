"""Supervised execution of pure work items: retry, timeout, degrade.

The :class:`Supervisor` is the fault boundary of the sweep fabric.  It
drives the same order-preserving, bounded-window submission discipline as
:class:`~repro.parallel.executor.ParallelExecutor`, but wraps every work
item in a supervision contract:

* **bounded retries** — an item whose worker raises is retried up to
  ``max_attempts`` starts, with *seeded deterministic backoff*: the delay
  for (item, attempt) is drawn from ``rng_stream(seed, "backoff", index,
  attempt)``, so a replayed chaos run waits the same milliseconds;
* **wall deadlines** — every start is stamped with
  :func:`~repro.telemetry.timing.wall_clock` (the one sanctioned host
  clock); an item running past ``timeout_s`` has its pool killed — a
  ``ProcessPoolExecutor`` cannot cancel a *running* future, so the only
  honest preemption is process termination — and is resubmitted;
* **a graceful-degradation ladder** mirroring the decision guard's
  (PR 1): ``pool → fresh-pool → serial``.  A broken pool (worker killed
  hard) or a deadline expiry advances one rung; in-flight items are
  requeued, and the final rung runs in-process where nothing short of
  killing the parent can interrupt it;
* **poison quarantine** — an item that exhausts its retry budget is
  recorded in the :class:`~repro.fabric.deadletter.DeadLetterLedger` and
  either aborts the sweep (``on_poison="raise"``, the default: a
  checkpointed sweep must stay a contiguous prefix) or yields the
  :data:`QUARANTINED` sentinel in its slot (``on_poison="skip"``).

Every action emits an advisory ``supervisor`` telemetry event (dropped
from the canonical projection — recovery explains *how* the run survived,
never changes *what* it computed) and is tallied for the run-store
manifest via :meth:`Supervisor.summary`.

Results are yielded strictly in submission order, so
:class:`~repro.resilience.checkpoint.SweepCheckpoint` contiguous-prefix
semantics — and therefore bit-identical kill/resume — hold under every
failure the supervisor can contain.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.fabric.deadletter import DeadLetterLedger
from repro.parallel.executor import WINDOW_PER_JOB, resolve_jobs
from repro.errors import ConfigError, PoisonItemError
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import SpanRecorder, maybe_span
from repro.telemetry.timing import wall_clock
from repro.telemetry.tracer import Tracer
from repro.util.rng import rng_stream

#: the degradation ladder, least to most degraded.
RUNGS = ("pool", "fresh-pool", "serial")

#: yielded in a quarantined item's slot under ``on_poison="skip"`` so the
#: consumer keeps positional alignment with the submitted items.
QUARANTINED = type("_Quarantined", (), {
    "__repr__": lambda self: "<quarantined>", "__slots__": (),
})()

#: patchable sleep used for retry backoff (tests stub it out).
_sleep = time.sleep


@dataclass(frozen=True)
class SupervisorPolicy:
    """The supervision contract applied to every work item."""

    #: total permitted starts per item (1 = no retries).
    max_attempts: int = 3
    #: wall-clock deadline per start, seconds (None = no deadline; the
    #: serial rung cannot preempt and ignores it).
    timeout_s: float | None = None
    #: first retry delay; doubles per attempt, capped at ``backoff_max_s``.
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    #: seed of the deterministic backoff jitter stream.
    seed: int = 0
    #: 'raise' aborts the sweep on a poison item (checkpoint-safe);
    #: 'skip' yields QUARANTINED in its slot and continues.
    on_poison: str = "raise"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.on_poison not in ("raise", "skip"):
            raise ConfigError(
                f"on_poison must be 'raise' or 'skip', got {self.on_poison!r}"
            )

    def backoff_s(self, index: int, attempt: int) -> float:
        """Deterministic delay before retry ``attempt`` of item ``index``.

        Exponential in the attempt number with seeded jitter in
        [0.5x, 1.5x), so colliding retries spread out but a replay waits
        identically.
        """
        scale = min(
            self.backoff_base_s * (2 ** max(0, attempt - 1)),
            self.backoff_max_s,
        )
        jitter = rng_stream(self.seed, "backoff", index, attempt).uniform(
            0.5, 1.5
        )
        return float(scale * jitter)


def emit_supervisor_event(
    events: list[dict],
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    *,
    kind: str,
    index: int,
    attempt: int,
    label: str | None = None,
    rung: str | None = None,
    detail: str | None = None,
) -> dict:
    """Record one supervision action everywhere it is observable: the
    in-memory action log (-> run-store manifest), the advisory telemetry
    stream, and the metrics registry."""
    record: dict = {"kind": kind, "index": index, "attempt": attempt}
    if label is not None:
        record["label"] = label
    if rung is not None:
        record["rung"] = rung
    if detail is not None:
        record["detail"] = detail
    events.append(record)
    if tracer is not None:
        tracer.emit("supervisor", **record)
    if metrics is not None:
        metrics.counter(f"supervisor.{kind}").inc()
    return record


class Supervisor:
    """Fault-bounded, order-preserving fan-out of pure work items."""

    def __init__(
        self,
        jobs: int | None = None,
        *,
        policy: SupervisorPolicy | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        spans: SpanRecorder | None = None,
        deadletter: DeadLetterLedger | None = None,
        sweep: str = "",
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.policy = policy or SupervisorPolicy()
        self._initializer = initializer
        self._initargs = initargs
        self.tracer = tracer
        self.metrics = metrics
        self.spans = spans
        self.deadletter = deadletter
        self.sweep = sweep
        #: every supervision action taken, in order (manifest material).
        self.events: list[dict] = []
        self.quarantined_indices: list[int] = []
        self.total_attempts = 0
        #: per-rung item completion latencies (wall seconds, start to
        #: result) — merged into one envelope by :meth:`summary`.
        self._item_wall: dict[str, Histogram] = {}
        self._rung = 0 if self.jobs > 1 else len(RUNGS) - 1
        self._pool: ProcessPoolExecutor | None = None
        self._serial_initialized = False

    # -- observability -------------------------------------------------------

    @property
    def rung(self) -> str:
        """Current degradation-ladder rung name."""
        return RUNGS[self._rung]

    def _emit(
        self,
        kind: str,
        *,
        index: int,
        attempt: int,
        label: str | None = None,
        detail: str | None = None,
    ) -> None:
        emit_supervisor_event(
            self.events, self.tracer, self.metrics,
            kind=kind, index=index, attempt=attempt, label=label,
            rung=self.rung, detail=detail,
        )

    def _observe_item_wall(self, wall_s: float) -> None:
        hist = self._item_wall.get(self.rung)
        if hist is None:
            hist = self._item_wall[self.rung] = Histogram(
                f"item_wall.{self.rung}"
            )
        hist.observe(wall_s)

    def summary(self) -> dict:
        """Manifest-ready digest: action counts, final rung, casualties,
        and the item-latency envelope (per-rung histograms folded into one
        with :meth:`~repro.telemetry.metrics.Histogram.merge`)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        merged = Histogram("item_wall")
        for rung in RUNGS:
            hist = self._item_wall.get(rung)
            if hist is not None:
                merged.merge(hist)
        return {
            "actions": counts,
            "rung": self.rung,
            "total_attempts": self.total_attempts,
            "quarantined": sorted(self.quarantined_indices),
            "item_wall": merged.summary(),
            "item_wall_by_rung": {
                rung: hist.summary()
                for rung, hist in sorted(self._item_wall.items())
            },
        }

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    def _kill_pool(self) -> None:
        """Terminate the pool's workers: the only way to preempt a running
        future, and the fate of a pool whose worker already died hard."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except (OSError, ValueError):
                pass  # already dead / closed — exactly what we wanted
        pool.shutdown(wait=False, cancel_futures=True)

    def _degrade(self, reason: str, *, index: int, attempt: int) -> None:
        self._kill_pool()
        if self._rung < len(RUNGS) - 1:
            self._rung += 1
        self._emit(
            "degrade", index=index, attempt=attempt,
            detail=f"{reason}; continuing on rung {self.rung!r}",
        )

    # -- quarantine / retry shared paths ------------------------------------

    def _quarantine(
        self, index: int, label: str, attempts: int, error: str
    ) -> None:
        """Give up on one item: ledger, event, then raise or mark skipped."""
        if self.deadletter is not None:
            self.deadletter.record(
                index=index, label=label, attempts=attempts,
                error=error, sweep=self.sweep,
            )
        self._emit(
            "quarantine", index=index, attempt=attempts, label=label,
            detail=error,
        )
        self.quarantined_indices.append(index)
        if self.policy.on_poison == "raise":
            raise PoisonItemError(
                f"work item #{index} ({label}) failed all "
                f"{attempts} attempts: {error}",
                index=index, label=label, attempts=attempts,
            )

    def _retry(self, index: int, label: str, attempt: int, error: str) -> None:
        self._emit(
            "retry", index=index, attempt=attempt, label=label, detail=error
        )
        delay = self.policy.backoff_s(index, attempt)
        if delay > 0:
            _sleep(delay)

    # -- the supervised map --------------------------------------------------

    def map_supervised(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        labels: Sequence[str] | None = None,
    ) -> Iterator[Any]:
        """Apply ``fn`` to every item under supervision, yielding results
        in item order (:data:`QUARANTINED` fills a skipped item's slot)."""
        work: Sequence[Any] = list(items)
        if labels is not None and len(labels) != len(work):
            raise ConfigError(f"{len(labels)} labels for {len(work)} items")
        if len(work) <= 1 and self._rung == 0:
            self._rung = len(RUNGS) - 1  # nothing to fan out
        try:
            yield from self._drive(fn, work, labels)
        finally:
            self._kill_pool()

    def _label(self, labels: Sequence[str] | None, index: int) -> str:
        return labels[index] if labels else str(index)

    def _drive(
        self,
        fn: Callable[[Any], Any],
        work: Sequence[Any],
        labels: Sequence[str] | None,
    ) -> Iterator[Any]:
        total = len(work)
        window = self.jobs * WINDOW_PER_JOB
        attempts = [0] * total  # starts, including the first
        queue: deque[int] = deque(range(total))
        pending: dict[int, tuple[Any, float]] = {}  # index -> (future, t0)
        ready: dict[int, Any] = {}
        skipped: set[int] = set()
        emitted = 0
        while emitted < total:
            while emitted < total and (emitted in ready or emitted in skipped):
                if emitted in ready:
                    yield ready.pop(emitted)
                else:
                    skipped.discard(emitted)
                    yield QUARANTINED
                emitted += 1
            if emitted >= total:
                return
            if self._rung == len(RUNGS) - 1:
                self._step_serial(fn, work, labels, attempts, queue,
                                  pending, ready, skipped)
            else:
                self._step_pool(fn, work, labels, attempts, queue,
                                pending, ready, skipped, window,
                                already_buffered=len(ready) + len(skipped))

    # -- serial rung ---------------------------------------------------------

    def _step_serial(
        self, fn, work, labels, attempts, queue, pending, ready, skipped
    ) -> None:
        # in-flight items inherited from a killed pool come first
        for index in sorted(pending):
            queue.appendleft(index)
        pending.clear()
        if not self._serial_initialized:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            self._serial_initialized = True
        index = min(queue)
        queue.remove(index)
        label = self._label(labels, index)
        while True:
            attempts[index] += 1
            self.total_attempts += 1
            try:
                t0 = wall_clock()
                with maybe_span(self.spans, "supervisor.item"):
                    ready[index] = fn(work[index])
                self._observe_item_wall(wall_clock() - t0)
                return
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempts[index] >= self.policy.max_attempts:
                    # raises under on_poison='raise'
                    self._quarantine(index, label, attempts[index], error)
                    skipped.add(index)
                    return
                self._retry(index, label, attempts[index], error)

    # -- pool rungs ----------------------------------------------------------

    def _submit(self, fn, work, attempts, pending, index) -> bool:
        """Start one item on the pool; False if the pool is broken."""
        attempts[index] += 1
        self.total_attempts += 1
        try:
            future = self._ensure_pool().submit(fn, work[index])
        except (BrokenProcessPool, RuntimeError):
            attempts[index] -= 1  # the start never happened
            self.total_attempts -= 1
            return False
        pending[index] = (future, wall_clock())
        return True

    def _requeue_pending(self, pending, queue, attempts) -> None:
        """Push every in-flight item back onto the queue (lowest first) —
        the pool they were running on is gone."""
        for index in sorted(pending, reverse=True):
            self._emit(
                "requeue", index=index, attempt=attempts[index],
                detail="pool lost while item was in flight",
            )
            queue.appendleft(index)
        pending.clear()

    def _step_pool(
        self, fn, work, labels, attempts, queue, pending, ready, skipped,
        window, *, already_buffered,
    ) -> None:
        # fill the submission window
        while queue and len(pending) + already_buffered < window:
            index = queue.popleft()
            if not self._submit(fn, work, attempts, pending, index):
                queue.appendleft(index)
                self._degrade(
                    "pool rejected new work",
                    index=index, attempt=attempts[index],
                )
                self._requeue_pending(pending, queue, attempts)
                return
        if not pending:
            return
        timeout = None
        if self.policy.timeout_s is not None:
            oldest = min(t0 for _f, t0 in pending.values())
            timeout = max(
                0.0, oldest + self.policy.timeout_s - wall_clock()
            ) + 0.02
        with maybe_span(self.spans, "supervisor.wait"):
            wait(
                [f for f, _t0 in pending.values()],
                timeout=timeout, return_when=FIRST_COMPLETED,
            )
        for index in [i for i, (f, _t0) in pending.items() if f.done()]:
            future, t0 = pending.pop(index)
            label = self._label(labels, index)
            try:
                ready[index] = future.result()
                self._observe_item_wall(wall_clock() - t0)
            except BrokenProcessPool as exc:
                # a worker died hard (kill -9 / os._exit): the whole pool
                # is unusable and *every* in-flight item is collateral
                self._degrade(
                    f"worker process died: {exc}",
                    index=index, attempt=attempts[index],
                )
                queue.appendleft(index)
                self._requeue_pending(pending, queue, attempts)
                return
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempts[index] >= self.policy.max_attempts:
                    # raises under on_poison='raise'
                    self._quarantine(index, label, attempts[index], error)
                    skipped.add(index)
                else:
                    self._retry(index, label, attempts[index], error)
                    queue.appendleft(index)
        # deadline sweep: anything still pending past its budget
        if self.policy.timeout_s is None or not pending:
            return
        now = wall_clock()
        expired = [
            i for i, (_f, t0) in pending.items()
            if now - t0 > self.policy.timeout_s
        ]
        if not expired:
            return
        blame = min(expired)
        self._emit(
            "timeout", index=blame, attempt=attempts[blame],
            label=self._label(labels, blame),
            detail=f"no result after {self.policy.timeout_s:g}s; "
            "killing the pool",
        )
        self._degrade(
            "deadline expired", index=blame, attempt=attempts[blame]
        )
        for index in sorted(pending, reverse=True):
            queue.appendleft(index)
        pending.clear()
        exhausted = [
            i for i in expired if attempts[i] >= self.policy.max_attempts
        ]
        for index in exhausted:
            label = self._label(labels, index)
            queue.remove(index)
            # raises under on_poison='raise'
            self._quarantine(
                index, label, attempts[index],
                f"timed out after {self.policy.timeout_s:g}s on every attempt",
            )
            skipped.add(index)
