"""Pluggable execution backends for the sweep fabric.

Three backends share one interface — ``map_ordered(fn, items, labels)``
yielding results in item order, plus ``events``/``summary()`` for the
run-store manifest:

* ``inproc`` — the :class:`~repro.fabric.supervisor.Supervisor` pinned to
  its serial rung: in-process execution with retries and quarantine, the
  reference stream every other backend must reproduce bit-for-bit.
* ``pool`` — the supervisor over a process pool: deadlines, broken-pool
  degradation, the full ladder.
* ``local-cluster`` — a shared-filesystem file queue.  The item index
  space is sharded into contiguous ranges; each shard is a file in
  ``shards/`` that a worker *claims* by ``os.rename`` into ``claims/``
  (atomic on POSIX — exactly one winner, no locks) and completes by
  atomically writing a checksummed result file into ``results/``.  The
  driver re-enqueues shards whose results are missing (worker died
  mid-shard) or fail their checksum (corrupted payload) for a bounded
  number of rounds, then quarantines survivors.  Because completed shard
  results live on disk keyed by range, a killed driver *resumes* by
  validating what exists and recomputing only the rest.

The cluster layout under ``root``::

    queue.json                     # binds the queue to one sweep's meta
    shards/shard-000016-000024.json   # claimable work (contiguous range)
    claims/shard-000016-000024.json   # claimed, being computed
    results/shard-000016-000024.json  # checksummed JSON payload
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any

from repro.fabric.deadletter import DeadLetterLedger
from repro.fabric.supervisor import (
    Supervisor,
    SupervisorPolicy,
    emit_supervisor_event,
)
from repro.errors import ConfigError, PoisonItemError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer

BACKENDS = ("inproc", "pool", "local-cluster")

QUEUE_NAME = "queue.json"
QUEUE_FORMAT = "repro-fabric-queue"
RESULT_FORMAT = "repro-fabric-shard-result"
VERSION = 1

#: default items per local-cluster shard.
DEFAULT_SHARD_SIZE = 8


class SupervisedBackend:
    """``inproc`` / ``pool``: a thin veneer over one Supervisor."""

    def __init__(self, name: str, supervisor: Supervisor) -> None:
        self.name = name
        self.supervisor = supervisor

    @property
    def events(self) -> list[dict]:
        return self.supervisor.events

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        labels: Sequence[str] | None = None,
    ) -> Iterator[Any]:
        return self.supervisor.map_supervised(fn, items, labels=labels)

    def summary(self) -> dict:
        return {"backend": self.name, **self.supervisor.summary()}


# -- local-cluster plumbing (module level: it pickles into workers) ----------


def _shard_name(start: int, stop: int) -> str:
    return f"shard-{start:06d}-{stop:06d}.json"


def _parse_shard_name(name: str) -> tuple[int, int]:
    stem = name.removeprefix("shard-").removesuffix(".json")
    start_text, stop_text = stem.split("-")
    return int(start_text), int(stop_text)


def _payload_checksum(payload: list) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _atomic_json(path: Path, payload: dict) -> None:
    # plain tmp+rename (not the fsync-everything helper): shard results are
    # re-derivable, so losing one to a power cut only costs a recompute
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _claim_next_shard(root: Path) -> tuple[int, int] | None:
    """Atomically claim the lowest-range available shard (None = drained)."""
    shards = sorted(p.name for p in (root / "shards").glob("shard-*.json"))
    for name in shards:
        try:
            os.rename(root / "shards" / name, root / "claims" / name)
        except (FileNotFoundError, OSError):
            continue  # another worker won the rename race
        return _parse_shard_name(name)
    return None


def _write_shard_result(
    root: Path, start: int, stop: int, payload: list
) -> None:
    _atomic_json(
        root / "results" / _shard_name(start, stop),
        {
            "format": RESULT_FORMAT,
            "version": VERSION,
            "start": start,
            "stop": stop,
            "payload": payload,
            "checksum": _payload_checksum(payload),
        },
    )


def read_shard_result(root: Path, start: int, stop: int) -> list | None:
    """The validated payload of one shard result, or None if the file is
    missing, torn, or fails its checksum."""
    path = root / "results" / _shard_name(start, stop)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("format") != RESULT_FORMAT
        or payload.get("version") != VERSION
        or payload.get("start") != start
        or payload.get("stop") != stop
        or not isinstance(payload.get("payload"), list)
        or len(payload["payload"]) != stop - start
        or payload.get("checksum") != _payload_checksum(payload["payload"])
    ):
        return None
    return payload["payload"]


def _cluster_worker(
    root: str,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    encode: Callable[[Any], Any] | None,
    initializer: Callable[..., None] | None,
    initargs: tuple,
) -> int:
    """One queue consumer: claim shards until the queue drains.

    Runs in a worker process; everything it needs arrives pickled.
    Returns the number of shards completed.
    """
    if initializer is not None:
        initializer(*initargs)
    rootp = Path(root)
    done = 0
    while True:
        claim = _claim_next_shard(rootp)
        if claim is None:
            return done
        start, stop = claim
        payload = []
        for i in range(start, stop):
            result = fn(items[i])
            payload.append(encode(result) if encode is not None else result)
        _write_shard_result(rootp, start, stop, payload)
        (rootp / "claims" / _shard_name(start, stop)).unlink(missing_ok=True)
        done += 1


class LocalClusterBackend:
    """File-queue execution over a shared directory (see module docs)."""

    def __init__(
        self,
        root: str | Path,
        *,
        jobs: int = 2,
        shard_size: int = DEFAULT_SHARD_SIZE,
        policy: SupervisorPolicy | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        deadletter: DeadLetterLedger | None = None,
        sweep: str = "",
    ) -> None:
        if shard_size < 1:
            raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
        if jobs < 1:
            raise ConfigError(f"local-cluster jobs must be >= 1, got {jobs}")
        self.name = "local-cluster"
        self.root = Path(root)
        self.jobs = jobs
        self.shard_size = shard_size
        self.policy = policy or SupervisorPolicy()
        self._initializer = initializer
        self._initargs = initargs
        self._encode = encode
        self._decode = decode
        self.tracer = tracer
        self.metrics = metrics
        self.deadletter = deadletter
        self.sweep = sweep
        self.events: list[dict] = []
        self.quarantined_shards: list[tuple[int, int]] = []
        self.rounds_used = 0

    def _emit(self, kind: str, *, index: int, attempt: int,
              label: str | None = None, detail: str | None = None) -> None:
        emit_supervisor_event(
            self.events, self.tracer, self.metrics,
            kind=kind, index=index, attempt=attempt, label=label,
            rung=self.name, detail=detail,
        )

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return {
            "backend": self.name,
            "actions": counts,
            "rounds": self.rounds_used,
            "shard_size": self.shard_size,
            "quarantined_shards": [list(s) for s in self.quarantined_shards],
        }

    # -- queue management ----------------------------------------------------

    def _shards(self, total: int) -> list[tuple[int, int]]:
        return [
            (start, min(start + self.shard_size, total))
            for start in range(0, total, self.shard_size)
        ]

    def _prepare_queue(self, total: int, meta: dict) -> None:
        """Create (or validate, on resume) the queue binding file."""
        for sub in ("shards", "claims", "results"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        binding = {
            "format": QUEUE_FORMAT,
            "version": VERSION,
            "total": total,
            "shard_size": self.shard_size,
            "meta": meta,
        }
        queue_path = self.root / QUEUE_NAME
        if queue_path.is_file():
            try:
                existing = json.loads(queue_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                existing = None
            if existing != binding:
                raise ConfigError(
                    f"{queue_path}: queue belongs to a different sweep; "
                    "refusing to mix shard results (use a fresh --cluster-root)"
                )
        else:
            _atomic_json(queue_path, binding)

    def _reconcile(self, shards: list[tuple[int, int]], round_no: int) -> int:
        """Re-enqueue every shard without a valid result; count them."""
        missing = 0
        for start, stop in shards:
            if read_shard_result(self.root, start, stop) is not None:
                continue
            missing += 1
            name = _shard_name(start, stop)
            result = self.root / "results" / name
            if result.exists():
                result.unlink()
                self._emit(
                    "retry", index=start, attempt=round_no,
                    label=f"shard {start}:{stop}",
                    detail="corrupt shard result discarded; recomputing",
                )
            claim = self.root / "claims" / name
            shard = self.root / "shards" / name
            if claim.exists():
                # a worker died holding the claim; put it back
                os.replace(claim, shard)
                if round_no > 0:
                    self._emit(
                        "requeue", index=start, attempt=round_no,
                        label=f"shard {start}:{stop}",
                        detail="reclaimed from a dead worker",
                    )
            elif not shard.exists():
                _atomic_json(shard, {"start": start, "stop": stop})
        return missing

    def _run_round(self, fn: Callable[[Any], Any], work: Sequence[Any]) -> None:
        """Launch ``jobs`` queue consumers and wait for the queue to drain
        (worker crashes are tolerated — the next reconcile pass re-enqueues
        whatever they dropped)."""
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            futures = [
                pool.submit(
                    _cluster_worker, str(self.root), fn, work,
                    self._encode, self._initializer, self._initargs,
                )
                for _ in range(self.jobs)
            ]
            for i, future in enumerate(futures):
                try:
                    future.result()
                except BrokenProcessPool as exc:
                    self._emit(
                        "degrade", index=-1, attempt=self.rounds_used,
                        detail=f"cluster worker pool broke: {exc}",
                    )
                    break
                except Exception as exc:
                    self._emit(
                        "retry", index=-1, attempt=self.rounds_used,
                        detail=f"cluster worker #{i} crashed: "
                        f"{type(exc).__name__}: {exc}",
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- the ordered map -----------------------------------------------------

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        labels: Sequence[str] | None = None,
        meta: dict | None = None,
    ) -> Iterator[Any]:
        """Compute every item via the file queue, yielding in item order.

        Existing valid shard results under ``root`` are reused (that *is*
        the resume path); the rest are computed in up to
        ``policy.max_attempts`` reconcile/run rounds.
        """
        work = list(items)
        total = len(work)
        self._prepare_queue(total, meta or {})
        shards = self._shards(total)
        for round_no in range(self.policy.max_attempts):
            missing = self._reconcile(shards, round_no)
            if missing == 0:
                break
            self.rounds_used = round_no + 1
            self._run_round(fn, work)
        leftovers = [
            (start, stop) for start, stop in shards
            if read_shard_result(self.root, start, stop) is None
        ]
        for start, stop in leftovers:
            label = f"shard {start}:{stop}"
            if self.deadletter is not None:
                self.deadletter.record(
                    index=start, label=label,
                    attempts=self.policy.max_attempts,
                    error="no valid shard result after every round",
                    sweep=self.sweep,
                )
            self._emit(
                "quarantine", index=start,
                attempt=self.policy.max_attempts, label=label,
                detail="no valid shard result after every round",
            )
            self.quarantined_shards.append((start, stop))
            if self.policy.on_poison == "raise":
                raise PoisonItemError(
                    f"{label} failed all {self.policy.max_attempts} rounds",
                    index=start, label=label,
                    attempts=self.policy.max_attempts,
                )
        dead = {
            i for start, stop in self.quarantined_shards
            for i in range(start, stop)
        }
        from repro.fabric.supervisor import QUARANTINED

        for start, stop in shards:
            if (start, stop) in self.quarantined_shards:
                for _ in range(start, stop):
                    yield QUARANTINED
                continue
            payload = read_shard_result(self.root, start, stop)
            for encoded in payload:
                yield (
                    self._decode(encoded)
                    if self._decode is not None
                    else encoded
                )
        del dead


def make_backend(
    kind: str,
    *,
    jobs: int | None = None,
    policy: SupervisorPolicy | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    deadletter: DeadLetterLedger | None = None,
    sweep: str = "",
    cluster_root: str | Path | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    encode: Callable[[Any], Any] | None = None,
    decode: Callable[[Any], Any] | None = None,
) -> SupervisedBackend | LocalClusterBackend:
    """Construct one execution backend by name (see :data:`BACKENDS`)."""
    if kind == "local-cluster":
        if cluster_root is None:
            raise ConfigError(
                "the local-cluster backend needs a cluster root directory"
            )
        return LocalClusterBackend(
            cluster_root,
            jobs=jobs if jobs else 2,
            shard_size=shard_size,
            policy=policy,
            initializer=initializer,
            initargs=initargs,
            encode=encode,
            decode=decode,
            tracer=tracer,
            metrics=metrics,
            deadletter=deadletter,
            sweep=sweep,
        )
    if kind in ("inproc", "pool"):
        supervisor = Supervisor(
            1 if kind == "inproc" else (jobs or 2),
            policy=policy,
            initializer=initializer,
            initargs=initargs,
            tracer=tracer,
            metrics=metrics,
            deadletter=deadletter,
            sweep=sweep,
        )
        return SupervisedBackend(kind, supervisor)
    raise ConfigError(f"unknown fabric backend {kind!r} (choose: {BACKENDS})")
