"""The dead-letter ledger: where poison work items go to be explained.

When the supervisor gives up on a work item — every permitted retry
crashed — the item is *quarantined*: its identity, label, attempt count
and last error are appended to a JSON-lines ledger (default
``.repro-runs/deadletter.jsonl``) before the sweep either aborts or skips
past it.  The ledger is the forensic record: after a million-point sweep,
``repro chaos``/operators read it to see exactly which items never
produced a result and why.

Design choices:

* **Append-only JSONL** — one entry per line, flushed+fsynced per append,
  so a crash mid-append loses at most the entry being written and never
  damages earlier entries.
* **Torn-tail tolerant reads** — a truncated final line (the one write a
  crash can tear) is skipped on read instead of poisoning the whole
  ledger; damage anywhere else raises, because it means something other
  than a torn append happened to the file.
* **No timestamps** — entries carry only deterministic identity fields,
  so a chaos run's ledger is itself reproducible under a fixed seed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ReproError

#: default ledger location, beside the run store's manifests.
DEFAULT_DEADLETTER = ".repro-runs/deadletter.jsonl"

FORMAT = "repro-deadletter"
VERSION = 1


class DeadLetterError(ReproError):
    """The ledger file is damaged somewhere other than a torn tail."""


class DeadLetterLedger:
    """Append-only quarantine record for poison work items."""

    def __init__(self, path: str | Path = DEFAULT_DEADLETTER) -> None:
        self.path = Path(path)

    def record(
        self,
        *,
        index: int,
        label: str,
        attempts: int,
        error: str,
        sweep: str = "",
    ) -> dict:
        """Durably append one quarantined item; returns the entry."""
        entry = {
            "format": FORMAT,
            "version": VERSION,
            "sweep": sweep,
            "index": index,
            "label": label,
            "attempts": attempts,
            "error": error,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return entry

    def entries(self) -> list[dict]:
        """Every intact entry, oldest first (missing file = empty ledger).

        A torn *final* line — the only damage an interrupted append can
        cause — is silently dropped; torn or malformed content anywhere
        else raises :class:`DeadLetterError`.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        lines = text.split("\n")
        # a complete ledger ends with a newline, so the final split
        # element is empty; anything else is the torn tail of an
        # interrupted append
        lines = lines[:-1] if lines else lines
        entries = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DeadLetterError(
                    f"{self.path}:{lineno}: damaged ledger entry: {exc}"
                ) from exc
            if not isinstance(entry, dict) or entry.get("format") != FORMAT:
                raise DeadLetterError(
                    f"{self.path}:{lineno}: not a {FORMAT} entry"
                )
            entries.append(entry)
        return entries

    def __len__(self) -> int:
        return len(self.entries())
