"""Chaos injection for the sweep fabric: break it on purpose, on a seed.

The harness wraps a pure worker function so that chosen items misbehave
the first time they run:

* **crash** — raise :class:`InjectedWorkerCrash` (a survivable worker
  exception: the supervisor retries the item);
* **kill** — ``os._exit`` the worker process (a hard death: the pool
  breaks, the supervisor degrades a ladder rung and requeues the
  in-flight items);
* **hang** — sleep far past the supervisor's deadline (the pool is
  killed and the item resubmitted);
* **poison** — crash on *every* attempt (the item is quarantined into
  the dead-letter ledger).

"First time" must hold across process boundaries *and* across a
killed-and-resumed sweep, so one-shot faults are armed with marker files
in a shared state directory: the first worker to reach the fault creates
the marker with ``O_EXCL`` (atomic on POSIX) and misbehaves; every later
attempt sees the marker and computes normally.  Poison faults take no
marker — they fire every time.

Items are addressed by *label* (their ``str()`` form), not by position,
so the same plan means the same mixes before and after a resume.  Which
labels get faulted is drawn from the same ``rng_stream`` seeding
discipline as :mod:`repro.resilience.faults`, so a chaos run is itself
an experiment: replaying the seed replays the failure schedule.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigError, ReproError
from repro.util.rng import rng_stream


class InjectedWorkerCrash(RuntimeError):
    """The exception an injected ``crash``/``poison`` fault raises."""


class ChaosAbort(ReproError):
    """The simulated ``kill -9`` of the *driver*: raised mid-sweep after a
    configured number of completed items, leaving only the checkpoint."""


def pick_labels(
    labels: Sequence[str], count: int, seed: int, kind: str
) -> tuple[str, ...]:
    """Choose ``count`` distinct victim labels, seed-deterministically.

    The stream is keyed by the fault kind so ``--kill 2 --hang 1`` picks
    independent victims for each fault class.
    """
    if count <= 0:
        return ()
    if count > len(labels):
        raise ConfigError(
            f"cannot pick {count} {kind} victims from {len(labels)} items"
        )
    rng = rng_stream(seed, "chaos", kind)
    picks = rng.choice(len(labels), size=count, replace=False)
    return tuple(labels[i] for i in sorted(int(p) for p in picks))


@dataclass(frozen=True)
class ChaosPlan:
    """Which labels misbehave, how, and where the one-shot markers live."""

    state_dir: str
    crash_labels: tuple[str, ...] = ()
    kill_labels: tuple[str, ...] = ()
    hang_labels: tuple[str, ...] = ()
    poison_labels: tuple[str, ...] = ()
    #: how long an injected hang sleeps (pick >> the supervisor deadline).
    hang_s: float = 60.0
    #: driver-side abort once this many items have completed (None = never).
    abort_after: int | None = None

    def wrap(self, fn: Callable[[Any], Any]) -> "ChaosWrapped":
        """The worker function with this plan's faults injected."""
        return ChaosWrapped(fn, self)

    def describe(self) -> dict:
        """Manifest-ready digest of the injected fault schedule."""
        return {
            "crash": list(self.crash_labels),
            "kill": list(self.kill_labels),
            "hang": list(self.hang_labels),
            "poison": list(self.poison_labels),
            "hang_s": self.hang_s,
            "abort_after": self.abort_after,
        }


@dataclass(frozen=True)
class ChaosWrapped:
    """Picklable chaos-injecting wrapper around a pure worker function."""

    fn: Callable[[Any], Any]
    plan: ChaosPlan

    def _first_time(self, kind: str, label: str) -> bool:
        """True exactly once per (kind, label), machine-wide: marker-file
        claim with O_EXCL in the plan's shared state directory."""
        digest = hashlib.sha256(label.encode()).hexdigest()[:24]
        marker = Path(self.plan.state_dir) / f"{kind}-{digest}"
        marker.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def __call__(self, item: Any) -> Any:
        label = str(item)
        if label in self.plan.poison_labels:
            raise InjectedWorkerCrash(f"injected poison fault on {label}")
        if label in self.plan.kill_labels and self._first_time("kill", label):
            os._exit(13)  # simulate kill -9 of the worker process
        if label in self.plan.crash_labels and self._first_time(
            "crash", label
        ):
            raise InjectedWorkerCrash(f"injected crash on first run of {label}")
        if label in self.plan.hang_labels and self._first_time("hang", label):
            time.sleep(self.plan.hang_s)
        return self.fn(item)


def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Chop a file mid-byte (simulating torn storage); returns bytes kept.

    Used by ``repro chaos`` against checkpoints — the resume must then
    fall back to the ``.bak`` generation — and by tests against traces.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep
