"""The fault-tolerant sweep fabric: supervised execution over the
parallel layer.

``repro.parallel`` fans pure work items out over processes; this package
wraps that fan-out in a *supervision contract* — bounded retries with
seeded backoff, wall deadlines, a pool → fresh-pool → serial degradation
ladder, poison-item quarantine into a dead-letter ledger — plus pluggable
backends (in-process, process pool, file-queue local cluster) and a chaos
harness that injects worker crashes, kills, hangs, and poison items on a
seed.  The design contract throughout: recovery explains *how* a run
survived (advisory telemetry, run-store manifest) and never changes
*what* it computed (canonical traces stay bit-identical).
"""

from repro.fabric.backends import (
    BACKENDS,
    DEFAULT_SHARD_SIZE,
    LocalClusterBackend,
    SupervisedBackend,
    make_backend,
)
from repro.fabric.chaos import (
    ChaosAbort,
    ChaosPlan,
    ChaosWrapped,
    InjectedWorkerCrash,
    pick_labels,
    truncate_file,
)
from repro.fabric.deadletter import (
    DEFAULT_DEADLETTER,
    DeadLetterError,
    DeadLetterLedger,
)
from repro.fabric.supervisor import (
    QUARANTINED,
    RUNGS,
    Supervisor,
    SupervisorPolicy,
)
from repro.fabric.sweep import FabricRun, run_fabric_monte_carlo

__all__ = [
    "BACKENDS",
    "DEFAULT_DEADLETTER",
    "DEFAULT_SHARD_SIZE",
    "ChaosAbort",
    "ChaosPlan",
    "ChaosWrapped",
    "DeadLetterError",
    "DeadLetterLedger",
    "FabricRun",
    "InjectedWorkerCrash",
    "LocalClusterBackend",
    "QUARANTINED",
    "RUNGS",
    "SupervisedBackend",
    "Supervisor",
    "SupervisorPolicy",
    "make_backend",
    "pick_labels",
    "run_fabric_monte_carlo",
    "truncate_file",
]
