"""The supervised Monte Carlo sweep: the fabric driving the Fig. 7 runner.

:func:`run_fabric_monte_carlo` computes exactly the points of
:func:`repro.analysis.montecarlo.run_monte_carlo` — same mixes from the
same seed, same per-mix worker, same checkpoint ``kind`` and metadata, so
the two runners' snapshots are interchangeable — but executes them
through a fabric backend (:mod:`repro.fabric.backends`) under a
:class:`~repro.fabric.supervisor.SupervisorPolicy`.

The telemetry emission scheme is chosen so that the *canonical* stream is
a pure function of (num_mixes, seed, config):

* ``run_meta`` carries a detail without the restored-point count, so a
  resumed run and a clean run describe themselves identically;
* checkpoint-restored points are *re-emitted* as ``mc_point`` events in
  their original slots — the trace always narrates the whole sweep;
* ``progress`` heartbeats fire on absolute position (``done``/``total``
  over the full sweep, not the remaining work), so the cadence survives
  a resume;
* every supervision action is an *advisory* ``supervisor`` event, dropped
  by :func:`repro.telemetry.events.canonical_events`.

Together these give the fabric's headline guarantee: kill a chaos sweep
mid-flight, resume it, and ``repro diff`` against an uninterrupted serial
run reports bit-identical canonical traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.montecarlo import (
    HEARTBEAT_FRACTION,
    MonteCarloPoint,
    MonteCarloResult,
    _montecarlo_init,
    _montecarlo_point,
    _restore_points,
    collect_profiles,
)
from repro.config import SystemConfig, scaled_config
from repro.fabric.backends import (
    DEFAULT_SHARD_SIZE,
    LocalClusterBackend,
    SupervisedBackend,
    make_backend,
)
from repro.fabric.chaos import ChaosAbort, ChaosPlan
from repro.fabric.deadletter import DeadLetterLedger
from repro.fabric.supervisor import QUARANTINED, SupervisorPolicy
from repro.parallel.profile_cache import ProfileCache
from repro.profiling.miss_curve import MissCurve
from repro.resilience.checkpoint import SweepCheckpoint
from repro.errors import ConfigError
from repro.partitioning.registry import analytic_policies, get_policy
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timing import wall_clock
from repro.telemetry.tracer import Tracer
from repro.workloads.mixes import random_mixes


def _encode_point(point: MonteCarloPoint) -> dict:
    """JSON-safe shard payload entry (module level: pickles to workers)."""
    return point.to_dict()


def _decode_point(data: dict) -> MonteCarloPoint:
    return MonteCarloPoint.from_dict(data)


@dataclass
class FabricRun:
    """One supervised sweep: the science plus the survival story."""

    result: MonteCarloResult
    backend: SupervisedBackend | LocalClusterBackend

    def supervisor_summary(self) -> dict:
        """Manifest-ready recovery digest (see ``RunStore.archive``)."""
        return self.backend.summary()


def run_fabric_monte_carlo(
    num_mixes: int = 1000,
    config: SystemConfig | None = None,
    *,
    curves: dict[str, MissCurve] | None = None,
    seed: int = 2009,
    profile_accesses: int = 60_000,
    min_ways: int = 1,
    checkpoint_path: str | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
    backend: str = "inproc",
    jobs: int | None = None,
    policy: SupervisorPolicy | None = None,
    chaos: ChaosPlan | None = None,
    profile_cache: ProfileCache | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    deadletter: DeadLetterLedger | None = None,
    cluster_root: str | Path | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    policies: tuple[str, ...] | None = None,
) -> FabricRun:
    """The paper's Monte Carlo comparison under fabric supervision.

    Point-for-point equal to :func:`~repro.analysis.montecarlo.run_monte_carlo`
    under the same ``(num_mixes, seed, config)`` — including its checkpoint
    format, so sweeps may be started by one runner and resumed by the
    other.  ``chaos`` injects the given fault plan into the worker function
    (and, via ``abort_after``, simulates killing the driver mid-sweep).
    ``policies`` ranks extra registry policies per mix, exactly as in the
    legacy runner (same checkpoint metadata, same per-point payload).
    """
    policy = policy or SupervisorPolicy()
    if checkpoint_path is not None and policy.on_poison != "raise":
        raise ConfigError(
            "a checkpointed sweep needs on_poison='raise': skipping an item "
            "would break the snapshot's contiguous-prefix invariant"
        )
    if checkpoint_path is not None and backend == "local-cluster":
        raise ConfigError(
            "the local-cluster backend resumes from its own shard results; "
            "run it against the same cluster root instead of a checkpoint"
        )
    cfg = config or scaled_config()
    if curves is None:
        curves = collect_profiles(
            config=cfg, accesses=profile_accesses, cache=profile_cache
        )
    meta = {
        "seed": seed,
        "num_cores": cfg.num_cores,
        "num_banks": cfg.l2.num_banks,
        "bank_ways": cfg.l2.bank_ways,
        "min_ways": min_ways,
        "profile_accesses": profile_accesses,
    }
    if policies:
        policies = tuple(policies)
        ranked = set(analytic_policies())
        for name in policies:
            get_policy(name)
            if name not in ranked:
                raise ConfigError(
                    f"policy {name!r} cannot be ranked analytically "
                    f"(rankable: {', '.join(sorted(ranked))})"
                )
        meta["policies"] = list(policies)
    else:
        policies = None
    ckpt = SweepCheckpoint(
        checkpoint_path, "monte-carlo", meta,
        every=checkpoint_every or cfg.resilience.checkpoint_every,
        resume=resume,
    )
    result = MonteCarloResult(points=_restore_points(ckpt.completed, num_mixes))
    mixes = random_mixes(num_mixes, cfg.num_cores, seed=seed)
    if tracer is not None:
        # resume-stable: no restored count, unlike the legacy runner
        tracer.emit_run_meta(
            "monte-carlo", detail=f"{num_mixes} mixes, seed {seed}"
        )
    exec_backend = make_backend(
        backend,
        jobs=jobs,
        policy=policy,
        initializer=_montecarlo_init,
        initargs=(curves, cfg, min_ways, policies),
        tracer=tracer,
        metrics=metrics,
        deadletter=deadletter,
        sweep=f"monte-carlo seed {seed}",
        cluster_root=cluster_root,
        shard_size=shard_size,
        encode=_encode_point,
        decode=_decode_point,
    )
    heartbeat = max(1, num_mixes // HEARTBEAT_FRACTION)
    start = wall_clock() if tracer is not None else 0.0

    def note(point: MonteCarloPoint, index: int) -> None:
        if tracer is None:
            return
        extra = (
            {"policies": point.policy_misses}
            if point.policy_misses is not None
            else {}
        )
        tracer.emit(
            "mc_point",
            index=index,
            mix=list(point.mix.names),
            equal_misses=point.equal_misses,
            unrestricted_misses=point.unrestricted_misses,
            bank_aware_misses=point.bank_aware_misses,
            ways=point.bank_aware_ways,
            **extra,
        )
        done = index + 1
        if done % heartbeat == 0 or done == num_mixes:
            tracer.emit(
                "progress", done=done, total=num_mixes,
                source="montecarlo", wall_s=wall_clock() - start,
            )

    # restored points re-enter the trace in their original slots, so the
    # canonical stream of a resumed sweep equals an uninterrupted one
    for index, point in enumerate(result.points):
        note(point, index)

    fn = chaos.wrap(_montecarlo_point) if chaos is not None else _montecarlo_point
    abort_after = chaos.abort_after if chaos is not None else None
    todo = mixes[len(result.points):]
    labels = [str(m) for m in todo]
    try:
        if isinstance(exec_backend, LocalClusterBackend):
            stream = exec_backend.map_ordered(
                fn, todo, labels=labels, meta=meta
            )
        else:
            stream = exec_backend.map_ordered(fn, todo, labels=labels)
        for point in stream:
            if point is QUARANTINED:
                continue  # only reachable under on_poison='skip'
            note(point, len(result.points))
            result.points.append(point)
            ckpt.record(point.to_dict())
            if abort_after is not None and len(result.points) == abort_after:
                # the simulated driver kill: leave only the checkpoint
                raise ChaosAbort(
                    f"injected driver abort after {abort_after} points"
                )
    finally:
        ckpt.save()  # snapshot on kill/exception too, not just at the end
    return FabricRun(result=result, backend=exec_backend)
