"""A single set-associative cache set with vertical way partitioning.

The paper enforces partitions inside each bank with a *modified LRU*: every
way of the set belongs to one or more cores, lookups may hit in any way, but
on a miss the replacement victim is chosen only among the ways owned by the
requesting core (Section III.B).  :class:`CacheSet` implements exactly that:
``insert`` takes the candidate way list supplied by the bank's partition
state, so the same code serves shared, private and partially-shared sets.

True LRU (the policy the MSA machinery assumes) is inlined as integer
stamps for speed — this class sits on the hottest path of the simulator;
the pluggable policies of :mod:`repro.cache.replacement` are used when a
non-LRU set is requested.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.cache.replacement import make_policy
from repro.errors import ConfigError, SimulationInvariantError


class Eviction(NamedTuple):
    """A line pushed out of a set."""

    tag: int
    dirty: bool
    owner: int  #: core that allocated the line (-1 if unknown)


class CacheSet:
    """One cache set: ``ways`` lines identified by integer tags."""

    __slots__ = (
        "ways",
        "_tags",
        "_dirty",
        "_owner",
        "_map",
        "_stamps",
        "_clock",
        "policy",
    )

    def __init__(self, ways: int, policy: str = "lru") -> None:
        if ways < 1:
            raise ConfigError("a set needs at least one way")
        self.ways = ways
        self._tags: list[int | None] = [None] * ways
        self._dirty = [False] * ways
        self._owner = [-1] * ways
        self._map: dict[int, int] = {}
        # inlined LRU state (stamp 0 == never touched)
        self._stamps = [0] * ways
        self._clock = 0
        self.policy = None if policy == "lru" else make_policy(policy, ways)

    # -- queries ------------------------------------------------------------

    def probe(self, tag: int) -> int | None:
        """Way holding ``tag`` without updating recency (directory lookup)."""
        return self._map.get(tag)

    def lookup(self, tag: int, *, is_write: bool = False) -> int | None:
        """Reference ``tag``: returns its way on a hit (updating recency and
        the dirty bit), or ``None`` on a miss."""
        way = self._map.get(tag)
        if way is None:
            return None
        self._clock += 1
        self._stamps[way] = self._clock
        if self.policy is not None:
            self.policy.touch(way)
        if is_write:
            self._dirty[way] = True
        return way

    def occupancy(self) -> int:
        return len(self._map)

    def resident_tags(self) -> list[int]:
        return list(self._map)

    def owner_of(self, tag: int) -> int:
        way = self._map.get(tag)
        if way is None:
            raise KeyError(f"tag {tag} not resident")
        return self._owner[way]

    def ways_of_core(self, core: int) -> list[int]:
        """Ways currently holding lines allocated by ``core``."""
        return [w for w in range(self.ways) if self._owner[w] == core]

    def recency_order(self) -> list[int]:
        """Ways ordered MRU -> LRU (tests and the MSA reference)."""
        if self.policy is not None:
            return self.policy.recency_order()
        return sorted(range(self.ways), key=lambda w: -self._stamps[w])

    # -- updates ------------------------------------------------------------

    def insert(
        self,
        tag: int,
        core: int,
        candidates: tuple[int, ...],
        *,
        dirty: bool = False,
    ) -> Eviction | None:
        """Fill ``tag`` for ``core`` into one of ``candidates`` ways.

        An empty candidate way is preferred; otherwise the replacement policy
        (LRU by default) chooses the victim among candidates.  Returns the
        eviction (if any).
        """
        if tag in self._map:
            raise ConfigError(f"tag {tag} already resident; use lookup()")
        if not candidates:
            raise ConfigError("insert() needs at least one candidate way")
        tags = self._tags
        way = None
        best_stamp = None
        for cand in candidates:
            if tags[cand] is None:
                way = cand
                best_stamp = None
                break
            stamp = self._stamps[cand]
            if best_stamp is None or stamp < best_stamp:
                best_stamp = stamp
                way = cand
        if way is None:
            raise SimulationInvariantError(
                f"replacement selected no victim among candidate ways "
                f"{candidates} (non-empty by precondition)"
            )
        if self.policy is not None and tags[way] is not None:
            way = self.policy.victim(candidates)
        evicted = None
        old = tags[way]
        if old is not None:
            evicted = Eviction(old, self._dirty[way], self._owner[way])
            del self._map[old]
        tags[way] = tag
        self._dirty[way] = dirty
        self._owner[way] = core
        self._map[tag] = way
        self._clock += 1
        self._stamps[way] = self._clock
        if self.policy is not None:
            self.policy.touch(way)
        return evicted

    def invalidate(self, tag: int) -> Eviction | None:
        """Remove ``tag`` if resident, returning its state."""
        way = self._map.pop(tag, None)
        if way is None:
            return None
        ev = Eviction(tag, self._dirty[way], self._owner[way])
        self._tags[way] = None
        self._dirty[way] = False
        self._owner[way] = -1
        self._stamps[way] = 0
        if self.policy is not None:
            self.policy.invalidate(way)
        return ev

    def set_dirty(self, tag: int, dirty: bool = True) -> None:
        way = self._map.get(tag)
        if way is None:
            raise KeyError(f"tag {tag} not resident")
        self._dirty[way] = dirty
