"""A physical L2 cache bank with per-way core ownership.

The paper's machine has 16 such banks (1 MB, 8-way, 2048 sets each).  To
reduce design complexity "all of the sets in a cache bank are vertically
partitioned with the same cache-ways assignment" (Section III.B) — ownership
is therefore bank-level state here, not per-set state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.cacheset import CacheSet, Eviction

from repro.errors import ConfigError


@dataclass
class BankStats:
    """Per-core hit/miss accounting for one bank."""

    hits: dict[int, int] = field(default_factory=dict)
    misses: dict[int, int] = field(default_factory=dict)
    evictions: int = 0
    writebacks: int = 0

    def record(self, core: int, hit: bool) -> None:
        book = self.hits if hit else self.misses
        book[core] = book.get(core, 0) + 1

    def total_hits(self) -> int:
        return sum(self.hits.values())

    def total_misses(self) -> int:
        return sum(self.misses.values())


class CacheBank:
    """One banked slice of the L2: ``num_sets`` sets of ``ways`` ways."""

    def __init__(
        self,
        bank_id: int,
        num_sets: int,
        ways: int,
        *,
        policy: str = "lru",
    ) -> None:
        if num_sets < 1:
            raise ConfigError("bank needs at least one set")
        self.bank_id = bank_id
        self.num_sets = num_sets
        self.ways = ways
        self._set_mask = num_sets - 1
        if num_sets & self._set_mask:
            raise ConfigError("bank set count must be a power of two")
        self.sets = [CacheSet(ways, policy) for _ in range(num_sets)]
        #: cores allowed to allocate into each way; None = any core.
        self._way_owners: list[frozenset[int] | None] = [None] * ways
        #: cached per-core candidate tuples derived from ``_way_owners``.
        self._candidates: dict[int, tuple[int, ...]] = {}
        self.stats = BankStats()

    # -- partition state ----------------------------------------------------

    def share_all(self) -> None:
        """No partitioning: every core may allocate into every way."""
        self._way_owners = [None] * self.ways
        self._candidates.clear()

    def set_way_owners(self, owners: list[frozenset[int] | None]) -> None:
        """Install a vertical partition: ``owners[w]`` is the set of cores
        that may allocate into way ``w`` (``None`` = unrestricted)."""
        if len(owners) != self.ways:
            raise ConfigError(f"need exactly {self.ways} owner entries")
        self._way_owners = list(owners)
        self._candidates.clear()

    def assign_ways(self, assignment: dict[int, int]) -> None:
        """Partition the bank's ways by *count*: ``assignment[core] = n``
        gives ``core`` exclusive use of the next ``n`` ways, in core order.
        The counts must sum to the bank's associativity."""
        total = sum(assignment.values())
        if total != self.ways:
            raise ConfigError(
                f"way counts sum to {total}, bank has {self.ways} ways"
            )
        if any(n < 0 for n in assignment.values()):
            raise ConfigError("way counts must be non-negative")
        owners: list[frozenset[int] | None] = []
        for core in sorted(assignment):
            owners.extend([frozenset((core,))] * assignment[core])
        self.set_way_owners(owners)

    def way_owners(self) -> list[frozenset[int] | None]:
        return list(self._way_owners)

    def candidates_for(self, core: int) -> tuple[int, ...]:
        """Ways ``core`` may allocate into under the current partition."""
        cached = self._candidates.get(core)
        if cached is None:
            cached = tuple(
                w
                for w, owners in enumerate(self._way_owners)
                if owners is None or core in owners
            )
            self._candidates[core] = cached
        return cached

    def ways_owned_by(self, core: int) -> int:
        return len(self.candidates_for(core))

    # -- access path --------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line & self._set_mask

    def probe(self, line: int) -> bool:
        """Directory-style presence check without recency update."""
        return self.sets[self.set_index(line)].probe(line) is not None

    def access(
        self, core: int, line: int, *, is_write: bool = False
    ) -> bool:
        """Reference ``line``; True on hit.  Does *not* allocate on miss —
        allocation is the NUCA level's decision (placement policy)."""
        hit = (
            self.sets[self.set_index(line)].lookup(line, is_write=is_write)
            is not None
        )
        self.stats.record(core, hit)
        return hit

    def fill(
        self, core: int, line: int, *, dirty: bool = False
    ) -> Eviction | None:
        """Allocate ``line`` for ``core`` into the core's owned ways."""
        candidates = self.candidates_for(core)
        if not candidates:
            raise PermissionError(
                f"core {core} owns no ways in bank {self.bank_id}"
            )
        ev = self.sets[self.set_index(line)].insert(
            line, core, candidates, dirty=dirty
        )
        if ev is not None:
            self.stats.evictions += 1
            if ev.dirty:
                self.stats.writebacks += 1
        return ev

    def invalidate(self, line: int) -> Eviction | None:
        return self.sets[self.set_index(line)].invalidate(line)

    def occupancy(self) -> int:
        return sum(s.occupancy() for s in self.sets)

    def resident_lines(self) -> list[int]:
        out: list[int] = []
        for s in self.sets:
            out.extend(s.resident_tags())
        return out
