"""Per-set replacement policies.

The paper's machinery is built on true LRU (the MSA profiler *requires* the
LRU inclusion property, and the partition enforcement is a "modified LRU"
restricted to the requesting core's ways).  :class:`LRUPolicy` is therefore
the default everywhere.  :class:`TreePLRUPolicy` and :class:`RandomPolicy`
are provided for extension studies (e.g. how profiler accuracy degrades when
the cache does not implement true LRU).

A policy tracks recency for the ways of one cache set.  ``victim`` selects a
way among an arbitrary *candidate subset* of ways — this is exactly the
paper's vertical way-partitioning hook: the candidate set is the requesting
core's owned ways.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.util.rng import rng_stream


class ReplacementPolicy(ABC):
    """Recency state for one set of ``ways`` ways."""

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ValueError("a set needs at least one way")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a reference to ``way`` (hit or fill)."""

    @abstractmethod
    def victim(self, candidates: Iterable[int]) -> int:
        """Pick the replacement victim among ``candidates`` (non-empty)."""

    def invalidate(self, way: int) -> None:
        """Forget all recency state for ``way`` (its line was removed).

        The way should afterwards look like it was never touched — the
        preferred victim — matching what the containing set does with its
        own inlined LRU stamps.  Stateless policies only range-check.
        """
        self._check_way(way)

    def recency_order(self) -> list[int]:
        """Ways ordered MRU -> LRU (used by tests and the MSA reference).

        Policies without a total recency order may raise
        :class:`NotImplementedError`.
        """
        raise NotImplementedError

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise IndexError(f"way {way} out of range 0..{self.ways - 1}")


class LRUPolicy(ReplacementPolicy):
    """True LRU via a monotonically increasing stamp per way."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0
        # stamp 0 == never touched; such ways are preferred victims.
        self._stamps = [0] * ways

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._clock += 1
        self._stamps[way] = self._clock

    def victim(self, candidates: Iterable[int]) -> int:
        best_way = -1
        best_stamp = None
        for way in candidates:
            self._check_way(way)
            stamp = self._stamps[way]
            if best_stamp is None or stamp < best_stamp:
                best_stamp = stamp
                best_way = way
        if best_way < 0:
            raise ValueError("victim() needs at least one candidate way")
        return best_way

    def invalidate(self, way: int) -> None:
        self._check_way(way)
        self._stamps[way] = 0

    def recency_order(self) -> list[int]:
        return sorted(range(self.ways), key=lambda w: -self._stamps[w])


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU (the common hardware approximation).

    Requires a power-of-two number of ways.  ``victim`` follows the PLRU
    tree but, when the pointed-to way is not a candidate (partitioned set),
    falls back to the least-recently *touched* candidate, mirroring how a
    partition-aware PLRU masks tree branches.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError("tree PLRU needs a power-of-two way count")
        self._bits = [False] * max(ways - 1, 1)
        self._clock = 0
        self._stamps = [0] * ways

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._clock += 1
        self._stamps[way] = self._clock
        node = 0
        span = self.ways
        while span > 1:
            half = span // 2
            left = way % span < half
            # True = victim on the right; touching the left half points the
            # victim pointer away from it.
            self._bits[node] = left
            node = 2 * node + (1 if left else 2)
            span = half

    def _tree_victim(self) -> int:
        node = 0
        lo, span = 0, self.ways
        while span > 1:
            half = span // 2
            go_right = self._bits[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                lo += half
            span = half
        return lo

    def victim(self, candidates: Iterable[int]) -> int:
        cands = list(candidates)
        if not cands:
            raise ValueError("victim() needs at least one candidate way")
        for way in cands:
            self._check_way(way)
        tv = self._tree_victim()
        if tv in cands:
            return tv
        return min(cands, key=lambda w: self._stamps[w])

    def invalidate(self, way: int) -> None:
        """Clear the stamp and aim the tree at ``way`` so the freed slot is
        the next victim (the hardware's invalidate behaviour)."""
        self._check_way(way)
        self._stamps[way] = 0
        node = 0
        span = self.ways
        while span > 1:
            half = span // 2
            right = way % span >= half
            self._bits[node] = right
            node = 2 * node + (2 if right else 1)
            span = half


class RandomPolicy(ReplacementPolicy):
    """Uniform random replacement (deterministic under a fixed seed)."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = rng_stream(seed, "random-replacement", ways)

    def touch(self, way: int) -> None:
        self._check_way(way)

    def victim(self, candidates: Iterable[int]) -> int:
        cands = list(candidates)
        if not cands:
            raise ValueError("victim() needs at least one candidate way")
        for way in cands:
            self._check_way(way)
        return cands[int(self._rng.integers(0, len(cands)))]


POLICIES = {
    "lru": LRUPolicy,
    "plru": TreePLRUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``plru``/``random``)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown replacement policy {name!r}") from None
    return cls(ways)
