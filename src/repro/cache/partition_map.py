"""Concrete cache-partition descriptions.

The partitioning algorithms (``repro.partitioning``) decide *how many ways*
each core gets; this module describes *where those ways physically live*:
which banks, which way indices inside each bank, and how multi-bank
partitions are aggregated (paper Section III.B, Fig. 4/5):

* ``level1`` — the fully-owned banks of the partition, aggregated by the
  Parallel or Address-Hash scheme;
* ``level2`` — the optional partial allocation inside a (possibly shared)
  Local bank, cascaded below level 1 ("we limit the level of cascading to
  two", Fig. 4c).

A :class:`PartitionMap` collects one :class:`CorePartition` per core and can
validate global consistency (no way owned twice, capacity adds up) and
install itself onto a list of :class:`~repro.cache.bank.CacheBank`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.bank import CacheBank
from repro.errors import PartitionInvariantError


@dataclass(frozen=True)
class BankAllocation:
    """A set of way indices owned inside one physical bank."""

    bank: int
    ways: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ways:
            raise PartitionInvariantError("a bank allocation needs at least one way")
        if len(set(self.ways)) != len(self.ways):
            raise PartitionInvariantError("duplicate way indices in allocation")
        if any(w < 0 for w in self.ways):
            raise PartitionInvariantError("way indices must be non-negative")
        object.__setattr__(self, "ways", tuple(sorted(self.ways)))

    @property
    def num_ways(self) -> int:
        return len(self.ways)


@dataclass(frozen=True)
class CorePartition:
    """The physical L2 partition of one core."""

    core: int
    level1: tuple[BankAllocation, ...]
    level2: BankAllocation | None = None

    def __post_init__(self) -> None:
        if not self.level1:
            raise PartitionInvariantError("a partition needs at least one level-1 bank")
        banks = [a.bank for a in self.level1]
        if self.level2 is not None:
            banks.append(self.level2.bank)
        if len(set(banks)) != len(banks):
            raise PartitionInvariantError("a bank may appear only once in a partition")

    @property
    def total_ways(self) -> int:
        n = sum(a.num_ways for a in self.level1)
        if self.level2 is not None:
            n += self.level2.num_ways
        return n

    @property
    def banks(self) -> tuple[int, ...]:
        out = tuple(a.bank for a in self.level1)
        if self.level2 is not None:
            out += (self.level2.bank,)
        return out

    def allocations(self) -> tuple[BankAllocation, ...]:
        out = tuple(self.level1)
        if self.level2 is not None:
            out += (self.level2,)
        return out


@dataclass
class PartitionMap:
    """One :class:`CorePartition` per core, plus global validation."""

    partitions: dict[int, CorePartition] = field(default_factory=dict)

    def add(self, partition: CorePartition) -> None:
        if partition.core in self.partitions:
            raise PartitionInvariantError(f"core {partition.core} already has a partition")
        self.partitions[partition.core] = partition

    def __getitem__(self, core: int) -> CorePartition:
        return self.partitions[core]

    def __contains__(self, core: int) -> bool:
        return core in self.partitions

    def __len__(self) -> int:
        return len(self.partitions)

    def way_vector(self) -> dict[int, int]:
        """Total ways per core (the abstract allocation the algorithms chose)."""
        return {c: p.total_ways for c, p in self.partitions.items()}

    def validate(self, num_banks: int, bank_ways: int) -> "PartitionMap":
        """Check physical consistency: way indices in range and no way of any
        bank claimed by two cores."""
        claimed: dict[tuple[int, int], int] = {}
        for core, part in self.partitions.items():
            for alloc in part.allocations():
                if not 0 <= alloc.bank < num_banks:
                    raise PartitionInvariantError(f"bank {alloc.bank} out of range")
                for w in alloc.ways:
                    if w >= bank_ways:
                        raise PartitionInvariantError(
                            f"way {w} out of range for {bank_ways}-way bank"
                        )
                    key = (alloc.bank, w)
                    if key in claimed:
                        raise PartitionInvariantError(
                            f"bank {alloc.bank} way {w} claimed by cores "
                            f"{claimed[key]} and {core}"
                        )
                    claimed[key] = core
        return self

    def install(self, banks: list[CacheBank]) -> None:
        """Program the banks' vertical way-ownership from this map.

        Ways not claimed by any core are left owned by the empty set (no
        core may allocate there) — the partitioning algorithms always assign
        full capacity, so in practice every way is claimed.
        """
        self.validate(len(banks), banks[0].ways if banks else 0)
        owners: list[list[frozenset[int]]] = [
            [frozenset()] * bank.ways for bank in banks
        ]
        for core, part in self.partitions.items():
            for alloc in part.allocations():
                for w in alloc.ways:
                    owners[alloc.bank][w] = frozenset((core,))
        for bank, owner_row in zip(banks, owners):
            bank.set_way_owners(list(owner_row))


def equal_partition_map(
    num_cores: int, num_banks: int, bank_ways: int
) -> PartitionMap:
    """The paper's *Equal-partitions* scheme: private, equally sized
    partitions — each core gets its Local bank plus an equal share of the
    Center banks as whole banks (8 cores x 2 banks = 16 ways each on the
    baseline machine)."""
    if num_banks % num_cores:
        raise PartitionInvariantError("banks must divide evenly among cores")
    per_core = num_banks // num_cores
    pmap = PartitionMap()
    all_ways = tuple(range(bank_ways))
    for core in range(num_cores):
        local = BankAllocation(core, all_ways)
        centers = tuple(
            BankAllocation(num_cores + core * (per_core - 1) + k, all_ways)
            for k in range(per_core - 1)
        )
        pmap.add(CorePartition(core, (local,) + centers))
    return pmap
