"""Per-core L1 cache (paper Table I: 64 KB, 2-way, 3 cycles, 64 B lines).

The main experiments drive the L2 reference stream directly (the paper's
profilers also monitor L2 accesses), so the L1 appears there only through
each workload's non-memory CPI.  This module provides a real L1 model for
the full-hierarchy example and for coherence experiments, where L1 contents
matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cacheset import CacheSet, Eviction
from repro.config import L1Config
from repro.util.bits import ilog2


@dataclass
class L1Stats:
    accesses: int = 0
    hits: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class L1Cache:
    """A write-back, write-allocate set-associative L1."""

    def __init__(self, config: L1Config | None = None, *, policy: str = "lru") -> None:
        self.config = config or L1Config()
        self.config.validate()
        self.num_sets = self.config.num_sets
        self.ways = self.config.ways
        self._set_bits = ilog2(self.num_sets)
        self._set_mask = self.num_sets - 1
        self.sets = [CacheSet(self.ways, policy) for _ in range(self.num_sets)]
        self._all_ways = tuple(range(self.ways))
        self.stats = L1Stats()

    def set_index(self, line: int) -> int:
        return line & self._set_mask

    def access(self, line: int, *, is_write: bool = False) -> tuple[bool, Eviction | None]:
        """Reference a line; allocate on miss.  Returns ``(hit, eviction)``
        where the eviction (if dirty) must be written back to the L2."""
        self.stats.accesses += 1
        cset = self.sets[self.set_index(line)]
        if cset.lookup(line, is_write=is_write) is not None:
            self.stats.hits += 1
            return True, None
        ev = cset.insert(line, 0, self._all_ways, dirty=is_write)
        if ev is not None and ev.dirty:
            self.stats.writebacks += 1
        return False, ev

    def contains(self, line: int) -> bool:
        return self.sets[self.set_index(line)].probe(line) is not None

    def invalidate(self, line: int) -> Eviction | None:
        """Coherence-invalidate a line (returns dirty state for writeback)."""
        return self.sets[self.set_index(line)].invalidate(line)

    def occupancy(self) -> int:
        return sum(s.occupancy() for s in self.sets)
