"""Cache substrate: replacement, way-partitioned sets, banks, the NUCA L2."""

from repro.cache.aggregation import (
    SCHEMES,
    AddressHashAggregation,
    AggregatedCache,
    AggregationStats,
    CascadeAggregation,
    IdealLRUAggregation,
    ParallelAggregation,
    make_aggregation,
)
from repro.cache.bank import BankStats, CacheBank
from repro.cache.cacheset import CacheSet, Eviction
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.cache.l1 import L1Cache, L1Stats
from repro.cache.nuca import AccessResult, NucaL2, NucaStats
from repro.cache.partition_map import (
    BankAllocation,
    CorePartition,
    PartitionMap,
    equal_partition_map,
)
from repro.cache.replacement import (
    POLICIES,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)

__all__ = [
    "POLICIES",
    "SCHEMES",
    "AccessResult",
    "AddressHashAggregation",
    "AggregatedCache",
    "AggregationStats",
    "BankAllocation",
    "BankStats",
    "CacheBank",
    "CacheHierarchy",
    "CacheSet",
    "CascadeAggregation",
    "CorePartition",
    "Eviction",
    "HierarchyResult",
    "IdealLRUAggregation",
    "L1Cache",
    "L1Stats",
    "LRUPolicy",
    "NucaL2",
    "NucaStats",
    "ParallelAggregation",
    "PartitionMap",
    "RandomPolicy",
    "ReplacementPolicy",
    "TreePLRUPolicy",
    "equal_partition_map",
    "make_aggregation",
    "make_policy",
]
