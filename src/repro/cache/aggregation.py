"""Standalone models of the bank-aggregation schemes (paper Section III.B).

When a core's partition spans several banks, the banks must be aggregated
into one logical cache.  The paper discusses three options (Fig. 4):

* **Cascade** — banks chained head-to-tail into one long LRU stack.  Emulates
  the MSA-ideal LRU exactly, but every allocation or promotion shifts lines
  across bank boundaries: the migration rate is "prohibitively high".
* **Address-Hash** — the line's address picks the bank; per-bank LRU.  Zero
  migrations, but banks must be symmetric and the aggregate only
  approximates a global LRU (a hot set in one bank cannot borrow space from
  another).
* **Parallel** — a line may live in *any* bank; allocation is round-robin,
  and lookups consult a directory across all banks (higher power).  Same
  migration behaviour as Address-Hash with slightly different conflict
  statistics.

These classes model one core's aggregated partition in isolation so the
schemes can be compared on miss rate, migration count and directory probes
(`benchmarks/bench_fig4_aggregation.py`).  The production NUCA uses the
Parallel/Hash placement with depth-2 cascading (see
:class:`repro.cache.nuca.NucaL2`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cache.cacheset import CacheSet
from repro.errors import SimulationInvariantError


@dataclass
class AggregationStats:
    accesses: int = 0
    misses: int = 0
    migrations: int = 0  #: lines moved between banks
    directory_probes: int = 0  #: per-bank tag lookups performed

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def migrations_per_access(self) -> float:
        return self.migrations / self.accesses if self.accesses else 0.0


class AggregatedCache(ABC):
    """A logical cache built from ``num_banks`` banks of ``bank_ways`` ways
    over ``num_sets`` sets (same set count in every bank)."""

    name = "abstract"

    def __init__(self, num_banks: int, bank_ways: int, num_sets: int) -> None:
        if num_banks < 1 or bank_ways < 1 or num_sets < 1:
            raise ValueError("banks, ways and sets must all be positive")
        if num_sets & (num_sets - 1):
            raise ValueError("set count must be a power of two")
        self.num_banks = num_banks
        self.bank_ways = bank_ways
        self.num_sets = num_sets
        self.stats = AggregationStats()

    @property
    def total_ways(self) -> int:
        return self.num_banks * self.bank_ways

    def set_index(self, line: int) -> int:
        return line & (self.num_sets - 1)

    def access(self, line: int) -> bool:
        """Reference a line; True on hit.  Updates the statistics."""
        self.stats.accesses += 1
        hit = self._access(line)
        if not hit:
            self.stats.misses += 1
        return hit

    @abstractmethod
    def _access(self, line: int) -> bool: ...


class CascadeAggregation(AggregatedCache):
    """Head-to-tail LRU chain across banks (paper Fig. 4a/4b).

    Modelled per set as an explicit MRU->LRU list whose positions map onto
    banks in order: positions ``[0, W)`` are bank 0, ``[W, 2W)`` bank 1, etc.
    Any insertion at the head shifts every line after the insertion point
    down by one; each line that crosses a bank boundary is one migration.
    A hit deep in the chain additionally migrates the promoted line itself.
    """

    name = "cascade"

    def __init__(self, num_banks: int, bank_ways: int, num_sets: int) -> None:
        super().__init__(num_banks, bank_ways, num_sets)
        self._stacks: list[list[int]] = [[] for _ in range(num_sets)]

    def _bank_of_position(self, pos: int) -> int:
        return pos // self.bank_ways

    def _shift_migrations(self, from_pos: int) -> int:
        """Lines crossing a bank boundary when positions ``[0, from_pos)``
        all shift down by one: one per boundary below ``from_pos``."""
        return self._bank_of_position(from_pos)

    def _access(self, line: int) -> bool:
        stack = self._stacks[self.set_index(line)]
        try:
            pos = stack.index(line)
        except ValueError:
            pos = -1
        if pos >= 0:
            stack.pop(pos)
            stack.insert(0, line)
            promoted_bank = self._bank_of_position(pos)
            # Every full bank above the hit position spills one line down.
            self.stats.migrations += self._shift_migrations(pos)
            if promoted_bank != 0:
                self.stats.migrations += 1  # the promoted line itself moves
            return True
        stack.insert(0, line)
        if len(stack) > self.total_ways:
            stack.pop()
            self.stats.migrations += self._shift_migrations(self.total_ways - 1)
        else:
            self.stats.migrations += self._shift_migrations(len(stack) - 1)
        return False

    def recency_order(self, set_index: int) -> list[int]:
        return list(self._stacks[set_index])


class AddressHashAggregation(AggregatedCache):
    """Address bits select the bank; independent per-bank LRU (Fig. 4,
    'Address Hash').  The hash uses the bits above the set index, like the
    POWER4/POWER5 bank hash the paper cites."""

    name = "hash"

    def __init__(self, num_banks: int, bank_ways: int, num_sets: int) -> None:
        super().__init__(num_banks, bank_ways, num_sets)
        self._banks = [
            [CacheSet(bank_ways) for _ in range(num_sets)]
            for _ in range(num_banks)
        ]
        self._all_ways = tuple(range(bank_ways))
        self._set_bits = num_sets.bit_length() - 1

    def bank_of(self, line: int) -> int:
        return (line >> self._set_bits) % self.num_banks

    def _access(self, line: int) -> bool:
        cset = self._banks[self.bank_of(line)][self.set_index(line)]
        self.stats.directory_probes += 1
        if cset.lookup(line) is not None:
            return True
        cset.insert(line, 0, self._all_ways)
        return False


class ParallelAggregation(AggregatedCache):
    """Any bank may hold any line; round-robin allocation and a full-width
    directory lookup on every access (Fig. 4, 'Parallel')."""

    name = "parallel"

    def __init__(self, num_banks: int, bank_ways: int, num_sets: int) -> None:
        super().__init__(num_banks, bank_ways, num_sets)
        self._banks = [
            [CacheSet(bank_ways) for _ in range(num_sets)]
            for _ in range(num_banks)
        ]
        self._all_ways = tuple(range(bank_ways))
        self._where: dict[int, int] = {}
        self._rr = 0

    def _access(self, line: int) -> bool:
        # the directory probes every bank's tag array in parallel
        self.stats.directory_probes += self.num_banks
        home = self._where.get(line)
        si = self.set_index(line)
        if home is not None:
            hit = self._banks[home][si].lookup(line)
            if hit is None:
                raise SimulationInvariantError(
                    f"directory says line {line} is in bank {home}, but the "
                    f"set lookup missed"
                )
            return True
        bank = self._rr % self.num_banks
        self._rr += 1
        ev = self._banks[bank][si].insert(line, 0, self._all_ways)
        self._where[line] = bank
        if ev is not None:
            del self._where[ev.tag]
        return False


class IdealLRUAggregation(AggregatedCache):
    """Reference: a single monolithic ``num_banks * bank_ways``-way LRU — the
    structure the MSA histogram predicts.  Physically unrealisable at bank
    granularity; used to score the realisable schemes' fidelity."""

    name = "ideal"

    def __init__(self, num_banks: int, bank_ways: int, num_sets: int) -> None:
        super().__init__(num_banks, bank_ways, num_sets)
        self._sets = [CacheSet(self.total_ways) for _ in range(num_sets)]
        self._all_ways = tuple(range(self.total_ways))

    def _access(self, line: int) -> bool:
        cset = self._sets[self.set_index(line)]
        if cset.lookup(line) is not None:
            return True
        cset.insert(line, 0, self._all_ways)
        return False


SCHEMES: dict[str, type[AggregatedCache]] = {
    cls.name: cls
    for cls in (
        CascadeAggregation,
        AddressHashAggregation,
        ParallelAggregation,
        IdealLRUAggregation,
    )
}


def make_aggregation(
    name: str, num_banks: int, bank_ways: int, num_sets: int
) -> AggregatedCache:
    """Instantiate an aggregation scheme by name."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise KeyError(f"unknown aggregation scheme {name!r}") from None
    return cls(num_banks, bank_ways, num_sets)
