"""The banked DNUCA L2 cache (paper Section II, Fig. 1).

16 physical banks of 2048 sets x 8 ways form a "128-way equivalent" cache.
The cache operates in one of two modes:

* **shared** (the paper's *No-partitions* baseline): the DNUCA the paper
  builds on (Kim et al. / Beckmann's CMP-NUCA, with block migration).
  ``placement='dnuca'`` (default for shared mode) is a generational model
  of it: a miss allocates in the requesting core's Local bank, the victim
  is demoted one step outward along its owner's distance-ordered bank list
  (falling off the far end to memory), and a hit in a non-nearest bank
  promotes the block one step toward the requester.  Blocks therefore
  gravitate toward their cores and the *nearby* banks become the
  battleground — divergent neighbours destroy each other's working sets,
  exactly the interference the paper sets out to remove.
  ``placement='parallel'`` (round-robin over all banks, a global
  128-way-LRU-like aggregate) and ``placement='hash'`` (address-hashed
  home banks) are kept as idealised shared baselines for ablations.
* **partitioned**: a :class:`~repro.cache.partition_map.PartitionMap`
  assigns bank ways to cores.  Multi-bank partitions are aggregated with
  the *Parallel* (round-robin placement, directory lookup) or
  *Address-Hash* scheme over the level-1 banks, with the optional partial
  allocation in a shared Local bank acting as a level-2 victim below them
  (cascading limited to depth two, Fig. 4c).  On a level-2 hit the line is
  promoted back to level 1 — these block moves are the *migrations* whose
  rate distinguishes the aggregation schemes in the paper.

The simulator keeps a global line -> bank directory; the hardware equivalent
is the partial-tag directory the paper assumes for Parallel allocation.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.cache.bank import CacheBank
from repro.cache.cacheset import Eviction
from repro.cache.partition_map import CorePartition, PartitionMap
from repro.config import L2Config
from repro.telemetry.metrics import MetricsRegistry
from repro.util.bits import ilog2
from repro.util.floorplan import distance_ordered_banks

from repro.errors import ConfigError


class AccessResult(NamedTuple):
    """Outcome of one L2 reference."""

    hit: bool
    bank: int  #: bank serving the reference (hit bank, or fill bank on miss)
    evictions: tuple[Eviction, ...]  #: lines pushed out to memory
    migrations: int  #: bank-to-bank block moves triggered by this access


class NucaStats:
    """L2-level per-core accounting.

    The hot-path counters are flat per-core lists (``record`` is a single
    list index per access); the historical ``hits``/``misses`` dict views
    stay available as properties for the public API.
    """

    __slots__ = ("_hits", "_misses", "migrations", "writebacks")

    def __init__(
        self,
        hits: dict[int, int] | None = None,
        misses: dict[int, int] | None = None,
        migrations: int = 0,
        writebacks: int = 0,
        *,
        num_cores: int = 0,
    ) -> None:
        n = num_cores
        if hits:
            n = max(n, max(hits) + 1)
        if misses:
            n = max(n, max(misses) + 1)
        self._hits = [0] * n
        self._misses = [0] * n
        for core, v in (hits or {}).items():
            self._hits[core] = v
        for core, v in (misses or {}).items():
            self._misses[core] = v
        self.migrations = migrations
        self.writebacks = writebacks

    def _grow(self, size: int) -> None:
        pad = size - len(self._hits)
        if pad > 0:
            self._hits.extend([0] * pad)
            self._misses.extend([0] * pad)

    @property
    def hits(self) -> dict[int, int]:
        """Per-core hit counts (cores with at least one hit)."""
        return {c: v for c, v in enumerate(self._hits) if v}

    @property
    def misses(self) -> dict[int, int]:
        """Per-core miss counts (cores with at least one miss)."""
        return {c: v for c, v in enumerate(self._misses) if v}

    def record(self, core: int, hit: bool) -> None:
        book = self._hits if hit else self._misses
        try:
            book[core] += 1
        except IndexError:
            self._grow(core + 1)
            book[core] += 1

    def core_hits(self, core: int) -> int:
        return self._hits[core] if core < len(self._hits) else 0

    def core_misses(self, core: int) -> int:
        return self._misses[core] if core < len(self._misses) else 0

    def core_accesses(self, core: int) -> int:
        return self.core_hits(core) + self.core_misses(core)

    def core_miss_rate(self, core: int) -> float:
        acc = self.core_accesses(core)
        return self.core_misses(core) / acc if acc else 0.0

    def total_hits(self) -> int:
        return sum(self._hits)

    def total_misses(self) -> int:
        return sum(self._misses)

    def total_accesses(self) -> int:
        return sum(self._hits) + sum(self._misses)

    def snapshot(self) -> "NucaStats":
        return NucaStats(
            self.hits, self.misses, self.migrations, self.writebacks,
            num_cores=len(self._hits),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NucaStats):
            return NotImplemented
        return (
            self.hits == other.hits
            and self.misses == other.misses
            and self.migrations == other.migrations
            and self.writebacks == other.writebacks
        )

    def __repr__(self) -> str:
        return (
            f"NucaStats(hits={self.hits}, misses={self.misses}, "
            f"migrations={self.migrations}, writebacks={self.writebacks})"
        )


class NucaL2:
    """The banked NUCA L2 with switchable sharing/partitioning."""

    def __init__(
        self,
        config: L2Config | None = None,
        num_cores: int = 8,
        *,
        placement: str = "parallel",
        promote_on_hit: bool = True,
        policy: str = "lru",
    ) -> None:
        self.config = config or L2Config()
        self.config.validate()
        if placement not in ("parallel", "hash", "dnuca"):
            raise ConfigError("placement must be 'parallel', 'hash' or 'dnuca'")
        self.num_cores = num_cores
        self.placement = placement
        self.promote_on_hit = promote_on_hit
        #: nearest-first bank list per core (DNUCA migration geography).
        self.bank_orders = [
            distance_ordered_banks(c, num_cores, self.config.num_banks)
            for c in range(num_cores)
        ]
        self._order_pos = [
            {bank: i for i, bank in enumerate(order)}
            for order in self.bank_orders
        ]
        #: demotion-chain cap per access in DNUCA mode (bounded migration).
        self.max_demotions = 2
        self.banks = [
            CacheBank(b, self.config.sets_per_bank, self.config.bank_ways, policy=policy)
            for b in range(self.config.num_banks)
        ]
        self._set_bits = ilog2(self.config.sets_per_bank)
        self._where: dict[int, int] = {}
        self._mode = "shared"
        self._pmap: PartitionMap | None = None
        self._rr: dict[int, int] = {}
        self._shared_rr = 0
        self.stats = NucaStats(num_cores=num_cores)

    # -- configuration ------------------------------------------------------

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def partition_map(self) -> PartitionMap | None:
        return self._pmap

    def share_all(self) -> None:
        """Enter the *No-partitions* shared baseline mode.

        Shared mode locates lines purely by their address hash, so any lines
        that a previous partitioned epoch placed in non-home banks must be
        dropped first.
        """
        if self._mode == "partitioned" and self._where:
            self.flush()
        self._mode = "shared"
        self._pmap = None
        self._where.clear()
        for bank in self.banks:
            bank.share_all()

    def apply_partition(self, pmap: PartitionMap) -> None:
        """Install a partition map.  Resident lines are left in place (as in
        the paper — enforcement is purely through replacement masking), so
        stale lines of the previous epoch drain out naturally."""
        pmap.validate(self.config.num_banks, self.config.bank_ways)
        if self._mode == "shared":
            # Adopt shared-mode residents into the directory so they remain
            # findable (and evictable) under partitioned operation.
            self._where = {
                line: bank.bank_id
                for bank in self.banks
                for line in bank.resident_lines()
            }
        self._mode = "partitioned"
        self._pmap = pmap
        self._rr = {c: 0 for c in pmap.partitions}
        pmap.install(self.banks)
        # Nearest-first chain of each partition's banks: under the 'dnuca'
        # placement, blocks gravitate to the chain head and age outward —
        # the machine stays a DNUCA whether or not it is partitioned.
        self._chain = {
            core: sorted(
                (a.bank for a in part.allocations()),
                key=self._order_pos[core].__getitem__,
            )
            for core, part in pmap.partitions.items()
        }
        self._chain_pos = {
            core: {bank: i for i, bank in enumerate(chain)}
            for core, chain in self._chain.items()
        }

    # -- placement helpers ----------------------------------------------------

    def shared_home(self, line: int) -> int:
        """Address-hash home bank in shared mode (bits above the set index)."""
        return (line >> self._set_bits) % self.config.num_banks

    def _level1_bank(self, core: int, part: CorePartition, line: int) -> int:
        if len(part.level1) == 1:
            return part.level1[0].bank
        if self.placement == "hash":
            idx = (line >> self._set_bits) % len(part.level1)
        else:  # parallel: round-robin allocation, any bank may hold the line
            idx = self._rr[core] % len(part.level1)
            self._rr[core] = idx + 1
        return part.level1[idx].bank

    # -- access path --------------------------------------------------------

    def access(self, core: int, line: int, *, is_write: bool = False) -> AccessResult:
        """Reference ``line`` on behalf of ``core`` (allocate-on-miss)."""
        if self._mode == "shared":
            return self._access_shared(core, line, is_write)
        return self._access_partitioned(core, line, is_write)

    def _access_shared(self, core: int, line: int, is_write: bool) -> AccessResult:
        """Shared (No-partitions) reference.

        ``placement='dnuca'`` is the paper's migrating-DNUCA baseline (see
        the module docstring); ``'parallel'`` places round-robin over all
        banks (a global 128-way-LRU-like aggregate); ``'hash'`` gives every
        line an address-hashed home bank (conventional banked shared cache).
        """
        if self.placement == "dnuca":
            return self._access_dnuca(core, line, is_write)
        if self.placement == "hash":
            bank = self.banks[self.shared_home(line)]
            hit = bank.access(core, line, is_write=is_write)
            self.stats.record(core, hit)
            if hit:
                return AccessResult(True, bank.bank_id, (), 0)
            ev = bank.fill(core, line, dirty=is_write)
            evictions = (ev,) if ev is not None else ()
            if ev is not None and ev.dirty:
                self.stats.writebacks += 1
            return AccessResult(False, bank.bank_id, evictions, 0)

        home = self._where.get(line)
        if home is not None:
            hit = self.banks[home].access(core, line, is_write=is_write)
            assert hit, "directory said present but set lookup missed"
            self.stats.record(core, True)
            return AccessResult(True, home, (), 0)
        self.stats.record(core, False)
        bank_id = self._shared_rr % self.config.num_banks
        self._shared_rr += 1
        ev = self.banks[bank_id].fill(core, line, dirty=is_write)
        self._where[line] = bank_id
        self.banks[bank_id].stats.record(core, False)
        evictions: tuple[Eviction, ...] = ()
        if ev is not None:
            del self._where[ev.tag]
            evictions = (ev,)
            if ev.dirty:
                self.stats.writebacks += 1
        return AccessResult(False, bank_id, evictions, 0)

    # -- DNUCA (migrating shared baseline) ------------------------------------

    def _access_dnuca(self, core: int, line: int, is_write: bool) -> AccessResult:
        """Generational DNUCA: gravity placement + one-step migration."""
        home = self._where.get(line)
        if home is not None:
            hit = self.banks[home].access(core, line, is_write=is_write)
            assert hit, "directory said present but set lookup missed"
            self.stats.record(core, True)
            migrations = 0
            pos = self._order_pos[core].get(home, 0)
            if pos > 0:
                migrations = self._dnuca_promote(core, line, home, pos)
            return AccessResult(True, home, (), migrations)
        self.stats.record(core, False)
        local = self.bank_orders[core][0]
        evictions, migrations = self._dnuca_fill(core, line, local, dirty=is_write)
        self.banks[local].stats.record(core, False)
        return AccessResult(False, local, evictions, migrations)

    def _dnuca_fill(
        self, owner: int, line: int, bank_id: int, *, dirty: bool
    ) -> tuple[tuple[Eviction, ...], int]:
        """Fill at ``bank_id``; each victim is demoted one step outward along
        *its own owner's* distance order, chained up to ``max_demotions``
        boundary crossings per access, then spilled to memory."""
        evictions: list[Eviction] = []
        migrations = 0
        ev = self.banks[bank_id].fill(owner, line, dirty=dirty)
        self._where[line] = bank_id
        current_bank = bank_id
        demotions = 0
        while ev is not None:
            del self._where[ev.tag]
            v_owner = ev.owner if 0 <= ev.owner < self.num_cores else owner
            order = self.bank_orders[v_owner]
            pos = self._order_pos[v_owner].get(current_bank, len(order) - 1)
            if demotions >= self.max_demotions or pos + 1 >= len(order):
                evictions.append(ev)
                break
            target = order[pos + 1]
            next_ev = self.banks[target].fill(v_owner, ev.tag, dirty=ev.dirty)
            self._where[ev.tag] = target
            migrations += 1
            demotions += 1
            current_bank = target
            ev = next_ev
        for e in evictions:
            if e.dirty:
                self.stats.writebacks += 1
        self.stats.migrations += migrations
        return tuple(evictions), migrations

    def _dnuca_promote(self, core: int, line: int, home: int, pos: int) -> int:
        """Move a hit block one bank closer to the requester, swapping with
        the LRU occupant of the target set (if any)."""
        target = self.bank_orders[core][pos - 1]
        removed = self.banks[home].invalidate(line)
        assert removed is not None
        del self._where[line]
        displaced = self.banks[target].fill(core, line, dirty=removed.dirty)
        self._where[line] = target
        migrations = 1
        if displaced is not None:
            del self._where[displaced.tag]
            back_owner = (
                displaced.owner if 0 <= displaced.owner < self.num_cores else core
            )
            back = self.banks[home].fill(
                back_owner, displaced.tag, dirty=displaced.dirty
            )
            self._where[displaced.tag] = home
            migrations += 1
            if back is not None:  # freed way re-raced by a mode change
                del self._where[back.tag]
                if back.dirty:
                    self.stats.writebacks += 1
        self.stats.migrations += migrations
        return migrations

    def _access_partitioned(
        self, core: int, line: int, is_write: bool
    ) -> AccessResult:
        if self.placement == "dnuca":
            return self._access_partitioned_dnuca(core, line, is_write)
        assert self._pmap is not None
        part = self._pmap[core]
        home = self._where.get(line)
        if home is not None:
            bank = self.banks[home]
            hit = bank.access(core, line, is_write=is_write)
            assert hit, "directory said present but set lookup missed"
            self.stats.record(core, True)
            migrations = 0
            evictions: tuple[Eviction, ...] = ()
            if (
                self.promote_on_hit
                and part.level2 is not None
                and home == part.level2.bank
                and len(part.level1) > 0
            ):
                evictions, migrations = self._promote(core, part, line, home)
            return AccessResult(True, home, evictions, migrations)

        # Miss: allocate in a level-1 bank; demote its victim to level 2.
        self.stats.record(core, False)
        fill_bank_id = self._level1_bank(core, part, line)
        evictions, migrations = self._fill_with_demotion(
            core, part, line, fill_bank_id, dirty=is_write
        )
        self.banks[fill_bank_id].stats.record(core, False)
        return AccessResult(False, fill_bank_id, evictions, migrations)

    def _access_partitioned_dnuca(
        self, core: int, line: int, is_write: bool
    ) -> AccessResult:
        """Partitioned access with gravity placement inside the partition:
        fills land in the chain's nearest bank, victims age outward through
        the core's own ways, and hits migrate one step back toward the core.
        The way masks still provide the isolation — all movement happens in
        ways the core owns."""
        home = self._where.get(line)
        if home is not None:
            hit = self.banks[home].access(core, line, is_write=is_write)
            assert hit, "directory said present but set lookup missed"
            self.stats.record(core, True)
            migrations = 0
            pos = self._chain_pos[core].get(home)
            if pos is not None and pos > 0:
                migrations = self._chain_promote(core, line, home, pos)
            return AccessResult(True, home, (), migrations)
        self.stats.record(core, False)
        chain = self._chain[core]
        evictions, migrations = self._chain_fill(core, line, dirty=is_write)
        self.banks[chain[0]].stats.record(core, False)
        return AccessResult(False, chain[0], evictions, migrations)

    def _chain_fill(
        self, core: int, line: int, *, dirty: bool
    ) -> tuple[tuple[Eviction, ...], int]:
        """Fill at the head of ``core``'s partition chain, demoting victims
        outward through the chain (bounded, as in the shared DNUCA)."""
        chain = self._chain[core]
        evictions: list[Eviction] = []
        migrations = 0
        ev = self.banks[chain[0]].fill(core, line, dirty=dirty)
        self._where[line] = chain[0]
        pos = 0
        demotions = 0
        while ev is not None:
            del self._where[ev.tag]
            if demotions >= self.max_demotions or pos + 1 >= len(chain):
                evictions.append(ev)
                break
            target = chain[pos + 1]
            next_ev = self.banks[target].fill(core, ev.tag, dirty=ev.dirty)
            self._where[ev.tag] = target
            migrations += 1
            demotions += 1
            pos += 1
            ev = next_ev
        for e in evictions:
            if e.dirty:
                self.stats.writebacks += 1
        self.stats.migrations += migrations
        return tuple(evictions), migrations

    def _chain_promote(self, core: int, line: int, home: int, pos: int) -> int:
        """Swap a hit block one chain step toward the core's Local bank.

        After a repartition the freed way in ``home`` may no longer belong
        to the core, so the back-fill can itself displace a line; that
        second victim is dropped to memory rather than cascaded further.
        """
        target = self._chain[core][pos - 1]
        removed = self.banks[home].invalidate(line)
        assert removed is not None
        del self._where[line]
        displaced = self.banks[target].fill(core, line, dirty=removed.dirty)
        self._where[line] = target
        migrations = 1
        if displaced is not None:
            del self._where[displaced.tag]
            back = self.banks[home].fill(core, displaced.tag, dirty=displaced.dirty)
            self._where[displaced.tag] = home
            migrations += 1
            if back is not None:
                del self._where[back.tag]
                if back.dirty:
                    self.stats.writebacks += 1
        self.stats.migrations += migrations
        return migrations

    # -- internal movement --------------------------------------------------

    def _fill_with_demotion(
        self,
        core: int,
        part: CorePartition,
        line: int,
        bank_id: int,
        *,
        dirty: bool,
    ) -> tuple[tuple[Eviction, ...], int]:
        """Fill ``line`` into ``bank_id``; cascade the victim into the
        partition's level-2 allocation when one exists."""
        evictions: list[Eviction] = []
        migrations = 0
        ev = self.banks[bank_id].fill(core, line, dirty=dirty)
        self._where[line] = bank_id
        if ev is not None:
            del self._where[ev.tag]
            demote_ok = (
                part.level2 is not None
                and bank_id != part.level2.bank
                and ev.owner == core
            )
            if demote_ok:
                ev2 = self.banks[part.level2.bank].fill(
                    core, ev.tag, dirty=ev.dirty
                )
                self._where[ev.tag] = part.level2.bank
                migrations += 1
                if ev2 is not None:
                    del self._where[ev2.tag]
                    evictions.append(ev2)
            else:
                evictions.append(ev)
        for e in evictions:
            if e.dirty:
                self.stats.writebacks += 1
        self.stats.migrations += migrations
        return tuple(evictions), migrations

    def _promote(
        self, core: int, part: CorePartition, line: int, home: int
    ) -> tuple[tuple[Eviction, ...], int]:
        """Move a level-2 hit back into level 1 (cascade MRU insertion)."""
        ev = self.banks[home].invalidate(line)
        assert ev is not None
        del self._where[line]
        fill_bank_id = self._level1_bank(core, part, line)
        evictions, migrations = self._fill_with_demotion(
            core, part, line, fill_bank_id, dirty=ev.dirty
        )
        self.stats.migrations += 1
        return evictions, migrations + 1

    # -- introspection ------------------------------------------------------

    def contains(self, line: int) -> bool:
        if self._mode == "shared" and self.placement == "hash":
            return self.banks[self.shared_home(line)].probe(line)
        return line in self._where

    def bank_of(self, line: int) -> int | None:
        if self._mode == "shared" and self.placement == "hash":
            home = self.shared_home(line)
            return home if self.banks[home].probe(line) else None
        return self._where.get(line)

    def occupancy(self) -> int:
        return sum(b.occupancy() for b in self.banks)

    def publish_metrics(self, registry: MetricsRegistry) -> None:
        """Publish cache-level totals into a telemetry registry.

        Pull-style on purpose: the access path never touches the registry,
        so untraced runs pay nothing.  Every value is simulated state,
        identical between serial and parallel runs.
        """
        registry.counter("l2.hits").inc(self.stats.total_hits())
        registry.counter("l2.misses").inc(self.stats.total_misses())
        registry.counter("l2.migrations").inc(self.stats.migrations)
        registry.counter("l2.writebacks").inc(self.stats.writebacks)
        registry.gauge("l2.occupancy").set(self.occupancy())
        per_bank = registry.histogram("l2.bank_occupancy")
        for bank in self.banks:
            per_bank.observe(bank.occupancy())
        hit_hist = registry.histogram("l2.bank_hits")
        miss_hist = registry.histogram("l2.bank_misses")
        for bank in self.banks:
            hit_hist.observe(bank.stats.total_hits())
            miss_hist.observe(bank.stats.total_misses())

    def flush(self) -> int:
        """Invalidate everything (returns the number of lines dropped)."""
        dropped = 0
        for bank in self.banks:
            for line in bank.resident_lines():
                bank.invalidate(line)
                dropped += 1
        self._where.clear()
        return dropped
