"""A full cache hierarchy (per-core L1s over the shared NUCA L2).

The timing experiments drive the L2 reference stream directly; this module
composes the untimed functional hierarchy for the quickstart/hierarchy
examples and for tests that need L1 filtering or writeback traffic to be
modelled explicitly.  The hierarchy is non-inclusive/non-exclusive (mostly
inclusive in practice), like the multi-level industrial designs the paper
contrasts with free-form NUCA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.l1 import L1Cache
from repro.cache.nuca import AccessResult, NucaL2
from repro.config import SystemConfig
from repro.util.bits import line_address


@dataclass
class HierarchyResult:
    """Where an access was served: ``"l1"``, ``"l2"`` or ``"memory"``."""

    level: str
    l2_result: AccessResult | None = None


class CacheHierarchy:
    """Per-core L1 caches in front of the shared banked L2."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = (config or SystemConfig()).validate()
        self.l1s = [L1Cache(self.config.l1) for _ in range(self.config.num_cores)]
        self.l2 = NucaL2(self.config.l2, self.config.num_cores)

    def access(
        self, core: int, address: int, *, is_write: bool = False
    ) -> HierarchyResult:
        """A CPU load/store: filters through the core's L1, then the L2."""
        if not 0 <= core < self.config.num_cores:
            raise IndexError(f"core {core} out of range")
        line = line_address(address)
        l1_hit, l1_evict = self.l1s[core].access(line, is_write=is_write)
        if l1_evict is not None and l1_evict.dirty:
            self._writeback(core, l1_evict.tag)
        if l1_hit:
            return HierarchyResult("l1")
        result = self.l2.access(core, line, is_write=is_write)
        return HierarchyResult("l2" if result.hit else "memory", result)

    def _writeback(self, core: int, line: int) -> None:
        """Write a dirty L1 victim down into the L2 (write-allocate)."""
        bank_id = self.l2.bank_of(line)
        if bank_id is not None:
            bank = self.l2.banks[bank_id]
            bank.sets[bank.set_index(line)].set_dirty(line)
        else:
            self.l2.access(core, line, is_write=True)
