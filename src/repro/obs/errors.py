"""Typed errors of the run observatory.

All derive from :class:`~repro.resilience.errors.ReproError`, so the CLI's
contained-failure handling (clean message, exit 2) covers them for free.
"""

from __future__ import annotations

from repro.errors import ReproError


class ObsError(ReproError):
    """A run-store, diff, watch or gate operation failed cleanly."""
