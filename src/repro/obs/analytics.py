"""Cross-run analytics: query time series and the run store.

Three read-side tools over artifacts the rest of the stack already
produces:

* :func:`series_stats` + renderers — ``repro stats <run|trace>``:
  aggregate/quantile any column of a per-epoch time series
  (:mod:`repro.obs.series`), as text, JSON or CSV;
* :func:`query_runs` + renderers — ``repro runs query``: filter stored
  runs by source/scheme/workload/config-fingerprint/date and tabulate
  their headline metrics;
* :func:`attribute_delta` — ``repro bench --attribute OLD NEW``: use the
  span self-time profile recorded by the bench suite to attribute a
  throughput delta between two reports to the phase that moved.

Everything here is deterministic given its inputs: quantiles are exact
nearest-rank over the stored values (no histogram estimation), rows sort
on stable keys, and JSON output is ``sort_keys`` canonical — which is
what lets golden tests assert the rendered output verbatim.
"""

from __future__ import annotations

import csv
import io
import json
import math
from collections.abc import Iterable, Mapping, Sequence
from fnmatch import fnmatchcase
from pathlib import Path

from repro.obs.errors import ObsError
from repro.obs.series import build_series, load_series
from repro.obs.store import RunRecord, RunStore

#: the quantiles ``repro stats`` reports per column.
STAT_QUANTILES = (0.5, 0.95)


def resolve_series(spec: str, store: RunStore) -> dict:
    """A series payload from a run id, a sidecar path, or a trace path.

    A stored run uses its archived sidecar when present (falling back to
    building from its trace); a filesystem path is loaded as a sidecar
    when it ends in ``.gz``, otherwise parsed as a JSONL trace and built
    on the fly.
    """
    candidate = Path(spec)
    if candidate.is_file():
        if candidate.name.endswith(".gz"):
            return load_series(candidate)
        from repro.telemetry.tracer import read_jsonl

        return build_series(read_jsonl(candidate))
    record = store.get(spec)
    series = record.series_path
    if series is not None and series.is_file():
        return load_series(series)
    trace = record.trace_path
    if trace is None or not trace.is_file():
        raise ObsError(
            f"run {spec!r} has neither a time-series sidecar nor a trace"
        )
    from repro.telemetry.tracer import read_jsonl

    return build_series(read_jsonl(trace))


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank ``q``-quantile of ``values`` (0 < q <= 1), exact."""
    if not 0.0 < q <= 1.0:
        raise ObsError(f"quantile must be in (0, 1], got {q}")
    if not values:
        raise ObsError("quantile of an empty series")
    ordered = sorted(values)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


def _numeric(values: Iterable[object]) -> list[float]:
    """The numeric, non-null cells of one column (bool is not numeric)."""
    return [
        float(v) for v in values
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ]


def series_stats(payload: Mapping, select: str | None = None) -> list[dict]:
    """Aggregate rows — one per (scheme, numeric column) — of a series.

    ``select`` filters column names: a substring match, or a glob when it
    contains wildcard characters (``ways.*``).  Columns with no numeric
    cells (e.g. ``policy``) are skipped.  Rows sort by (scheme, column).
    """
    rows = []
    for scheme in sorted(payload.get("schemes", {})):
        table = payload["schemes"][scheme]
        for name in sorted(table["columns"]):
            if select:
                if any(ch in select for ch in "*?["):
                    if not fnmatchcase(name, select):
                        continue
                elif select not in name:
                    continue
            values = _numeric(table["columns"][name])
            if not values:
                continue
            row = {
                "scheme": scheme,
                "column": name,
                "count": len(values),
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
                "last": values[-1],
            }
            for q in STAT_QUANTILES:
                row[f"p{int(q * 100)}"] = exact_quantile(values, q)
            rows.append(row)
    return rows


_STAT_FIELDS = ("scheme", "column", "count", "min", "max", "mean",
                "p50", "p95", "last")


def render_stats_text(rows: Sequence[Mapping], *, title: str = "") -> str:
    if not rows:
        return "no numeric series matched"
    from repro.analysis.report import format_table

    return format_table(
        list(_STAT_FIELDS),
        [[row[f] for f in _STAT_FIELDS] for row in rows],
        title=title or None,
        float_format="{:.6g}",
    )


def render_stats_json(rows: Sequence[Mapping]) -> str:
    return json.dumps(list(rows), indent=2, sort_keys=True)


def render_stats_csv(rows: Sequence[Mapping]) -> str:
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(_STAT_FIELDS),
                            lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({f: row[f] for f in _STAT_FIELDS})
    return buf.getvalue().rstrip("\n")


# -- run-store queries -------------------------------------------------------


def _headline_schemes(manifest: Mapping) -> list[str]:
    headline = manifest.get("headline") or {}
    schemes = headline.get("schemes")
    return sorted(schemes) if isinstance(schemes, Mapping) else []


def query_runs(
    records: Iterable[RunRecord],
    *,
    source: str | None = None,
    scheme: str | None = None,
    workload: str | None = None,
    fingerprint: str | None = None,
    since: str | None = None,
    until: str | None = None,
) -> list[RunRecord]:
    """Filter archived runs on manifest provenance.

    ``scheme`` matches comparison headlines carrying that scheme;
    ``workload`` any archived workload name (substring); ``fingerprint``
    a config-fingerprint prefix; ``since``/``until`` compare against the
    manifest's ISO-8601 ``created`` stamp lexicographically, so any
    prefix (``2026-08``) works.
    """
    out = []
    for record in records:
        manifest = record.manifest
        if source is not None and manifest.get("source") != source:
            continue
        if scheme is not None and scheme not in _headline_schemes(manifest):
            continue
        if workload is not None and not any(
            workload in name for name in (manifest.get("workloads") or [])
        ):
            continue
        if fingerprint is not None and not str(
            manifest.get("config_fingerprint", "")
        ).startswith(fingerprint):
            continue
        created = str(manifest.get("created", ""))
        if since is not None and created < since:
            continue
        if until is not None and created[:len(until)] > until:
            continue
        out.append(record)
    return out


def _headline_cell(manifest: Mapping) -> str:
    """One compact headline string per run, shape-aware."""
    headline = manifest.get("headline") or {}
    if "schemes" in headline:
        cells = []
        for scheme in sorted(headline["schemes"]):
            entry = headline["schemes"][scheme]
            rel = entry.get("relative_miss_rate")
            cells.append(
                f"{scheme}={rel:.3f}" if isinstance(rel, (int, float))
                else scheme
            )
        return " ".join(cells)
    if "miss_rate" in headline:
        return f"miss_rate={headline['miss_rate']:.4f}"
    if "mean_bank_aware_ratio" in headline:
        return (
            f"bank_aware={headline['mean_bank_aware_ratio']:.3f} "
            f"over {headline.get('mixes', '?')} mixes"
        )
    return "-"


def runs_query_rows(records: Iterable[RunRecord]) -> list[dict]:
    """Tabulated headline rows of a query result (JSON-ready)."""
    rows = []
    for record in records:
        manifest = record.manifest
        rows.append({
            "run_id": record.run_id,
            "created": manifest.get("created", "?"),
            "source": manifest.get("source", "?"),
            "fingerprint": str(
                manifest.get("config_fingerprint", "")
            )[:8],
            "workloads": ",".join(manifest.get("workloads") or []) or "-",
            "trace_events": manifest.get("trace_events"),
            "timeseries_epochs": manifest.get("timeseries_epochs"),
            "headline": _headline_cell(manifest),
        })
    return rows


def render_runs_query_text(rows: Sequence[Mapping]) -> str:
    if not rows:
        return "no stored runs matched"
    from repro.analysis.report import format_table

    headers = ("run_id", "created", "source", "config", "epochs",
               "headline")
    return format_table(
        list(headers),
        [
            [row["run_id"], row["created"], row["source"],
             row["fingerprint"],
             row["timeseries_epochs"]
             if row["timeseries_epochs"] is not None else "-",
             row["headline"]]
            for row in rows
        ],
        title=f"Stored runs ({len(rows)} matched)",
    )


# -- bench span attribution --------------------------------------------------


def _span_profile(report: Mapping) -> tuple[float, dict[str, float]]:
    """(throughput, per-phase self seconds) of one bench report."""
    for bench in report.get("benchmarks", []):
        meta = bench.get("meta") or {}
        if "span_self_s" in meta:
            return float(bench["throughput"]), dict(meta["span_self_s"])
    raise ObsError(
        "bench report carries no span profile — re-run 'repro bench' "
        "(the detailed_epoch_spans entry records span_self_s)"
    )


def attribute_delta(old: Mapping, new: Mapping) -> dict:
    """Attribute a throughput delta between two bench reports to the
    span phase whose self time moved the most.

    Phases are compared on *per-epoch-normalised* self seconds (each
    profile is scaled by its own total so differing run lengths cancel);
    the mover is the phase with the largest absolute share shift.
    """
    old_tp, old_self = _span_profile(old)
    new_tp, new_self = _span_profile(new)
    old_total = sum(old_self.values()) or 1.0
    new_total = sum(new_self.values()) or 1.0
    phases = []
    for path in sorted(set(old_self) | set(new_self)):
        old_share = old_self.get(path, 0.0) / old_total
        new_share = new_self.get(path, 0.0) / new_total
        phases.append({
            "path": path,
            "old_self_s": old_self.get(path, 0.0),
            "new_self_s": new_self.get(path, 0.0),
            "old_share": old_share,
            "new_share": new_share,
            "share_shift": new_share - old_share,
        })
    phases.sort(key=lambda p: (-abs(p["share_shift"]), p["path"]))
    return {
        "old_throughput": old_tp,
        "new_throughput": new_tp,
        "delta_pct": (new_tp - old_tp) / old_tp * 100.0 if old_tp else 0.0,
        "phases": phases,
        "mover": phases[0]["path"] if phases else None,
    }


def render_attribution_text(result: Mapping) -> str:
    from repro.analysis.report import format_table

    lines = [
        f"throughput {result['old_throughput']:.4g} -> "
        f"{result['new_throughput']:.4g} "
        f"({result['delta_pct']:+.1f}%)",
    ]
    if result["mover"] is not None:
        lines.append(
            f"largest phase shift: {result['mover']} "
            f"({result['phases'][0]['share_shift']:+.1%} of self time)"
        )
    lines.append(format_table(
        ["phase", "old self s", "new self s", "old share", "new share",
         "shift"],
        [
            [p["path"], f"{p['old_self_s']:.4f}", f"{p['new_self_s']:.4f}",
             f"{p['old_share']:.1%}", f"{p['new_share']:.1%}",
             f"{p['share_shift']:+.1%}"]
            for p in result["phases"]
        ],
        title="Span self-time attribution",
    ))
    return "\n".join(lines)


__all__ = (
    "STAT_QUANTILES",
    "attribute_delta",
    "exact_quantile",
    "query_runs",
    "render_attribution_text",
    "render_runs_query_text",
    "render_stats_csv",
    "render_stats_json",
    "render_stats_text",
    "resolve_series",
    "runs_query_rows",
    "series_stats",
)
