"""Live monitoring of a growing JSONL trace (``repro watch``).

Long sweeps (``montecarlo --trace``, detailed sweeps) append events to
their trace file while running (the tracer's live sink) and atomically
*replace* it with the complete durable stream at the end
(:func:`repro.telemetry.tracer.write_jsonl`).  :class:`TailReader`
follows both phases:

* **growth** — reads only the bytes past its resumable offset, buffering
  a partial trailing line until its newline arrives (an in-flight append
  is never a parse error);
* **replacement** — detects the atomic swap (new inode, or a file shorter
  than the old offset) and transparently restarts from byte zero,
  flagging the reset so aggregated state can be rebuilt.

:class:`WatchView` aggregates the polled events into the live picture a
terminal wants: event counts, guard-ladder activity, and — from the
``progress`` heartbeats the sweep harnesses emit — throughput and ETA.
With ``metrics=True`` it additionally runs each ``bank_snapshot``
through the *same* per-epoch row projection the time-series sidecar
uses (:func:`repro.obs.series._snapshot_row` semantics), so ``repro
watch --metrics`` shows the latest epoch's miss rates, partition and
bank pressure exactly as ``repro stats`` will report them afterwards.

The polling loop's wall-clock sleeps are the point of this module; it is
scoped under ``det002-allow`` alongside the other measurement harnesses.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.errors import ObsError


@dataclass(frozen=True)
class TailChunk:
    """One poll's outcome: freshly parsed events, and whether the file
    was replaced/truncated since the previous poll (``reset=True`` means
    ``events`` restarts from the top of the new file)."""

    events: list[dict]
    reset: bool = False


class TailReader:
    """Incremental JSONL reader with a resumable offset.

    Each :meth:`poll` parses only complete new lines; a partial trailing
    line (a writer mid-append) stays buffered for the next poll.  A
    *complete* line that fails to parse raises :class:`ObsError` — after
    an atomic replace the file is always well-formed, so damage is real.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.offset = 0
        self._buffer = b""
        self._inode: int | None = None
        #: total file replacements observed (atomic rewrites).
        self.resets = 0

    def poll(self) -> TailChunk:
        """Parse everything new since the last poll (missing file = empty)."""
        try:
            fh = open(self.path, "rb")
        except FileNotFoundError:
            return TailChunk([])
        with fh:
            stat = os.fstat(fh.fileno())
            reset = (
                self._inode is not None and stat.st_ino != self._inode
            ) or stat.st_size < self.offset
            if reset:
                self.offset = 0
                self._buffer = b""
                self.resets += 1
            self._inode = stat.st_ino
            fh.seek(self.offset)
            data = fh.read()
            self.offset = fh.tell()
        if not data and not reset:
            return TailChunk([])
        self._buffer += data
        events = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                break  # partial trailing line: wait for the writer
            line = self._buffer[:newline].strip()
            self._buffer = self._buffer[newline + 1:]
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObsError(
                    f"{self.path}: damaged trace line: {exc}"
                ) from exc
            if not isinstance(event, Mapping):
                raise ObsError(
                    f"{self.path}: trace line is not a JSON object"
                )
            events.append(dict(event))
        return TailChunk(events, reset)


@dataclass
class WatchView:
    """Rolling aggregation of a watched stream."""

    metrics: bool = False
    total_events: int = 0
    counts: dict = field(default_factory=dict)
    guard_kinds: dict = field(default_factory=dict)
    last_progress: dict | None = None
    sources: list = field(default_factory=list)
    #: per-scheme time-series state (metrics mode): the same shape the
    #: sidecar builder keeps, plus the latest projected row.
    series_state: dict = field(default_factory=dict)

    def update(self, chunk: TailChunk) -> None:
        """Absorb one poll (a reset rebuilds the view from scratch)."""
        if chunk.reset:
            self.total_events = 0
            self.counts = {}
            self.guard_kinds = {}
            self.last_progress = None
            self.sources = []
            self.series_state = {}
        for event in chunk.events:
            etype = str(event.get("type", "?"))
            self.total_events += 1
            self.counts[etype] = self.counts.get(etype, 0) + 1
            if etype == "guard_action":
                kind = str(event.get("kind", "?"))
                self.guard_kinds[kind] = self.guard_kinds.get(kind, 0) + 1
            elif etype == "progress":
                self.last_progress = event
            elif etype == "run_meta":
                source = event.get("source")
                if source and source not in self.sources:
                    self.sources.append(source)
            if self.metrics:
                self._track_series(event)

    def _track_series(self, event: Mapping) -> None:
        """Feed one event through the sidecar's row projection."""
        from repro.obs.series import _snapshot_row

        etype = event.get("type")
        if etype not in (
            "bank_snapshot", "epoch_decision", "guard_action", "epoch_skip"
        ):
            return
        key = str(event.get("scheme", ""))
        st = self.series_state.get(key)
        if st is None:
            st = self.series_state[key] = {
                "prev": None, "decision": None,
                "guard": 0, "skips": 0, "latest": None,
            }
        if etype == "epoch_decision":
            st["decision"] = event
        elif etype == "guard_action":
            st["guard"] += 1
        elif etype == "epoch_skip":
            st["skips"] += 1
        else:
            try:
                st["latest"] = _snapshot_row(event, st)
            except (KeyError, TypeError, IndexError):
                return  # damaged / partial snapshot: keep the old row
            st["prev"] = event
            st["guard"] = 0
            st["skips"] = 0

    def render_metrics(self) -> list[str]:
        """One compact line per scheme from the latest projected row."""
        lines = []
        for key in sorted(self.series_state):
            row = self.series_state[key]["latest"]
            if row is None:
                continue
            label = f" [{key}]" if key else ""
            parts = [f"epoch {row['epoch']}"]
            miss = [
                f"{row[name]:.3f}"
                for name in sorted(row) if name.startswith("core_miss_rate.")
            ]
            if miss:
                parts.append(f"miss={'/'.join(miss)}")
            ways = [
                str(row[name])
                for name in sorted(row) if name.startswith("ways.")
            ]
            if ways:
                parts.append(f"ways={'/'.join(ways)}")
            delays = [
                row[name]
                for name in sorted(row)
                if name.startswith("bank_queue_delay.")
            ]
            if delays:
                parts.append(f"peak bank delay={max(delays):.2f}cyc")
            parts.append(f"migr={row['migrations']}")
            if row["guard_actions"]:
                parts.append(f"guard={row['guard_actions']}")
            lines.append(f"metrics{label}: " + ", ".join(parts))
        return lines

    @property
    def complete(self) -> bool:
        """True once a terminal ``progress`` heartbeat (done == total) has
        been observed."""
        p = self.last_progress
        return (
            p is not None
            and p.get("total", 0) > 0
            and p.get("done") == p.get("total")
        )

    def render(self) -> str:
        """The live picture as a short multi-line block."""
        lines = [
            f"events: {self.total_events} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.counts.items()))})"
        ]
        if self.sources:
            lines[0] = f"run: {'+'.join(self.sources)} | " + lines[0]
        p = self.last_progress
        if p is not None:
            done, total = p.get("done", 0), p.get("total", 0)
            wall = float(p.get("wall_s", 0.0))
            pct = 100.0 * done / total if total else 0.0
            line = f"progress: {done}/{total} ({pct:.1f}%)"
            if wall > 0 and done:
                rate = done / wall
                line += f", {rate:.2f} items/s"
                if total > done:
                    line += f", ETA {format_eta((total - done) / rate)}"
            if self.complete:
                line += " — complete"
            lines.append(line)
        if self.guard_kinds:
            lines.append(
                "guard actions: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.guard_kinds.items())
                )
            )
        if self.metrics:
            lines.extend(self.render_metrics())
        return "\n".join(lines)


def format_eta(seconds: float) -> str:
    """Compact h/m/s rendering of a remaining-time estimate."""
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def watch_trace(
    path: str | Path,
    *,
    interval: float = 1.0,
    once: bool = False,
    timeout: float | None = None,
    metrics: bool = False,
    emit: Callable[[str], None] = print,
) -> int:
    """Follow a (possibly still-growing) trace until it completes.

    Prints a status block whenever new events arrive; returns 0 once a
    terminal progress heartbeat is seen (or immediately with ``once``),
    and 1 if ``timeout`` elapses first.  ``metrics`` appends the latest
    epoch's time-series row per scheme.  ``emit`` is injectable for
    tests.
    """
    reader = TailReader(path)
    view = WatchView(metrics=metrics)
    start = time.monotonic()
    while True:
        chunk = reader.poll()
        view.update(chunk)
        if chunk.events or chunk.reset or once:
            emit(view.render())
        if once:
            return 0
        if view.complete:
            emit(f"watch: run complete after {view.total_events} events")
            return 0
        if timeout is not None and time.monotonic() - start >= timeout:
            emit(f"watch: timed out after {timeout:g}s")
            return 1
        time.sleep(interval)
