"""The run store: archive every invocation with its provenance.

``repro simulate/compare/montecarlo --store DIR`` archives one directory
per run under ``DIR`` (default ``.repro-runs/``):

.. code-block:: text

    .repro-runs/
      compare-20260806-142501-1a2b3c4d/
        manifest.json      # provenance + headline results (see below)
        trace.jsonl        # the telemetry stream, when the run was traced

The manifest binds the *what* (workload mix, settings, headline results,
metrics snapshot) to the *under which conditions* (config fingerprint, git
revision, telemetry schema version, creation time), which is what makes
run pairs comparable months later: ``repro runs list|show`` queries the
store, ``repro diff`` resolves run ids through it.

Wall-clock reads here are deliberate (a manifest *is* a timestamped
record) and scoped via ``det002-allow`` like the other measurement
harnesses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import time
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.obs.errors import ObsError
from repro.obs.series import SERIES_NAME, build_series, write_series
from repro.telemetry.events import SCHEMA_VERSION
from repro.telemetry.tracer import read_jsonl, write_jsonl
from repro.util.atomic_write import atomic_write_bytes, atomic_write_text

if TYPE_CHECKING:  # annotation-only; keeps repro.obs a leaf package
    from repro.analysis.montecarlo import MonteCarloResult
    from repro.sim.runner import SchemeComparison
    from repro.sim.stats import SystemResult

MANIFEST_FORMAT = "repro-run-manifest"
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
TRACE_NAME = "trace.jsonl"

#: default store root (relative to the invocation's working directory).
DEFAULT_STORE = ".repro-runs"


def git_rev(anchor: str | Path | None = None) -> str:
    """Short git revision of the tree containing ``anchor`` (or this file),
    or ``"unknown"`` outside a repository."""
    cwd = (
        Path(anchor) if anchor is not None
        else Path(__file__).resolve().parent
    )
    if cwd.is_file():
        cwd = cwd.parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def config_fingerprint(config: SystemConfig) -> str:
    """Short stable digest of every field of the machine description.

    Two runs with equal fingerprints ran on the same simulated machine;
    the digest is over the canonical JSON of the config dataclass tree
    (non-JSON leaves fall back to ``repr``, which is stable for the
    frozen dataclasses used throughout).
    """
    payload = dataclasses.asdict(config)
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _guard_kind_counts(
    guard_events: Sequence[tuple[float, str, str, str]],
) -> dict[str, int]:
    counts: dict[str, int] = {}
    for _time, kind, _detail, _mode in guard_events:
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def headline_from_result(result: "SystemResult") -> dict:
    """Headline figures of one :class:`~repro.sim.stats.SystemResult`."""
    return {
        "miss_rate": result.miss_rate,
        "mean_cpi": result.mean_cpi,
        "migrations": result.migrations,
        "epochs": len(result.epochs),
        "guard_actions": len(result.guard_events),
        "guard_kinds": _guard_kind_counts(result.guard_events),
    }


def headline_from_comparison(comparison: "SchemeComparison") -> dict:
    """Headline figures of one :class:`~repro.sim.runner.SchemeComparison`:
    per-scheme miss rates plus misses/CPI relative to No-partitions."""
    schemes = {}
    for scheme, result in comparison.results.items():
        entry = headline_from_result(result)
        entry["relative_miss_rate"] = comparison.relative_miss_rate(scheme)
        entry["relative_cpi"] = comparison.relative_cpi(scheme)
        schemes[scheme] = entry
    return {"schemes": schemes}


def headline_from_montecarlo(result: "MonteCarloResult") -> dict:
    """Headline figures of one
    :class:`~repro.analysis.montecarlo.MonteCarloResult`.  Ranked sweeps
    (``--rank-policies``) additionally archive the per-policy mean miss
    ratios; plain Fig. 7 manifests keep their historical key set."""
    headline = {
        "mixes": len(result.points),
        "mean_unrestricted_ratio": result.mean_unrestricted_ratio,
        "mean_bank_aware_ratio": result.mean_bank_aware_ratio,
        "restriction_penalty": result.restriction_penalty(),
    }
    ranking = result.policy_ranking()
    if ranking:
        headline["policy_ranking"] = [
            [name, ratio] for name, ratio in ranking
        ]
    return headline


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One archived run: its id, directory, and parsed manifest."""

    run_id: str
    path: Path
    manifest: dict

    @property
    def trace_path(self) -> Path | None:
        """Absolute path of the archived trace, or ``None`` if untraced."""
        name = self.manifest.get("trace")
        return self.path / name if name else None

    @property
    def series_path(self) -> Path | None:
        """Absolute path of the time-series sidecar, or ``None``."""
        name = self.manifest.get("timeseries")
        return self.path / name if name else None


class RunStore:
    """Directory of archived runs (one subdirectory per run)."""

    def __init__(self, root: str | Path = DEFAULT_STORE) -> None:
        self.root = Path(root)

    def archive(
        self,
        *,
        source: str,
        config: SystemConfig,
        workloads: Sequence[str] | None = None,
        settings: Mapping[str, object] | None = None,
        headline: Mapping[str, object] | None = None,
        metrics: Mapping[str, object] | None = None,
        supervisor: Mapping[str, object] | None = None,
        trace_events: Sequence[Mapping] | None = None,
        trace_file: str | Path | None = None,
    ) -> RunRecord:
        """Archive one run and return its record.

        ``trace_events`` (an in-memory stream) or ``trace_file`` (an
        existing JSONL file, copied) attaches the telemetry stream; both
        ``None`` archives an untraced run with ``trace: null``.
        ``supervisor`` attaches a fabric supervision summary (retry /
        timeout / quarantine / degrade counts, final ladder rung,
        dead-letter entries) so ``repro runs show`` explains how a run
        survived, not just what it computed.
        """
        fingerprint = config_fingerprint(config)
        created = time.time()
        run_id = self._fresh_run_id(source, created, fingerprint)
        run_dir = self.root / run_id
        run_dir.mkdir(parents=True)
        trace_name: str | None = None
        trace_count: int | None = None
        if trace_events is not None:
            write_jsonl(run_dir / TRACE_NAME, trace_events)
            trace_name = TRACE_NAME
            trace_count = len(trace_events)
        elif trace_file is not None:
            try:
                data = Path(trace_file).read_bytes()
            except OSError as exc:
                raise ObsError(
                    f"cannot archive trace {trace_file}: {exc}"
                ) from exc
            atomic_write_bytes(run_dir / TRACE_NAME, data)
            trace_name = TRACE_NAME
            trace_count = sum(
                1 for line in data.splitlines() if line.strip()
            )
            trace_events = read_jsonl(run_dir / TRACE_NAME)
        series_name: str | None = None
        series_epochs: int | None = None
        if trace_events is not None:
            # derived from the canonical projection, so the sidecar is
            # byte-identical across backends and --jobs values
            series = build_series(trace_events)
            if series["schemes"]:
                write_series(run_dir / SERIES_NAME, series)
                series_name = SERIES_NAME
                series_epochs = sum(
                    table["rows"] for table in series["schemes"].values()
                )
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "created_unix": created,
            "created": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(created)
            ),
            "source": source,
            "git_rev": git_rev(),
            "schema_version": SCHEMA_VERSION,
            "config_fingerprint": fingerprint,
            "workloads": list(workloads) if workloads is not None else None,
            "settings": dict(settings) if settings is not None else {},
            "headline": dict(headline) if headline is not None else {},
            "metrics": dict(metrics) if metrics is not None else None,
            "supervisor": dict(supervisor) if supervisor is not None else None,
            "trace": trace_name,
            "trace_events": trace_count,
            "timeseries": series_name,
            "timeseries_epochs": series_epochs,
        }
        atomic_write_text(
            run_dir / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
        return RunRecord(run_id, run_dir, manifest)

    def _fresh_run_id(
        self, source: str, created: float, fingerprint: str
    ) -> str:
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(created))
        base = f"{source}-{stamp}-{fingerprint[:8]}"
        run_id = base
        suffix = 2
        while (self.root / run_id).exists():
            run_id = f"{base}-{suffix}"
            suffix += 1
        return run_id

    def list(self) -> list[RunRecord]:
        """Every archived run, oldest first (unreadable entries skipped)."""
        if not self.root.is_dir():
            return []
        records = []
        for entry in self.root.iterdir():
            manifest_path = entry / MANIFEST_NAME
            if not manifest_path.is_file():
                continue
            try:
                manifest = json.loads(
                    manifest_path.read_text(encoding="utf-8")
                )
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(manifest, dict)
                and manifest.get("format") == MANIFEST_FORMAT
            ):
                records.append(RunRecord(entry.name, entry, manifest))
        records.sort(
            key=lambda r: (r.manifest.get("created_unix", 0.0), r.run_id)
        )
        return records

    def get(self, run_id: str) -> RunRecord:
        """The archived run named ``run_id`` (raises :class:`ObsError`)."""
        manifest_path = self.root / run_id / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ObsError(
                f"no run {run_id!r} in store {self.root} "
                f"(see 'repro runs list')"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ObsError(f"unreadable manifest for {run_id!r}: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != MANIFEST_FORMAT
        ):
            raise ObsError(f"{manifest_path} is not a run manifest")
        return RunRecord(run_id, self.root / run_id, manifest)

    def resolve_trace(self, spec: str) -> Path:
        """A trace path from either a filesystem path or a stored run id."""
        candidate = Path(spec)
        if candidate.is_file():
            return candidate
        record = self.get(spec)
        trace = record.trace_path
        if trace is None or not trace.is_file():
            raise ObsError(f"run {spec!r} was archived without a trace")
        return trace
