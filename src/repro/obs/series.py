"""Per-epoch time-series: a compact columnar sidecar next to the trace.

The event stream already carries everything needed to answer "how did
miss rate / partition / bank pressure evolve over epochs?" — it is just
inconvenient to query.  :func:`build_series` projects a trace onto a
columnar per-epoch table, one row per ``bank_snapshot`` (epoch installs
plus the end-of-run ``epoch=-1`` snapshot), per scheme:

* ``core_miss_rate.cN`` — the epoch's per-core miss rate (windowed
  deltas of the cumulative ``core_hits``/``core_misses`` counters);
* ``ways.cN`` / ``policy`` — the most recent installed decision;
* ``bank_accesses.bN`` / ``bank_queue_delay.bN`` — the epoch's per-bank
  served accesses and mean port-queue delay (cycles per access);
* ``migrations`` / ``writebacks`` — windowed deltas;
* ``guard_actions`` / ``epoch_skips`` — actions since the previous row.

Determinism is inherited, not re-established: the series is a pure
function of :func:`~repro.telemetry.events.canonical_events`, so a serial
and a ``--jobs N`` run — and the reference and batched sim backends —
produce byte-identical sidecars.  :func:`write_series` pins the gzip
header (``mtime=0``) and uses canonical JSON, making the *file* identical
too, which is what the CI byte-identity gate compares.
"""

from __future__ import annotations

import gzip
import io
import json
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.obs.errors import ObsError
from repro.telemetry.events import SCHEMA_VERSION, canonical_events

SERIES_FORMAT = "repro-timeseries"
SERIES_VERSION = 1

#: sidecar filename, next to ``trace.jsonl`` in an archived run.
SERIES_NAME = "timeseries.json.gz"


def _snapshot_row(event: Mapping, state: dict) -> dict:
    """One series row from a ``bank_snapshot`` and the accumulated
    since-last-row state (previous snapshot, latest decision, action
    counts)."""
    prev = state["prev"]
    row: dict = {"epoch": event["epoch"], "time": event["time"]}
    nbanks = len(event["hits"])
    for b in range(nbanks):
        served = event["queue_served"][b] - (
            prev["queue_served"][b] if prev else 0
        )
        delay = event["queue_delay"][b] - (
            prev["queue_delay"][b] if prev else 0.0
        )
        row[f"bank_accesses.b{b}"] = served
        row[f"bank_queue_delay.b{b}"] = delay / served if served else 0.0
    row["migrations"] = event["migrations"] - (
        prev["migrations"] if prev else 0
    )
    row["writebacks"] = event["writebacks"] - (
        prev["writebacks"] if prev else 0
    )
    hits = event.get("core_hits")
    misses = event.get("core_misses")
    if hits is not None and misses is not None:
        prev_hits = prev.get("core_hits") if prev else None
        prev_misses = prev.get("core_misses") if prev else None
        for c in range(len(hits)):
            dh = hits[c] - (prev_hits[c] if prev_hits else 0)
            dm = misses[c] - (prev_misses[c] if prev_misses else 0)
            accesses = dh + dm
            row[f"core_miss_rate.c{c}"] = dm / accesses if accesses else 0.0
    decision = state["decision"]
    if decision is not None:
        for c, ways in enumerate(decision["ways"]):
            row[f"ways.c{c}"] = ways
        row["policy"] = decision.get("policy", decision["algorithm"])
    row["guard_actions"] = state["guard"]
    row["epoch_skips"] = state["skips"]
    return row


def _columnar(rows: list[dict]) -> dict:
    """Row dicts to aligned columns (missing cells become ``null``)."""
    names = sorted({name for row in rows for name in row})
    return {
        "rows": len(rows),
        "columns": {
            name: [row.get(name) for row in rows] for name in names
        },
    }


def build_series(events: Iterable[Mapping]) -> dict:
    """The per-epoch time-series payload of one trace's event stream.

    Operates on the canonical projection, so advisory events and
    wall-clock fields can never leak into the series.  Streams without
    ``bank_snapshot`` events (Monte Carlo sweeps) produce an empty
    ``schemes`` map.
    """
    state: dict[str, dict] = {}
    for event in canonical_events(events):
        etype = event["type"]
        if etype not in (
            "bank_snapshot", "epoch_decision", "guard_action", "epoch_skip"
        ):
            continue
        key = event.get("scheme", "")
        st = state.get(key)
        if st is None:
            st = state[key] = {
                "prev": None, "decision": None,
                "guard": 0, "skips": 0, "rows": [],
            }
        if etype == "epoch_decision":
            st["decision"] = event
        elif etype == "guard_action":
            st["guard"] += 1
        elif etype == "epoch_skip":
            st["skips"] += 1
        else:
            st["rows"].append(_snapshot_row(event, st))
            st["prev"] = event
            st["guard"] = 0
            st["skips"] = 0
    return {
        "format": SERIES_FORMAT,
        "version": SERIES_VERSION,
        "schema_version": SCHEMA_VERSION,
        "schemes": {
            key: _columnar(st["rows"])
            for key, st in sorted(state.items())
            if st["rows"]
        },
    }


def validate_series(payload: object) -> list[str]:
    """Problems with one series payload (empty list = valid)."""
    if not isinstance(payload, Mapping):
        return ["series payload is not a JSON object"]
    problems = []
    if payload.get("format") != SERIES_FORMAT:
        problems.append(
            f"format is {payload.get('format')!r}, expected "
            f"{SERIES_FORMAT!r}"
        )
    if payload.get("version") != SERIES_VERSION:
        problems.append(f"unsupported version {payload.get('version')!r}")
    schemes = payload.get("schemes")
    if not isinstance(schemes, Mapping):
        return problems + ["'schemes' is not a JSON object"]
    for key, table in schemes.items():
        if not isinstance(table, Mapping):
            problems.append(f"scheme {key!r}: table is not a JSON object")
            continue
        rows = table.get("rows")
        columns = table.get("columns")
        if not isinstance(rows, int) or not isinstance(columns, Mapping):
            problems.append(f"scheme {key!r}: missing rows/columns")
            continue
        for name, values in columns.items():
            if not isinstance(values, list) or len(values) != rows:
                problems.append(
                    f"scheme {key!r}: column {name!r} has "
                    f"{len(values) if isinstance(values, list) else '?'} "
                    f"values for {rows} rows"
                )
    return problems


def series_to_bytes(payload: Mapping) -> bytes:
    """Deterministic gzip encoding: canonical JSON, pinned gzip header.

    Fixing ``mtime=0`` (and the default filename-free header) makes the
    byte stream a pure function of the payload, so two runs with equal
    canonical events write *identical files* — the property the CI gate
    asserts with ``cmp``.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    buf = io.BytesIO()
    with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as fh:
        fh.write(text.encode("utf-8"))
    return buf.getvalue()


def write_series(path: str | Path, payload: Mapping) -> None:
    """Write one series sidecar (deterministic bytes, atomic rename)."""
    from repro.util.atomic_write import atomic_write_bytes

    atomic_write_bytes(Path(path), series_to_bytes(payload))


def load_series(path: str | Path) -> dict:
    """Read one series sidecar back (raises :class:`ObsError` on damage)."""
    try:
        with gzip.open(path, "rb") as fh:
            payload = json.loads(fh.read().decode("utf-8"))
    except OSError as exc:
        raise ObsError(f"cannot read time series {path}: {exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError, EOFError) as exc:
        raise ObsError(f"{path} is not a valid time series: {exc}") from exc
    problems = validate_series(payload)
    if problems:
        raise ObsError(
            f"{path} failed series validation: {'; '.join(problems)}"
        )
    return payload


__all__ = (
    "SERIES_FORMAT",
    "SERIES_NAME",
    "SERIES_VERSION",
    "build_series",
    "load_series",
    "series_to_bytes",
    "validate_series",
    "write_series",
)
