"""First-divergence diffing of two telemetry traces (``repro diff``).

The paper's evaluation — and this repository's determinism contract — is
comparative: the interesting question about two runs is never "do the
end-of-run aggregates roughly agree" but "*where* did the decision streams
first part ways".  This module walks two canonical event streams (the
deterministic projection of :func:`repro.telemetry.events.canonical_events`,
wall-clock fields stripped) in lockstep and reports the **first** event at
which they differ, annotated at the domain level:

* ``epoch_decision`` divergence names the epoch and the per-core way
  vector difference (the Rules 1–3 surface: way splits, center-bank
  grants, adjacent-pair sharing);
* ``bank_snapshot`` divergence names the first bank whose hit/miss/
  occupancy counters drifted;
* metric deltas (total misses, decision counts, Monte Carlo mean ratios)
  are reported regardless, with configurable absolute/relative tolerances
  for cross-config comparisons.

With the default zero tolerances the diff doubles as the serial-vs-
``--jobs N`` determinism gate: two runs of the same experiment must
produce *identical* canonical streams, and any non-empty divergence is a
regression.
"""

from __future__ import annotations

import json
import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.telemetry.events import canonical_events

#: domain annotations attached to diverging fields of an epoch_decision —
#: the paper's placement rules make these the semantically loaded ones.
FIELD_NOTES: dict[str, str] = {
    "ways": "per-core way allocation (capacity split feeding Rules 1-3)",
    "center_banks": "center-bank grant — Rule 1: center banks are "
                    "assigned whole to a single core",
    "pairs": "local-bank sharing pairs — Rule 3: only adjacent cores "
             "may way-share a local bank",
    "projected_misses": "MSA-projected misses at the installed allocation",
    "hits": "per-bank cumulative hits",
    "misses": "per-bank cumulative misses",
    "occupancy": "per-bank resident lines",
    "queue_served": "per-bank port-queue served count",
    "queue_delay": "per-bank port-queue delay",
}


@dataclass(frozen=True)
class FieldDiff:
    """One diverging field of the first diverging event pair."""

    name: str
    a: object
    b: object
    note: str | None = None
    #: for list-shaped fields: indices (cores/banks) that differ.
    positions: tuple[int, ...] = ()


@dataclass(frozen=True)
class Divergence:
    """The first stream position where the canonical traces differ."""

    index: int  #: position in the canonical stream
    kind: str  #: 'field' | 'type' | 'length'
    etype_a: str | None
    etype_b: str | None
    epoch: int | None
    scheme: str | None
    fields: tuple[FieldDiff, ...] = ()
    detail: str = ""


@dataclass(frozen=True)
class MetricDelta:
    """One headline metric compared across the two streams."""

    name: str
    a: float
    b: float
    delta: float
    within_tolerance: bool


@dataclass
class DiffReport:
    """Outcome of one trace diff."""

    a_label: str
    b_label: str
    a_events: int
    b_events: int
    divergence: Divergence | None = None
    metrics: list[MetricDelta] = field(default_factory=list)
    #: float field differences waived by the tolerances (count only
    #: informational; the first non-waived difference stops the walk).
    waived: int = 0

    @property
    def identical(self) -> bool:
        """No divergence and every metric within tolerance."""
        return self.divergence is None and all(
            m.within_tolerance for m in self.metrics
        )

    @property
    def exit_code(self) -> int:
        return 0 if self.identical else 1

    def to_dict(self) -> dict:
        """JSON-serialisable form (``repro diff --format json``)."""
        payload: dict = {
            "a": {"label": self.a_label, "events": self.a_events},
            "b": {"label": self.b_label, "events": self.b_events},
            "identical": self.identical,
            "waived_float_diffs": self.waived,
            "metrics": [
                {
                    "name": m.name, "a": m.a, "b": m.b, "delta": m.delta,
                    "within_tolerance": m.within_tolerance,
                }
                for m in self.metrics
            ],
        }
        if self.divergence is not None:
            d = self.divergence
            payload["divergence"] = {
                "index": d.index,
                "kind": d.kind,
                "type_a": d.etype_a,
                "type_b": d.etype_b,
                "epoch": d.epoch,
                "scheme": d.scheme,
                "detail": d.detail,
                "fields": [
                    {
                        "field": f.name, "a": f.a, "b": f.b,
                        "note": f.note, "positions": list(f.positions),
                    }
                    for f in d.fields
                ],
            }
        return payload


def _within(a: float, b: float, rel_tol: float, abs_tol: float) -> bool:
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def _values_differ(
    a: object, b: object, rel_tol: float, abs_tol: float, waived: list[int]
) -> bool:
    """Structural inequality with float leaves compared by tolerance.

    Integers, strings and container shapes must match exactly; float
    leaves within tolerance are tolerated (counted in ``waived``).  A
    bool is never conflated with the ints it subclasses.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        return a is not b
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return True
        if a == b:  # exact match, including int/float cross-typing
            return False
        if _within(float(a), float(b), rel_tol, abs_tol):
            waived[0] += 1
            return False
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return True
        return any(
            _values_differ(x, y, rel_tol, abs_tol, waived)
            for x, y in zip(a, b)
        )
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if set(a) != set(b):
            return True
        return any(
            _values_differ(a[k], b[k], rel_tol, abs_tol, waived) for k in a
        )
    return a != b


def _positions(a: object, b: object) -> tuple[int, ...]:
    """Indices at which two equal-length sequences disagree."""
    if (
        isinstance(a, (list, tuple))
        and isinstance(b, (list, tuple))
        and len(a) == len(b)
    ):
        return tuple(i for i, (x, y) in enumerate(zip(a, b)) if x != y)
    return ()


def _event_diffs(
    ea: Mapping, eb: Mapping, rel_tol: float, abs_tol: float,
    waived: list[int],
) -> list[FieldDiff]:
    diffs = []
    for name in sorted(set(ea) | set(eb)):
        va, vb = ea.get(name), eb.get(name)
        if not _values_differ(va, vb, rel_tol, abs_tol, waived):
            continue
        diffs.append(
            FieldDiff(
                name, va, vb,
                note=FIELD_NOTES.get(name),
                positions=_positions(va, vb),
            )
        )
    return diffs


def _event_epoch(event: Mapping) -> int | None:
    epoch = event.get("epoch")
    if isinstance(epoch, int):
        return epoch
    index = event.get("index")
    return index if isinstance(index, int) else None


def _collect_metrics(events: Sequence[Mapping]) -> dict[str, float]:
    """Headline metrics of one canonical stream, keyed for comparison."""
    metrics: dict[str, float] = {}
    last_snapshot: dict[str, Mapping] = {}
    decisions: dict[str, int] = {}
    guards: dict[str, int] = {}
    mc_ratios: list[float] = []
    for event in events:
        etype = event.get("type")
        scheme = str(event.get("scheme", ""))
        if etype == "bank_snapshot":
            last_snapshot[scheme] = event
        elif etype == "epoch_decision":
            decisions[scheme] = decisions.get(scheme, 0) + 1
        elif etype == "guard_action":
            guards[scheme] = guards.get(scheme, 0) + 1
        elif etype == "mc_point":
            equal = event.get("equal_misses") or 0.0
            bank = event.get("bank_aware_misses") or 0.0
            if equal:
                mc_ratios.append(bank / equal)
    for scheme, snap in last_snapshot.items():
        prefix = f"{scheme}/" if scheme else ""
        metrics[f"{prefix}misses_total"] = float(
            sum(snap.get("misses", []))
        )
        metrics[f"{prefix}hits_total"] = float(sum(snap.get("hits", [])))
        metrics[f"{prefix}migrations"] = float(snap.get("migrations", 0))
    for scheme, count in decisions.items():
        prefix = f"{scheme}/" if scheme else ""
        metrics[f"{prefix}decisions"] = float(count)
    for scheme, count in guards.items():
        prefix = f"{scheme}/" if scheme else ""
        metrics[f"{prefix}guard_actions"] = float(count)
    if mc_ratios:
        metrics["mc/points"] = float(len(mc_ratios))
        metrics["mc/mean_bank_aware_ratio"] = sum(mc_ratios) / len(mc_ratios)
    return metrics


def diff_traces(
    a: Sequence[Mapping],
    b: Sequence[Mapping],
    *,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    a_label: str = "A",
    b_label: str = "B",
) -> DiffReport:
    """First-divergence comparison of two event streams.

    Both streams are projected onto their deterministic fields first, so
    wall-clock jitter never reads as divergence.  The walk stops at the
    first event pair with a non-waived difference; headline metric deltas
    are computed over the *full* streams either way.
    """
    ca, cb = canonical_events(a), canonical_events(b)
    waived = [0]
    report = DiffReport(a_label, b_label, len(ca), len(cb))
    for index, (ea, eb) in enumerate(zip(ca, cb)):
        ta, tb = ea.get("type"), eb.get("type")
        if ta != tb:
            report.divergence = Divergence(
                index, "type", ta, tb,
                _event_epoch(ea), ea.get("scheme"),
                detail=f"event #{index} is {ta!r} in {a_label} but "
                       f"{tb!r} in {b_label}",
            )
            break
        diffs = _event_diffs(ea, eb, rel_tol, abs_tol, waived)
        if diffs:
            report.divergence = Divergence(
                index, "field", ta, tb,
                _event_epoch(ea), ea.get("scheme"),
                fields=tuple(diffs),
                detail=f"first divergence at event #{index} ({ta})",
            )
            break
    else:
        if len(ca) != len(cb):
            shorter, longer = (
                (a_label, b_label) if len(ca) < len(cb)
                else (b_label, a_label)
            )
            index = min(len(ca), len(cb))
            tail = (cb if len(ca) < len(cb) else ca)[index]
            report.divergence = Divergence(
                index, "length", tail.get("type"), tail.get("type"),
                _event_epoch(tail), tail.get("scheme"),
                detail=f"{shorter} ends after {index} events; {longer} "
                       f"continues with {tail.get('type')!r}",
            )
    ma, mb = _collect_metrics(ca), _collect_metrics(cb)
    for name in sorted(set(ma) | set(mb)):
        va, vb = ma.get(name, 0.0), mb.get(name, 0.0)
        report.metrics.append(
            MetricDelta(
                name, va, vb, vb - va,
                within_tolerance=_within(va, vb, rel_tol, abs_tol),
            )
        )
    report.waived = waived[0]
    return report


def render_diff_text(report: DiffReport) -> str:
    """Human-readable diff report."""
    lines = [
        f"diff {report.a_label} ({report.a_events} events) vs "
        f"{report.b_label} ({report.b_events} events)"
    ]
    d = report.divergence
    if d is None:
        lines.append("streams: identical canonical event streams")
    else:
        where = f"event #{d.index}"
        if d.epoch is not None:
            where += f", epoch {d.epoch}"
        if d.scheme:
            where += f", scheme {d.scheme}"
        lines.append(f"FIRST DIVERGENCE at {where}: {d.detail}")
        for f in d.fields:
            lines.append(f"  {f.name}: {f.a!r} -> {f.b!r}")
            if f.positions:
                label = "banks" if f.name in (
                    "hits", "misses", "occupancy", "queue_served",
                    "queue_delay",
                ) else "cores"
                lines.append(
                    f"    differs at {label} "
                    f"{', '.join(map(str, f.positions))}"
                )
            if f.note:
                lines.append(f"    ({f.note})")
    interesting = [
        m for m in report.metrics
        if not m.within_tolerance or m.delta != 0
    ]
    shown = interesting if interesting else report.metrics
    if shown:
        lines.append("metric deltas:")
        for m in shown:
            flag = "ok" if m.within_tolerance else "EXCEEDS TOLERANCE"
            lines.append(
                f"  {m.name}: {m.a:g} -> {m.b:g} "
                f"(delta {m.delta:+g}) [{flag}]"
            )
    if report.waived:
        lines.append(
            f"waived {report.waived} float field difference(s) within "
            f"tolerance"
        )
    lines.append(
        "verdict: "
        + ("no divergence" if report.identical else "streams diverge")
    )
    return "\n".join(lines)


def render_diff_json(report: DiffReport) -> str:
    """The diff report as pretty-printed JSON."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
