"""Bench regression gates and the perf history ledger.

``repro bench --baseline BENCH_sweep.json --gate-pct N`` compares a fresh
``repro-bench`` report against a stored baseline: every benchmark's
throughput must stay within ``N`` percent of the baseline's, a benchmark
missing from the current report fails the gate outright, and every gated
(or ungated) run appends one line to ``BENCH_history.jsonl`` so the perf
trajectory accumulates across commits.

Throughputs are wall-clock derived and therefore machine-dependent: the
gate is meaningful against a baseline from comparable hardware, which is
why CI uses a deliberately loose percentage (catching collapses, not
noise) while a developer re-baselining locally can gate tightly.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.errors import ObsError

#: default allowed throughput drop before the gate fails, percent.
DEFAULT_GATE_PCT = 10.0

HISTORY_NAME = "BENCH_history.jsonl"


def load_report(path: str | Path) -> dict:
    """Load and shape-check one ``repro-bench`` JSON report."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ObsError(f"cannot read bench report {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path}: not valid JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format") != "repro-bench"
        or not isinstance(payload.get("benchmarks"), list)
    ):
        raise ObsError(f"{path}: not a repro-bench report")
    return payload


def _by_name(report: Mapping) -> dict[str, dict]:
    return {
        b["name"]: b
        for b in report.get("benchmarks", [])
        if isinstance(b, dict) and "name" in b
    }


@dataclass(frozen=True)
class GateEntry:
    """One benchmark's verdict against the baseline."""

    name: str
    baseline_throughput: float
    current_throughput: float
    delta_pct: float  #: positive = faster than baseline
    regressed: bool


@dataclass
class GateResult:
    """Outcome of gating one report against one baseline."""

    gate_pct: float
    baseline_rev: str
    current_rev: str
    entries: list[GateEntry] = field(default_factory=list)
    #: benchmarks present in the baseline but absent from the current
    #: report — treated as failures (a silently dropped benchmark must
    #: not pass the gate).
    missing: list[str] = field(default_factory=list)
    #: benchmarks new in the current report (informational).
    added: list[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.missing) or any(e.regressed for e in self.entries)

    @property
    def regressions(self) -> list[str]:
        return [e.name for e in self.entries if e.regressed]

    def to_dict(self) -> dict:
        return {
            "gate_pct": self.gate_pct,
            "baseline_rev": self.baseline_rev,
            "current_rev": self.current_rev,
            "failed": self.failed,
            "regressions": self.regressions,
            "missing": self.missing,
            "added": self.added,
            "entries": [
                {
                    "name": e.name,
                    "baseline_throughput": e.baseline_throughput,
                    "current_throughput": e.current_throughput,
                    "delta_pct": e.delta_pct,
                    "regressed": e.regressed,
                }
                for e in self.entries
            ],
        }


def gate_report(
    current: Mapping,
    baseline: Mapping,
    *,
    gate_pct: float = DEFAULT_GATE_PCT,
) -> GateResult:
    """Compare a current bench report against a baseline.

    A benchmark regresses when its throughput falls more than
    ``gate_pct`` percent below the baseline's.  Throughput (work per
    second) is the gated figure rather than wall seconds so suites whose
    workload sizes differ per entry stay comparable run-to-run.
    """
    if gate_pct <= 0:
        raise ObsError(f"gate percentage must be positive, got {gate_pct}")
    cur, base = _by_name(current), _by_name(baseline)
    result = GateResult(
        gate_pct=gate_pct,
        baseline_rev=str(baseline.get("git_rev", "unknown")),
        current_rev=str(current.get("git_rev", "unknown")),
        missing=sorted(set(base) - set(cur)),
        added=sorted(set(cur) - set(base)),
    )
    for name in sorted(set(cur) & set(base)):
        base_tp = float(base[name].get("throughput", 0.0))
        cur_tp = float(cur[name].get("throughput", 0.0))
        if base_tp > 0:
            delta_pct = 100.0 * (cur_tp - base_tp) / base_tp
        else:
            delta_pct = 0.0
        result.entries.append(
            GateEntry(
                name, base_tp, cur_tp, delta_pct,
                regressed=delta_pct < -gate_pct,
            )
        )
    return result


def append_history(
    path: str | Path, report: Mapping, gate: GateResult | None = None
) -> dict:
    """Append one run's digest to the perf-history ledger (JSONL).

    The ledger is an append-only log (plain append, not atomic replace —
    losing a torn final line to a crash costs one data point, not the
    history), one object per bench invocation: git revision, suite,
    per-benchmark wall/throughput, and the gate verdict when one ran.
    """
    record = {
        "git_rev": report.get("git_rev", "unknown"),
        "suite": report.get("suite"),
        "jobs": report.get("jobs"),
        "benchmarks": {
            name: {
                "wall_s": entry.get("wall_s"),
                "throughput": entry.get("throughput"),
                "unit": entry.get("unit"),
            }
            for name, entry in _by_name(report).items()
        },
        "gate": gate.to_dict() if gate is not None else None,
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def render_gate_text(result: GateResult) -> str:
    """Human-readable gate verdict."""
    lines = [
        f"bench gate: baseline rev {result.baseline_rev}, current rev "
        f"{result.current_rev}, allowed drop {result.gate_pct:g}%"
    ]
    for e in result.entries:
        flag = "REGRESSED" if e.regressed else "ok"
        lines.append(
            f"  {e.name}: {e.baseline_throughput:,.0f} -> "
            f"{e.current_throughput:,.0f} ({e.delta_pct:+.1f}%) [{flag}]"
        )
    for name in result.missing:
        lines.append(f"  {name}: MISSING from current report")
    for name in result.added:
        lines.append(f"  {name}: new benchmark (no baseline)")
    lines.append(
        "gate verdict: " + ("FAILED" if result.failed else "passed")
    )
    return "\n".join(lines)
