"""repro.obs — the run observatory: consumption side of the telemetry stack.

Where :mod:`repro.telemetry` *emits* (schema-stable JSONL traces, metric
snapshots), this package *consumes* across runs:

* :mod:`repro.obs.store` — archive runs with provenance (config
  fingerprint, git rev, mix, headline results, trace) under a queryable
  run store (``repro runs list|show``, ``--store`` on the run commands);
* :mod:`repro.obs.diff`  — first-divergence trace diffing with Rules 1–3
  annotations and tolerance-gated metric deltas (``repro diff``), which
  doubles as the serial-vs-parallel determinism gate;
* :mod:`repro.obs.watch` — incremental tail reading of a growing trace
  with throughput/ETA from progress heartbeats (``repro watch``);
* :mod:`repro.obs.gate`  — bench regression gating against a committed
  baseline plus the append-only ``BENCH_history.jsonl`` perf ledger
  (``repro bench --baseline --gate-pct``);
* :mod:`repro.obs.series` — the per-epoch columnar time-series sidecar
  archived next to each stored trace (``timeseries.json.gz``),
  deterministic down to the byte;
* :mod:`repro.obs.analytics` — cross-run analytics: ``repro stats``
  column aggregates, ``repro runs query`` filters, and the span-profile
  throughput attribution behind ``repro bench --attribute``.

Everything here is read-side tooling: importing or using it never touches
a simulation's hot path, so the zero-overhead-when-off contract of the
telemetry layer is untouched.
"""

from repro.obs.analytics import (
    STAT_QUANTILES,
    attribute_delta,
    exact_quantile,
    query_runs,
    render_attribution_text,
    render_runs_query_text,
    render_stats_csv,
    render_stats_json,
    render_stats_text,
    resolve_series,
    runs_query_rows,
    series_stats,
)
from repro.obs.diff import (
    DiffReport,
    Divergence,
    FieldDiff,
    MetricDelta,
    diff_traces,
    render_diff_json,
    render_diff_text,
)
from repro.obs.errors import ObsError
from repro.obs.gate import (
    DEFAULT_GATE_PCT,
    GateEntry,
    GateResult,
    append_history,
    gate_report,
    load_report,
    render_gate_text,
)
from repro.obs.series import (
    SERIES_FORMAT,
    SERIES_NAME,
    SERIES_VERSION,
    build_series,
    load_series,
    series_to_bytes,
    validate_series,
    write_series,
)
from repro.obs.store import (
    DEFAULT_STORE,
    RunRecord,
    RunStore,
    config_fingerprint,
    git_rev,
    headline_from_comparison,
    headline_from_montecarlo,
    headline_from_result,
)
from repro.obs.watch import TailChunk, TailReader, WatchView, watch_trace

__all__ = [
    "DEFAULT_GATE_PCT",
    "DEFAULT_STORE",
    "DiffReport",
    "Divergence",
    "FieldDiff",
    "GateEntry",
    "GateResult",
    "MetricDelta",
    "ObsError",
    "RunRecord",
    "RunStore",
    "SERIES_FORMAT",
    "SERIES_NAME",
    "SERIES_VERSION",
    "STAT_QUANTILES",
    "TailChunk",
    "TailReader",
    "WatchView",
    "append_history",
    "attribute_delta",
    "build_series",
    "config_fingerprint",
    "diff_traces",
    "exact_quantile",
    "gate_report",
    "git_rev",
    "headline_from_comparison",
    "headline_from_montecarlo",
    "headline_from_result",
    "load_report",
    "load_series",
    "query_runs",
    "render_attribution_text",
    "render_diff_json",
    "render_diff_text",
    "render_gate_text",
    "render_runs_query_text",
    "render_stats_csv",
    "render_stats_json",
    "render_stats_text",
    "resolve_series",
    "runs_query_rows",
    "series_stats",
    "series_to_bytes",
    "validate_series",
    "watch_trace",
    "write_series",
]
