"""Fairness and throughput metrics for scheme comparisons.

The paper motivates partitioning with workloads that "destructively
interfere in an unfair way"; its evaluation reports misses and CPI.  This
module adds the standard multiprogramming metrics built on per-workload
*stand-alone* runs (each workload on the machine by itself):

* per-core slowdown            ``CPI_shared / CPI_alone``
* weighted speedup             ``sum(IPC_shared / IPC_alone)``
* fairness index               ``min(slowdown) / max(slowdown)`` (1 = fair)

These quantify the unfairness the introduction describes and let the
schemes be compared on quality-of-service grounds, not just total misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, scaled_config
from repro.mem.trace import Trace
from repro.sim.runner import RunSettings, estimate_access_rate, run_mix
from repro.sim.stats import SystemResult
from repro.sim.system import CMPSystem
from repro.workloads.mixes import Mix
from repro.workloads.synthetic import generate_trace


def _empty_trace() -> Trace:
    return Trace.from_records([])


def standalone_cpi(
    name: str,
    config: SystemConfig | None = None,
    settings: RunSettings | None = None,
) -> float:
    """CPI of one workload running alone on the whole machine (the shared
    cache without competitors — the baseline for slowdown metrics)."""
    from repro.workloads.spec_like import get

    cfg = config or scaled_config()
    st = settings or RunSettings()
    spec = get(name)
    trace = generate_trace(
        spec,
        int(st.duration_cycles * estimate_access_rate(spec, cfg) * st.trace_margin) + 1,
        cfg.l2.sets_per_bank,
        seed=st.seed,
    )
    specs = [spec] + [spec] * (cfg.num_cores - 1)
    traces = [trace] + [_empty_trace() for _ in range(cfg.num_cores - 1)]
    system = CMPSystem(
        cfg, specs, traces, scheme="no-partitions", profiler_kind="none"
    )
    system.set_measurement_window(st.warmup_cycles, st.duration_cycles)
    result = system.run()
    return result.cores[0].cpi


@dataclass(frozen=True)
class FairnessReport:
    """Multiprogramming quality metrics of one scheme on one mix."""

    scheme: str
    slowdowns: tuple[float, ...]

    @property
    def weighted_speedup(self) -> float:
        return float(sum(1.0 / s for s in self.slowdowns if s > 0))

    @property
    def fairness_index(self) -> float:
        if not self.slowdowns:
            return 1.0
        return min(self.slowdowns) / max(self.slowdowns)

    @property
    def worst_slowdown(self) -> float:
        return max(self.slowdowns)


def fairness_report(
    mix: Mix,
    scheme: str,
    config: SystemConfig | None = None,
    settings: RunSettings | None = None,
    *,
    alone_cpis: dict[str, float] | None = None,
) -> FairnessReport:
    """Run ``mix`` under ``scheme`` and relate each core's CPI to its
    stand-alone CPI.  Pass precomputed ``alone_cpis`` to amortise the
    stand-alone runs across schemes."""
    cfg = config or scaled_config()
    st = settings or RunSettings()
    if alone_cpis is None:
        alone_cpis = {
            name: standalone_cpi(name, cfg, st) for name in set(mix.names)
        }
    result: SystemResult = run_mix(mix, scheme, cfg, st)
    slowdowns = []
    for core in result.cores:
        alone = alone_cpis[core.workload]
        slowdowns.append(core.cpi / alone if alone > 0 else float("nan"))
    return FairnessReport(scheme, tuple(slowdowns))
