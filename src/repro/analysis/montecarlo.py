"""The paper's Monte Carlo evaluation (Section IV.A, Fig. 7).

The space of 8-core combinations of 26 workloads is ~14 M, far beyond
detailed simulation, so the paper compares partitioning algorithms
*analytically*: collect each workload's MSA histogram once (stand-alone,
single-core), then for 1000 random mixes run the Unrestricted and
Bank-aware assignment algorithms on the histograms and compare their
MSA-projected total misses against fixed even shares.

``relative miss ratio = predicted_misses(algorithm) / predicted_misses(equal)``

The paper reports ~30 % average reduction for Unrestricted and ~27 % for
Bank-aware — i.e. the physical restrictions cost almost nothing — with the
Bank-aware points hugging the Unrestricted envelope when both are sorted by
the Unrestricted reduction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import SystemConfig, scaled_config
from repro.parallel.executor import ParallelExecutor
from repro.parallel.profile_cache import ProfileCache
from repro.partitioning.bank_aware import bank_aware_partition
from repro.partitioning.registry import (
    PolicyContext,
    analytic_policies,
    get_policy,
)
from repro.partitioning.static import equal_partition
from repro.partitioning.unrestricted import predicted_misses, unrestricted_partition
from repro.profiling.miss_curve import MissCurve
from repro.profiling.msa import MSAProfiler
from repro.resilience.checkpoint import SweepCheckpoint
from repro.errors import CheckpointCorrupt, ConfigError
from repro.telemetry.timing import wall_clock
from repro.telemetry.tracer import Tracer

#: traced sweeps emit one ``progress`` heartbeat per this fraction of the
#: remaining work (at least every item); the cadence is a pure function of
#: the item count, so serial and parallel streams stay equal.
HEARTBEAT_FRACTION = 100
from repro.util.atomic_write import atomic_write_text
from repro.workloads.mixes import Mix, random_mixes
from repro.workloads.spec_like import ALL_NAMES, get
from repro.workloads.synthetic import generate_trace


def collect_profiles(
    names: tuple[str, ...] = ALL_NAMES,
    config: SystemConfig | None = None,
    *,
    accesses: int = 80_000,
    warmup_fraction: float = 0.4,
    seed: int = 11,
    cache: ProfileCache | None = None,
) -> dict[str, MissCurve]:
    """Stand-alone MSA profiles of every workload (paper step 1).

    Each workload runs alone (as the paper profiles single benchmarks on a
    single core) and its L2 reference stream feeds an exact MSA profiler
    covering the full 128-way equivalent cache.  Mirroring the paper's
    methodology (fast-forward, warm the cache, then measure), the first
    ``warmup_fraction`` of the trace only primes the profiler's LRU stacks;
    its counters are cleared before the measured portion, so the curves
    describe steady-state reuse, not cold misses.

    With a :class:`~repro.parallel.profile_cache.ProfileCache`, curves are
    looked up (and stored) by an exact fingerprint of every profiling
    parameter, so repeated invocations skip the whole pass.
    """
    cfg = config or scaled_config()
    warmup = int(accesses * warmup_fraction)
    fingerprint = None
    if cache is not None:
        fingerprint = cache.fingerprint(
            cfg, accesses=accesses, warmup_fraction=warmup_fraction, seed=seed
        )
    curves: dict[str, MissCurve] = {}
    for name in names:
        if fingerprint is not None:
            hit = cache.get(name, fingerprint)
            if hit is not None:
                curves[name] = hit
                continue
        profiler = MSAProfiler(cfg.l2.sets_per_bank, cfg.l2.total_ways)
        trace = generate_trace(
            get(name), accesses, cfg.l2.sets_per_bank, seed=seed
        )
        lines = trace.lines
        profiler.observe_many(lines[:warmup])
        profiler.reset()  # drop warmup counts; stack state persists
        profiler.observe_many(lines[warmup:])
        curves[name] = MissCurve.from_profiler(profiler, name)
        if fingerprint is not None:
            cache.put(name, fingerprint, curves[name])
    return curves


@dataclass(frozen=True)
class MonteCarloPoint:
    """One random mix's outcome.

    ``policy_misses`` holds the MSA-projected misses of every extra
    registry policy ranked by this sweep (``policies=`` /
    ``--rank-policies``); ``None`` for the paper's plain Fig. 7 run.
    """

    mix: Mix
    equal_misses: float
    unrestricted_misses: float
    bank_aware_misses: float
    bank_aware_ways: tuple[int, ...]
    policy_misses: dict[str, float] | None = None

    @property
    def unrestricted_ratio(self) -> float:
        return (
            self.unrestricted_misses / self.equal_misses
            if self.equal_misses
            else 1.0
        )

    @property
    def bank_aware_ratio(self) -> float:
        return (
            self.bank_aware_misses / self.equal_misses
            if self.equal_misses
            else 1.0
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (for sweep checkpoints).  The
        ``policies`` key appears only on ranked points, so plain Fig. 7
        checkpoints keep their historical byte shape."""
        out = {
            "mix": list(self.mix.names),
            "equal": self.equal_misses,
            "unrestricted": self.unrestricted_misses,
            "bank_aware": self.bank_aware_misses,
            "ways": list(self.bank_aware_ways),
        }
        if self.policy_misses is not None:
            out["policies"] = dict(self.policy_misses)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MonteCarloPoint":
        """Inverse of :meth:`to_dict` (floats round-trip exactly via JSON)."""
        policies = data.get("policies")
        return cls(
            Mix(tuple(data["mix"])),
            data["equal"],
            data["unrestricted"],
            data["bank_aware"],
            tuple(data["ways"]),
            dict(policies) if policies is not None else None,
        )


@dataclass
class MonteCarloResult:
    """All points of one Fig. 7 experiment.

    The derived views (:meth:`sorted_by_unrestricted`, :meth:`series`, the
    mean ratios) share one lazily built ratio/sort cache, keyed on the
    identity of every point in the list (points are frozen, so replacing
    one always changes an identity), so plotting code can call them
    repeatedly without re-walking all points every time — and editing the
    list in place can never serve stale arrays.
    """

    points: list[MonteCarloPoint] = field(default_factory=list)
    _cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def _ratios(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(unrestricted, bank_aware, sort_order) over the current points."""
        key = tuple(map(id, self.points))
        if self._cache is None or self._cache[0] != key:
            unrestricted = np.array([p.unrestricted_ratio for p in self.points])
            bank_aware = np.array([p.bank_aware_ratio for p in self.points])
            order = np.argsort(unrestricted, kind="stable")
            self._cache = (key, unrestricted, bank_aware, order)
        return self._cache[1], self._cache[2], self._cache[3]

    def sorted_by_unrestricted(self) -> list[MonteCarloPoint]:
        """The paper sorts the 1000 results by the Unrestricted reduction."""
        _, _, order = self._ratios()
        return [self.points[i] for i in order]

    @property
    def mean_unrestricted_ratio(self) -> float:
        return float(np.mean(self._ratios()[0]))

    @property
    def mean_bank_aware_ratio(self) -> float:
        return float(np.mean(self._ratios()[1]))

    def restriction_penalty(self) -> float:
        """Average extra relative misses the Bank-aware rules cost over the
        Unrestricted envelope (the paper: ~3 percentage points)."""
        return self.mean_bank_aware_ratio - self.mean_unrestricted_ratio

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(unrestricted, bank_aware) ratio arrays, sorted as in Fig. 7."""
        unrestricted, bank_aware, order = self._ratios()
        return unrestricted[order], bank_aware[order]

    def policy_ranking(self) -> list[tuple[str, float]]:
        """Registry policies ranked by mean miss ratio vs. Equal (best
        first, name-tiebroken), over the points that carry per-policy
        projections.  Empty when the sweep did not rank policies."""
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for p in self.points:
            if p.policy_misses is None:
                continue
            for name, misses in p.policy_misses.items():
                ratio = misses / p.equal_misses if p.equal_misses else 1.0
                sums[name] = sums.get(name, 0.0) + ratio
                counts[name] = counts.get(name, 0) + 1
        means = [(name, sums[name] / counts[name]) for name in sums]
        return sorted(means, key=lambda item: (item[1], item[0]))

    # -- persistence ---------------------------------------------------------

    JSON_FORMAT = "repro-monte-carlo-result"
    JSON_VERSION = 1

    def to_json(self, path: str | Path) -> None:
        """Durably write every point to ``path`` (atomic + fsynced file and
        directory; exact float round-trip)."""
        payload = {
            "format": self.JSON_FORMAT,
            "version": self.JSON_VERSION,
            "points": [p.to_dict() for p in self.points],
        }
        atomic_write_text(path, json.dumps(payload))

    @classmethod
    def from_json(cls, path: str | Path) -> "MonteCarloResult":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CheckpointCorrupt(f"{path}: not valid JSON: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != cls.JSON_FORMAT
            or payload.get("version") != cls.JSON_VERSION
            or not isinstance(payload.get("points"), list)
        ):
            raise CheckpointCorrupt(f"{path}: not a {cls.JSON_FORMAT} file")
        return cls(
            points=[MonteCarloPoint.from_dict(d) for d in payload["points"]]
        )


#: per-worker payload installed by :func:`_montecarlo_init` (also set
#: in-process on the serial path, so the worker function is path-agnostic).
_WORKER: dict = {}


def _montecarlo_init(
    curves: dict[str, MissCurve],
    cfg: SystemConfig,
    min_ways: int,
    policies: tuple[str, ...] | None = None,
) -> None:
    _WORKER["curves"] = curves
    _WORKER["cfg"] = cfg
    _WORKER["min_ways"] = min_ways
    _WORKER["policies"] = policies


def _montecarlo_point(mix: Mix) -> MonteCarloPoint:
    """Evaluate one mix (pure: depends only on the mix and the payload)."""
    curves: dict[str, MissCurve] = _WORKER["curves"]
    cfg: SystemConfig = _WORKER["cfg"]
    min_ways: int = _WORKER["min_ways"]
    policies: tuple[str, ...] | None = _WORKER.get("policies")
    mix_curves = [curves[name] for name in mix.names]
    total_ways = cfg.l2.total_ways
    equal = equal_partition(cfg.num_cores, total_ways)
    unrestricted = unrestricted_partition(
        mix_curves, total_ways, min_ways=min_ways
    )
    decision = bank_aware_partition(
        mix_curves,
        num_banks=cfg.l2.num_banks,
        bank_ways=cfg.l2.bank_ways,
        max_ways_per_core=cfg.max_ways_per_core,
        min_ways=min_ways,
    )
    policy_misses: dict[str, float] | None = None
    if policies:
        ctx = PolicyContext(
            num_cores=cfg.num_cores,
            num_banks=cfg.l2.num_banks,
            bank_ways=cfg.l2.bank_ways,
            max_ways_per_core=cfg.max_ways_per_core,
            min_ways=min_ways,
        )
        policy_misses = {
            name: predicted_misses(
                mix_curves, list(get_policy(name).decide(mix_curves, ctx).ways)
            )
            for name in policies
        }
    return MonteCarloPoint(
        mix,
        predicted_misses(mix_curves, equal),
        predicted_misses(mix_curves, unrestricted),
        predicted_misses(mix_curves, list(decision.ways)),
        decision.ways,
        policy_misses,
    )


def _restore_points(completed: list, limit: int) -> list[MonteCarloPoint]:
    """Checkpointed items back to points, validating each item's shape."""
    points = []
    for i, item in enumerate(completed[:limit]):
        try:
            points.append(MonteCarloPoint.from_dict(item))
        except (KeyError, TypeError) as exc:
            raise CheckpointCorrupt(
                f"checkpoint item #{i} is malformed: {exc!r}"
            ) from exc
    return points


def run_monte_carlo(
    num_mixes: int = 1000,
    config: SystemConfig | None = None,
    *,
    curves: dict[str, MissCurve] | None = None,
    seed: int = 2009,
    profile_accesses: int = 60_000,
    min_ways: int = 1,
    checkpoint_path: str | None = None,
    resume: bool = False,
    jobs: int | None = None,
    profile_cache: ProfileCache | None = None,
    tracer: Tracer | None = None,
    policies: tuple[str, ...] | None = None,
) -> MonteCarloResult:
    """Steps 2-4 of the paper's comparison methodology for ``num_mixes``
    random workload sets.

    With ``checkpoint_path`` the sweep snapshots completed points to an
    atomic JSON file every ``config.resilience.checkpoint_every`` mixes (and
    on any exit, including exceptions); ``resume=True`` restores those
    points and continues.  A snapshot whose metadata disagrees with the
    current parameters raises
    :class:`~repro.resilience.errors.CheckpointMismatchError`.
    ``random_mixes`` draws mixes sequentially from the seed, so mix *i* is
    identical across runs and a killed-and-resumed sweep reproduces the
    uninterrupted one bit-for-bit — resuming into a larger ``num_mixes``
    is likewise well-defined (prefix determinism).

    ``jobs`` fans the mixes out over worker processes (default serial; see
    :func:`repro.parallel.executor.resolve_jobs`).  Every mix is a pure
    function of (curves, config, mix) and results merge in submission
    order, so the points are bit-identical for every ``jobs`` value.

    ``tracer`` records one ``mc_point`` event per evaluated mix (emitted
    parent-side in submission order, so serial and parallel runs produce
    identical streams; see :mod:`repro.telemetry`).

    ``policies`` additionally projects each mix through the named registry
    policies (must be :func:`~repro.partitioning.registry.analytic_policies`)
    so the result can rank them (:meth:`MonteCarloResult.policy_ranking`).
    The extra per-point payload joins the checkpoint metadata, so a ranked
    sweep never silently resumes a plain one (or vice versa) — legacy
    checkpoints keep their exact key set.
    """
    cfg = config or scaled_config()
    if policies:
        policies = tuple(policies)
        ranked = set(analytic_policies())
        for name in policies:
            get_policy(name)  # unknown names fail with the full listing
            if name not in ranked:
                raise ConfigError(
                    f"policy {name!r} cannot be ranked analytically "
                    f"(rankable: {', '.join(sorted(ranked))})"
                )
    else:
        policies = None
    if curves is None:
        curves = collect_profiles(
            config=cfg, accesses=profile_accesses, cache=profile_cache
        )
    meta = {
        "seed": seed,
        "num_cores": cfg.num_cores,
        "num_banks": cfg.l2.num_banks,
        "bank_ways": cfg.l2.bank_ways,
        "min_ways": min_ways,
        "profile_accesses": profile_accesses,
    }
    if policies is not None:
        meta["policies"] = list(policies)
    ckpt = SweepCheckpoint(
        checkpoint_path, "monte-carlo", meta,
        every=cfg.resilience.checkpoint_every, resume=resume,
    )
    # prefix determinism makes a longer snapshot a superset of this sweep
    result = MonteCarloResult(points=_restore_points(ckpt.completed, num_mixes))
    mixes = random_mixes(num_mixes, cfg.num_cores, seed=seed)
    if tracer is not None:
        tracer.emit_run_meta(
            "monte-carlo",
            detail=f"{num_mixes} mixes, seed {seed}, "
            f"{len(result.points)} restored",
        )
    executor = ParallelExecutor(
        jobs, initializer=_montecarlo_init,
        initargs=(curves, cfg, min_ways, policies),
        tracer=tracer,
    )
    try:
        todo = mixes[len(result.points):]
        heartbeat = max(1, len(todo) // HEARTBEAT_FRACTION)
        start = wall_clock() if tracer is not None else 0.0
        done = 0
        for point in executor.map_ordered(
            _montecarlo_point, todo, labels=[str(m) for m in todo]
        ):
            if tracer is not None:
                extra = (
                    {"policies": point.policy_misses}
                    if point.policy_misses is not None
                    else {}
                )
                tracer.emit(
                    "mc_point",
                    index=len(result.points),
                    mix=list(point.mix.names),
                    equal_misses=point.equal_misses,
                    unrestricted_misses=point.unrestricted_misses,
                    bank_aware_misses=point.bank_aware_misses,
                    ways=point.bank_aware_ways,
                    **extra,
                )
            result.points.append(point)
            ckpt.record(point.to_dict())
            done += 1
            if tracer is not None and (
                done % heartbeat == 0 or done == len(todo)
            ):
                tracer.emit(
                    "progress", done=done, total=len(todo),
                    source="montecarlo", wall_s=wall_clock() - start,
                )
    finally:
        ckpt.save()  # snapshot on kill/exception too, not just at the end
    return result
