"""Per-table/figure experiment drivers.

One function per paper artefact (see DESIGN.md's experiment index); the
``benchmarks/`` tree calls these and prints the resulting rows, so each
paper table/figure can be regenerated with a single pytest invocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.aggregation import SCHEMES, make_aggregation
from repro.config import SystemConfig, scaled_config
from repro.partitioning.bank_aware import BankAwareDecision, bank_aware_partition
from repro.profiling.miss_curve import MissCurve
from repro.profiling.msa import MSAProfiler
from repro.profiling.overhead import profiler_overhead, system_overhead_fraction
from repro.profiling.sampled import SampledMSAProfiler, profile_error
from repro.sim.runner import RunSettings, SchemeComparison, run_sweep
from repro.util.stats import geometric_mean
from repro.workloads.mixes import TABLE_III_SETS, Mix
from repro.workloads.spec_like import get
from repro.workloads.synthetic import generate_trace

# ---------------------------------------------------------------------------
# Table I — baseline machine parameters
# ---------------------------------------------------------------------------


def table1_rows(config: SystemConfig | None = None) -> list[tuple[str, str]]:
    """The baseline DNUCA-CMP parameter list (paper Table I)."""
    cfg = config or SystemConfig()
    l2 = cfg.l2
    return [
        ("Cores", f"{cfg.num_cores} x {cfg.core.width}-wide OoO"),
        ("Clock Frequency", f"{cfg.core.frequency_ghz:g} GHz"),
        ("ROB / outstanding", f"{cfg.core.rob_entries} / {cfg.core.max_outstanding} per core"),
        (
            "L1 Data Cache",
            f"{cfg.l1.size_bytes // 1024} KB, {cfg.l1.ways}-way, "
            f"{cfg.l1.access_cycles} cycles, {cfg.l1.line_size} B lines",
        ),
        (
            "L2 Cache",
            f"{l2.total_size_bytes // (1024 * 1024)} MB "
            f"({l2.num_banks} x {l2.bank_size_bytes // (1024 * 1024)} MB banks), "
            f"{l2.bank_ways}-way banks ({l2.total_ways}-way equivalent), "
            f"{l2.min_latency}-{l2.max_latency} cycles bank access",
        ),
        ("Memory Latency", f"{cfg.memory.latency_cycles} cycles"),
        ("Memory Bandwidth", f"{cfg.memory.bandwidth_gbs:g} GB/s"),
        ("Memory Size", f"{cfg.memory.size_bytes // 1024**3} GB DRAM"),
        ("Partitioning epoch", f"{cfg.epoch_cycles:,} cycles"),
    ]


# ---------------------------------------------------------------------------
# Fig. 2 — MSA histogram example
# ---------------------------------------------------------------------------


def fig2_histogram(
    workload: str = "bzip2",
    config: SystemConfig | None = None,
    *,
    accesses: int = 40_000,
    positions: int = 16,
    seed: int = 2,
) -> np.ndarray:
    """An example LRU-stack histogram (the paper's Fig. 2 shape): hits
    concentrated toward the MRU positions plus a miss bin."""
    cfg = config or scaled_config()
    prof = MSAProfiler(cfg.l2.sets_per_bank, positions)
    trace = generate_trace(get(workload), accesses, cfg.l2.sets_per_bank, seed=seed)
    prof.observe_many(trace.lines)
    return prof.histogram


# ---------------------------------------------------------------------------
# Fig. 3 — cumulative miss-ratio curves
# ---------------------------------------------------------------------------

FIG3_WORKLOADS = ("sixtrack", "bzip2", "applu")


def fig3_curves(
    names: tuple[str, ...] = FIG3_WORKLOADS,
    config: SystemConfig | None = None,
    *,
    accesses: int = 80_000,
    seed: int = 3,
) -> dict[str, MissCurve]:
    """Stand-alone MSA projected miss-ratio curves (paper Fig. 3): sixtrack
    saturates by ~6 dedicated ways, applu by ~10 with a high streaming
    floor, bzip2 improves gradually out to ~45 ways."""
    from repro.analysis.montecarlo import collect_profiles

    return collect_profiles(names, config, accesses=accesses, seed=seed)


# ---------------------------------------------------------------------------
# Table II — profiler hardware overhead
# ---------------------------------------------------------------------------


def table2_rows(config: SystemConfig | None = None) -> list[tuple[str, float]]:
    cfg = config or SystemConfig()
    report = profiler_overhead(
        num_sets=cfg.l2.sets_per_bank,
        profiler=cfg.profiler,
        total_ways=cfg.l2.total_ways,
    )
    rows = report.as_rows()
    rows.append(("Total per profiler", report.total_kbits))
    rows.append(
        ("All profilers / L2 capacity", 100.0 * system_overhead_fraction(cfg))
    )
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 — bank-aggregation schemes ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregationOutcome:
    scheme: str
    miss_rate: float
    migrations_per_access: float
    directory_probes_per_access: float


def fig4_aggregation(
    workload: str = "bzip2",
    *,
    num_banks: int = 4,
    bank_ways: int = 8,
    num_sets: int = 128,
    accesses: int = 60_000,
    seed: int = 4,
) -> list[AggregationOutcome]:
    """Compare Cascade / Address-Hash / Parallel / ideal-LRU aggregations of
    one core's multi-bank partition (paper Section III.B): Cascade matches
    the ideal LRU but with a prohibitive migration rate; Hash/Parallel trade
    a little fidelity for near-zero migrations."""
    trace = generate_trace(get(workload), accesses, num_sets, seed=seed)
    lines = trace.lines.tolist()
    outcomes = []
    for name in SCHEMES:
        agg = make_aggregation(name, num_banks, bank_ways, num_sets)
        for line in lines:
            agg.access(line)
        st = agg.stats
        outcomes.append(
            AggregationOutcome(
                name,
                st.miss_rate,
                st.migrations_per_access,
                st.directory_probes / st.accesses if st.accesses else 0.0,
            )
        )
    return outcomes


# ---------------------------------------------------------------------------
# Table III — the eight detailed mixes and their Bank-aware assignments
# ---------------------------------------------------------------------------


def table3_assignments(
    config: SystemConfig | None = None,
    *,
    curves: dict[str, MissCurve] | None = None,
) -> list[tuple[Mix, BankAwareDecision]]:
    """Bank-aware way assignments for the paper's eight detailed sets."""
    from repro.analysis.montecarlo import collect_profiles

    cfg = config or scaled_config()
    if curves is None:
        curves = collect_profiles(config=cfg)
    out = []
    for mix in TABLE_III_SETS:
        decision = bank_aware_partition(
            [curves[n] for n in mix.names],
            num_banks=cfg.l2.num_banks,
            bank_ways=cfg.l2.bank_ways,
            max_ways_per_core=cfg.max_ways_per_core,
        )
        out.append((mix, decision))
    return out


# ---------------------------------------------------------------------------
# Figs. 8 & 9 — detailed simulation of the eight sets
# ---------------------------------------------------------------------------


@dataclass
class DetailedResults:
    """Relative miss rate and CPI of every set under every scheme."""

    comparisons: list[SchemeComparison]

    def relative_rows(self, metric: str) -> list[list[object]]:
        """Rows ``[set, no-partitions, equal, bank-aware]`` plus a final GM
        row, for ``metric`` in ('miss', 'cpi')."""
        fn = {
            "miss": SchemeComparison.relative_miss_rate,
            "cpi": SchemeComparison.relative_cpi,
        }[metric]
        rows: list[list[object]] = []
        per_scheme: dict[str, list[float]] = {}
        for i, comp in enumerate(self.comparisons):
            row: list[object] = [f"Set{i + 1}"]
            for scheme in ("no-partitions", "equal-partitions", "bank-aware"):
                val = fn(comp, scheme)
                row.append(val)
                per_scheme.setdefault(scheme, []).append(val)
            rows.append(row)
        gm_row: list[object] = ["GM"]
        for scheme in ("no-partitions", "equal-partitions", "bank-aware"):
            gm_row.append(geometric_mean(per_scheme[scheme]))
        rows.append(gm_row)
        return rows

    def summary(self) -> dict[str, float]:
        miss = self.relative_rows("miss")[-1]
        cpi = self.relative_rows("cpi")[-1]
        return {
            "equal_relative_miss": float(miss[2]),
            "bank_aware_relative_miss": float(miss[3]),
            "equal_relative_cpi": float(cpi[2]),
            "bank_aware_relative_cpi": float(cpi[3]),
        }


def detailed_sets(
    config: SystemConfig | None = None,
    settings: RunSettings | None = None,
    *,
    sets: tuple[Mix, ...] = TABLE_III_SETS,
    jobs: int | None = None,
) -> DetailedResults:
    """Run the paper's eight detailed mixes under all three schemes.

    ``jobs`` fans the independent (mix, scheme) simulations out over
    worker processes with bit-identical results (default serial).
    ``settings.sim_backend='batched'`` runs every simulation on the
    struct-of-arrays engine (:mod:`repro.sim.batched`) — bit-identical
    to the reference loop and several times faster, so full-length
    Fig. 8/9 sweeps become practical on one machine."""
    cfg = config or scaled_config(epoch_cycles=3_000_000)
    st = settings or RunSettings(duration_cycles=12_000_000)
    return DetailedResults(run_sweep(list(sets), cfg, st, jobs=jobs))


# ---------------------------------------------------------------------------
# Section III.A claim — sampled-profiler accuracy
# ---------------------------------------------------------------------------


def profiler_accuracy(
    workload: str = "bzip2",
    config: SystemConfig | None = None,
    *,
    accesses: int = 60_000,
    seed: int = 6,
    tag_bits: tuple[int, ...] = (8, 12, 16),
    samplings: tuple[int, ...] = (1, 4, 32),
) -> list[tuple[int, int, float]]:
    """Error of partial-tag + set-sampled profiles against the exact MSA
    profile, sweeping tag width and sampling ratio.  The paper claims 12-bit
    tags with 1-in-32 sampling stay within 5 %."""
    cfg = config or scaled_config()
    sets = cfg.l2.sets_per_bank
    trace = generate_trace(get(workload), accesses, sets, seed=seed)
    lines = trace.lines
    exact = MSAProfiler(sets, cfg.max_ways_per_core)
    exact.observe_many(lines)
    rows = []
    for bits in tag_bits:
        for sampling in samplings:
            if sampling > sets:
                continue
            prof = SampledMSAProfiler(
                sets,
                cfg.max_ways_per_core,
                set_sampling=sampling,
                partial_tag_bits=bits,
            )
            prof.observe_many(lines)
            rows.append((bits, sampling, profile_error(exact, prof)))
    return rows
