"""Plain-text table rendering for experiment outputs.

Every benchmark regenerates its paper table/figure as text through these
helpers, so the rows the paper reports appear directly in the benchmark
output (run pytest with ``-s`` to see them).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import ConfigError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    rendered: list[list[str]] = []
    for row in rows:
        out_row = []
        for cell in row:
            if isinstance(cell, float):
                out_row.append(float_format.format(cell))
            else:
                out_row.append(str(cell))
        rendered.append(out_row)
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigError("row width disagrees with headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, values: Sequence[float], *, samples: int = 10
) -> str:
    """Summarise a long sorted series (Fig. 7 style) as evenly spaced
    sample points plus its mean."""
    if not values:
        return f"{name}: (empty)"
    n = len(values)
    idx = [min(n - 1, round(i * (n - 1) / (samples - 1))) for i in range(samples)]
    pts = " ".join(f"{values[i]:.2f}" for i in idx)
    mean = sum(values) / n
    return f"{name}: n={n} mean={mean:.3f} samples=[{pts}]"


def miss_curve_rows(
    curves: dict, ways: Sequence[int]
) -> list[list[object]]:
    """Rows of cumulative miss ratios at the given allocations (Fig. 3)."""
    rows: list[list[object]] = []
    for name, curve in curves.items():
        rows.append([name] + [curve.miss_ratio_at(w) for w in ways])
    return rows


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Persist a result table as CSV so figures can be re-plotted outside
    this repo (every benchmark table is representable this way)."""
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            if len(row) != len(headers):
                raise ConfigError("row width disagrees with headers")
            writer.writerow(list(row))
