"""Experiment drivers, Monte Carlo harness and reporting."""

from repro.analysis.experiments import (
    FIG3_WORKLOADS,
    AggregationOutcome,
    DetailedResults,
    detailed_sets,
    fig2_histogram,
    fig3_curves,
    fig4_aggregation,
    profiler_accuracy,
    table1_rows,
    table2_rows,
    table3_assignments,
)
from repro.analysis.fairness import FairnessReport, fairness_report, standalone_cpi
from repro.analysis.montecarlo import (
    MonteCarloPoint,
    MonteCarloResult,
    collect_profiles,
    run_monte_carlo,
)
from repro.analysis.report import format_series, format_table, miss_curve_rows, write_csv

__all__ = [
    "FIG3_WORKLOADS",
    "AggregationOutcome",
    "DetailedResults",
    "FairnessReport",
    "MonteCarloPoint",
    "MonteCarloResult",
    "collect_profiles",
    "detailed_sets",
    "fairness_report",
    "fig2_histogram",
    "fig3_curves",
    "fig4_aggregation",
    "format_series",
    "format_table",
    "miss_curve_rows",
    "profiler_accuracy",
    "run_monte_carlo",
    "standalone_cpi",
    "table1_rows",
    "table2_rows",
    "table3_assignments",
    "write_csv",
]
