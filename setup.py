"""Legacy setuptools shim (the environment has no `wheel`, so PEP 660
editable installs are unavailable; `pip install -e .` uses this instead)."""

from setuptools import setup

setup()
