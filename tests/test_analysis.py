"""Analysis layer: Monte Carlo harness, experiment drivers, reporting."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    fig2_histogram,
    fig3_curves,
    fig4_aggregation,
    profiler_accuracy,
    table1_rows,
    table2_rows,
    table3_assignments,
)
from repro.analysis.montecarlo import collect_profiles, run_monte_carlo
from repro.analysis.report import format_series, format_table, miss_curve_rows
from repro.config import scaled_config

CFG = scaled_config(16)  # 128-set banks: fast but representative


@pytest.fixture(scope="module")
def curves():
    return collect_profiles(config=CFG, accesses=30_000)


class TestMonteCarlo:
    def test_points_and_means(self, curves):
        mc = run_monte_carlo(40, CFG, curves=curves, seed=1)
        assert len(mc.points) == 40
        assert 0.0 < mc.mean_unrestricted_ratio <= 1.05
        assert 0.0 < mc.mean_bank_aware_ratio <= 1.1

    def test_unrestricted_is_envelope(self, curves):
        """Bank-aware can at best match the Unrestricted scheme on average
        (it optimises under strictly more constraints)."""
        mc = run_monte_carlo(40, CFG, curves=curves, seed=1)
        assert mc.restriction_penalty() >= -1e-9

    def test_sorted_series(self, curves):
        mc = run_monte_carlo(25, CFG, curves=curves, seed=2)
        u, b = mc.series()
        assert len(u) == len(b) == 25
        assert np.all(np.diff(u) >= 0)  # sorted by unrestricted reduction

    def test_deterministic(self, curves):
        a = run_monte_carlo(10, CFG, curves=curves, seed=3)
        b = run_monte_carlo(10, CFG, curves=curves, seed=3)
        assert [p.bank_aware_ways for p in a.points] == [
            p.bank_aware_ways for p in b.points
        ]

    def test_bank_aware_decisions_cover_capacity(self, curves):
        mc = run_monte_carlo(10, CFG, curves=curves, seed=4)
        for p in mc.points:
            assert sum(p.bank_aware_ways) == CFG.l2.total_ways

    def test_reduction_exists_on_average(self, curves):
        """Partitioning by marginal utility must beat even shares overall
        (the direction of the paper's 30 %/27 % claim)."""
        mc = run_monte_carlo(60, CFG, curves=curves, seed=5)
        assert mc.mean_unrestricted_ratio < 0.95
        assert mc.mean_bank_aware_ratio < 0.97


class TestProfiles:
    def test_profiles_cover_suite(self, curves):
        assert len(curves) == 26
        for name, c in curves.items():
            assert c.name == name
            assert c.max_ways == CFG.l2.total_ways
            assert c.total_accesses > 0

    def test_warmup_removes_cold_misses(self):
        cold = collect_profiles(
            ("bzip2",), CFG, accesses=30_000, warmup_fraction=0.0
        )["bzip2"]
        warm = collect_profiles(
            ("bzip2",), CFG, accesses=30_000, warmup_fraction=0.4
        )["bzip2"]
        assert warm.miss_ratio_at(128) < cold.miss_ratio_at(128)


class TestExperimentDrivers:
    def test_table1_mentions_key_parameters(self):
        rows = dict(table1_rows())
        assert "16 MB" in rows["L2 Cache"]
        assert rows["Memory Latency"] == "260 cycles"

    def test_table2_totals(self):
        rows = dict(table2_rows())
        assert rows["Partial Tags"] == pytest.approx(54.0)
        assert rows["Total per profiler"] == pytest.approx(83.25)

    def test_fig2_histogram_shape(self):
        h = fig2_histogram("crafty", CFG, accesses=20_000, positions=16)
        assert len(h) == 17
        assert h.sum() == 20_000
        # temporal locality: the MRU half collects more hits than the LRU half
        assert h[:8].sum() > h[8:16].sum()

    def test_fig3_shapes(self):
        curves = fig3_curves(config=CFG, accesses=30_000)
        six, bz, ap = (curves[n] for n in ("sixtrack", "bzip2", "applu"))
        assert six.miss_ratio_at(8) < 0.15
        assert ap.miss_ratio_at(16) - ap.miss_ratio_at(64) < 0.06
        assert bz.miss_ratio_at(8) - bz.miss_ratio_at(48) > 0.3

    def test_fig4_orderings(self):
        rows = {o.scheme: o for o in fig4_aggregation(accesses=15_000)}
        assert rows["cascade"].miss_rate == pytest.approx(rows["ideal"].miss_rate)
        assert rows["cascade"].migrations_per_access > 10 * max(
            rows["hash"].migrations_per_access, 1e-9
        )
        assert rows["parallel"].directory_probes_per_access > rows[
            "hash"
        ].directory_probes_per_access

    def test_table3_assignments(self, curves):
        out = table3_assignments(CFG, curves=curves)
        assert len(out) == 8
        for mix, decision in out:
            assert len(mix) == 8
            assert decision.total_ways == CFG.l2.total_ways

    def test_profiler_accuracy_paper_point(self):
        rows = profiler_accuracy("twolf", CFG, accesses=30_000)
        err_12_32 = next(e for b, s, e in rows if b == 12 and s == 32)
        assert err_12_32 < 0.05


class TestReport:
    def test_format_table_alignment(self):
        txt = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.25]])
        lines = txt.splitlines()
        assert len({len(l) for l in lines}) == 1  # aligned block
        assert "xyz" in txt and "3.250" in txt

    def test_format_table_width_check(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("u", [0.1, 0.2, 0.3, 0.4], samples=3)
        assert "mean=0.250" in out
        assert format_series("e", []) == "e: (empty)"

    def test_miss_curve_rows(self, curves):
        rows = miss_curve_rows({"gzip": curves["gzip"]}, (0, 8))
        assert rows[0][0] == "gzip"
        assert rows[0][1] == pytest.approx(1.0)


class TestCsvExport:
    def test_write_csv_round_trip(self, tmp_path):
        import csv

        from repro.analysis import write_csv

        path = tmp_path / "t.csv"
        write_csv(path, ["a", "b"], [[1, 2.5], ["x", 0.1]])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2.5"], ["x", "0.1"]]

    def test_write_csv_width_checked(self, tmp_path):
        import pytest as _pytest

        from repro.analysis import write_csv

        with _pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", ["a"], [[1, 2]])


class TestFairness:
    def test_standalone_and_report(self):
        from repro.analysis.fairness import fairness_report, standalone_cpi
        from repro.config import scaled_config
        from repro.sim import RunSettings
        from repro.workloads import Mix

        cfg = scaled_config(32, epoch_cycles=150_000)
        st = RunSettings(duration_cycles=400_000, seed=3)
        alone = standalone_cpi("gzip", cfg, st)
        assert alone > 0
        mix = Mix(("gzip", "eon", "swim", "galgel",
                   "perlbmk", "crafty", "gap", "mcf"))
        rep = fairness_report(mix, "equal-partitions", cfg, st)
        assert len(rep.slowdowns) == 8
        assert rep.worst_slowdown >= 1.0 - 0.25  # contention rarely speeds up
        assert 0.0 < rep.fairness_index <= 1.0
        assert rep.weighted_speedup > 0
