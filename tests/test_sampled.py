"""Hardware MSA profiler: set sampling, partial tags, capacity cap."""

import numpy as np
import pytest

from repro.profiling.msa import MSAProfiler
from repro.profiling.sampled import SampledMSAProfiler, profile_error
from repro.workloads import generate_trace, get

NSETS = 256


class TestSampling:
    def test_only_sampled_sets_observed(self):
        p = SampledMSAProfiler(8, 4, set_sampling=4)
        assert p.observe(0) is not None  # set 0 sampled (offset 0)
        assert p.observe(1) is None
        assert p.observe(4) is not None
        assert p.observed == 2

    def test_sample_offset(self):
        p = SampledMSAProfiler(8, 4, set_sampling=4, sample_offset=1)
        assert p.observe(0) is None
        assert p.observe(1) is not None

    def test_histogram_scaled_by_ratio(self):
        p = SampledMSAProfiler(8, 4, set_sampling=4)
        p.observe(0)
        assert p.total_accesses == pytest.approx(4.0)
        assert p.raw_histogram.sum() == pytest.approx(1.0)

    def test_sampling_one_equals_exact(self):
        """With every set sampled and wide-enough tags the HW profiler is
        bit-identical to the exact one."""
        trace = generate_trace(get("vortex"), 20_000, NSETS, seed=2)
        exact = MSAProfiler(NSETS, 32)
        hw = SampledMSAProfiler(NSETS, 32, set_sampling=1, partial_tag_bits=40)
        exact.observe_many(trace.lines)
        hw.observe_many(trace.lines)
        assert np.allclose(exact.histogram, hw.histogram)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SampledMSAProfiler(8, 4, set_sampling=3)
        with pytest.raises(ValueError):
            SampledMSAProfiler(8, 4, set_sampling=16)
        with pytest.raises(ValueError):
            SampledMSAProfiler(8, 4, sample_offset=9)
        with pytest.raises(ValueError):
            SampledMSAProfiler(8, 4, partial_tag_bits=0)
        with pytest.raises(ValueError):
            SampledMSAProfiler(8, 4, tag_mode="banana")


class TestPartialTags:
    def test_truncate_mode_default(self):
        p = SampledMSAProfiler(8, 4, set_sampling=1, partial_tag_bits=12)
        assert p.tag_mode == "truncate"
        assert p.partial_tag(0b1_000) == 1  # line 8: set 0, tag 1
        assert p.partial_tag((4096 + 3) << 3) == 3  # truncates high bits

    def test_fold_mode_in_range(self):
        p = SampledMSAProfiler(
            8, 4, set_sampling=1, partial_tag_bits=12, tag_mode="fold"
        )
        for line in (0, 57, 123456, 2**40):
            assert 0 <= p.partial_tag(line) < 4096

    def test_aliasing_exists_with_tiny_tags(self):
        """1-bit tags must alias massively and overestimate hits."""
        trace = generate_trace(get("vortex"), 20_000, NSETS, seed=2)
        exact = MSAProfiler(NSETS, 32)
        tiny = SampledMSAProfiler(NSETS, 32, set_sampling=1, partial_tag_bits=1)
        exact.observe_many(trace.lines)
        tiny.observe_many(trace.lines)
        assert tiny.miss_counts()[32] < exact.miss_counts()[32]


class TestPaperAccuracyClaim:
    @pytest.mark.parametrize("name", ["bzip2", "twolf", "mcf", "vpr"])
    def test_12bit_1in32_within_5_percent(self, name):
        """Paper Section III.A: 12-bit partial tags + 1-in-32 sampling stay
        within 5 % of the full-tag profile."""
        trace = generate_trace(get(name), 40_000, NSETS, seed=3)
        exact = MSAProfiler(NSETS, 72)
        hw = SampledMSAProfiler(
            NSETS, 72, set_sampling=32, partial_tag_bits=12
        )
        exact.observe_many(trace.lines)
        hw.observe_many(trace.lines)
        assert profile_error(exact, hw) < 0.05


class TestEpochManagement:
    def test_reset_and_decay(self):
        p = SampledMSAProfiler(8, 4, set_sampling=1)
        for _ in range(4):
            p.observe(0)
        p.decay(0.5)
        assert p.total_accesses == pytest.approx(2.0)
        p.reset()
        assert p.total_accesses == 0.0
        with pytest.raises(ValueError):
            p.decay(-0.1)

    def test_miss_counts_monotonic(self):
        p = SampledMSAProfiler(NSETS, 16, set_sampling=4)
        trace = generate_trace(get("gcc"), 10_000, NSETS, seed=4)
        p.observe_many(trace.lines)
        assert np.all(np.diff(p.miss_counts()) <= 1e-9)

    def test_misses_at_bounds(self):
        p = SampledMSAProfiler(8, 4, set_sampling=1)
        with pytest.raises(ValueError):
            p.misses_at(5)
