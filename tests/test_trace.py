"""Memory trace container behaviour."""

import numpy as np
import pytest

from repro.mem.trace import MemoryAccess, Trace, interleave_round_robin


def make_trace(n=10):
    return Trace.from_records([(i * 64, i % 2 == 0, i) for i in range(n)])


class TestTrace:
    def test_round_trip_records(self):
        t = make_trace(5)
        assert len(t) == 5
        assert t[3] == MemoryAccess(3 * 64, False, 3)

    def test_iteration_matches_indexing(self):
        t = make_trace(7)
        assert list(t) == [t[i] for i in range(7)]

    def test_lines_vectorised(self):
        t = make_trace(5)
        assert np.array_equal(t.lines, np.arange(5, dtype=np.uint64))

    def test_line_property_of_access(self):
        assert MemoryAccess(130, False, 0).line == 2

    def test_instruction_count(self):
        t = make_trace(4)  # gaps 0+1+2+3 plus 4 memory ops
        assert t.instruction_count == 6 + 4

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=np.bool_),
                np.zeros(3, dtype=np.uint32),
            )

    def test_dtype_coercion(self):
        t = Trace(
            np.arange(4, dtype=np.int64),
            np.zeros(4, dtype=np.int32),
            np.ones(4, dtype=np.int64),
        )
        assert t.addresses.dtype == np.uint64
        assert t.is_write.dtype == np.bool_
        assert t.gaps.dtype == np.uint32

    def test_slice(self):
        t = make_trace(10)
        s = t.slice(2, 5)
        assert len(s) == 3
        assert s[0] == t[2]

    def test_concat(self):
        a, b = make_trace(3), make_trace(2)
        c = a.concat(b)
        assert len(c) == 5
        assert c[3] == b[0]

    def test_with_offset(self):
        t = make_trace(3).with_offset(1 << 20)
        assert t[0].address == 1 << 20
        with pytest.raises(ValueError):
            t.with_offset(-1)

    def test_footprint_lines(self):
        t = Trace.from_lines([1, 2, 2, 3, 1])
        assert t.footprint_lines() == 3

    def test_from_lines_gap(self):
        t = Trace.from_lines([5, 6], gap=9)
        assert t[0].gap == 9
        assert t[0].address == 5 * 64

    def test_save_load(self, tmp_path):
        t = make_trace(20)
        path = tmp_path / "t.npz"
        t.save(path)
        loaded = Trace.load(path)
        assert np.array_equal(loaded.addresses, t.addresses)
        assert np.array_equal(loaded.is_write, t.is_write)
        assert np.array_equal(loaded.gaps, t.gaps)

    def test_empty_trace(self):
        t = Trace.from_records([])
        assert len(t) == 0
        assert t.instruction_count == 0

    def test_text_round_trip(self, tmp_path):
        t = make_trace(15)
        path = tmp_path / "t.trc"
        t.save_text(path)
        loaded = Trace.load_text(path)
        assert list(loaded) == list(t)

    def test_text_format_tolerates_comments_and_default_gap(self, tmp_path):
        path = tmp_path / "hand.trc"
        path.write_text("# comment\n\nR 40 3\nW ff\n")
        t = Trace.load_text(path)
        assert t[0] == MemoryAccess(0x40, False, 3)
        assert t[1] == MemoryAccess(0xFF, True, 0)

    def test_text_format_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("X 40 1\n")
        with pytest.raises(ValueError, match="bad record"):
            Trace.load_text(path)


class TestInterleave:
    def test_round_robin_order(self):
        a = Trace.from_lines([1, 2])
        b = Trace.from_lines([10])
        out = interleave_round_robin([a, b])
        assert [(c, acc.line) for c, acc in out] == [(0, 1), (1, 10), (0, 2)]

    def test_empty_inputs(self):
        assert interleave_round_robin([Trace.from_records([])]) == []
