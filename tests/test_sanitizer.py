"""Deep runtime invariant checking (``--sanitize``): unit checks on
corrupted state, and end-to-end detection of injected profiler faults that
the guard would otherwise contain silently."""

import numpy as np
import pytest

from repro.cache.cacheset import CacheSet
from repro.cache.nuca import NucaL2
from repro.cache.partition_map import (
    BankAllocation,
    CorePartition,
    PartitionMap,
    equal_partition_map,
)
from repro.config import L2Config, scaled_config
from repro.partitioning.allocation import decision_to_partition_map
from repro.partitioning.bank_aware import BankAwareDecision
from repro.profiling.msa import MSAProfiler
from repro.profiling.sampled import SampledMSAProfiler
from repro.resilience import FaultPlan, ReproSanitizer, SanitizerViolation
from repro.sim.runner import RunSettings, run_mix
from repro.workloads import TABLE_III_SETS


@pytest.fixture
def sanitizer():
    return ReproSanitizer()


# ------------------------------------------------------------- cache sets


class TestCheckSet:
    def _filled_set(self):
        cset = CacheSet(4)
        for tag in (10, 20, 30):
            cset.insert(tag, 0, (0, 1, 2, 3))
        return cset

    def test_healthy_set_passes(self, sanitizer):
        sanitizer.check_set(self._filled_set())
        assert sanitizer.checks_run == 1

    def test_duplicate_stamp_detected(self, sanitizer):
        cset = self._filled_set()
        ways = [cset._map[10], cset._map[20]]
        cset._stamps[ways[0]] = cset._stamps[ways[1]]
        with pytest.raises(SanitizerViolation, match="lru-uniqueness"):
            sanitizer.check_set(cset)

    def test_duplicate_tag_detected(self, sanitizer):
        cset = self._filled_set()
        empty_way = cset._tags.index(None)
        cset._tags[empty_way] = 10  # line 10 now resident twice
        with pytest.raises(SanitizerViolation, match="resident twice"):
            sanitizer.check_set(cset)

    def test_tag_map_divergence_detected(self, sanitizer):
        cset = self._filled_set()
        cset._map[20] = cset._map[10]  # map points 20 at 10's way
        with pytest.raises(SanitizerViolation, match="tag-map"):
            sanitizer.check_set(cset)

    def test_context_in_message(self, sanitizer):
        cset = self._filled_set()
        cset._map[20] = cset._map[10]
        with pytest.raises(SanitizerViolation, match=r"bank=2, set=7"):
            sanitizer.check_set(cset, bank=2, set_index=7)


# ------------------------------------------------------- partition checks


class TestPartitionChecks:
    def test_full_map_passes(self, sanitizer):
        pmap = equal_partition_map(2, 4, 4)
        sanitizer.check_partition_map(pmap, num_banks=4, bank_ways=4)

    def test_capacity_leak_detected(self, sanitizer):
        pmap = PartitionMap()
        pmap.add(CorePartition(0, (BankAllocation(0, (0, 1, 2, 3)),)))
        with pytest.raises(SanitizerViolation, match="capacity leak"):
            sanitizer.check_partition_map(pmap, num_banks=4, bank_ways=4)

    def test_double_claim_detected(self, sanitizer):
        pmap = equal_partition_map(2, 4, 4)
        # claim core 1's Local bank a second time
        pmap.partitions[0] = CorePartition(
            0, (BankAllocation(0, (0, 1, 2, 3)), BankAllocation(1, (0, 1)))
        )
        with pytest.raises(SanitizerViolation, match="way-conservation"):
            sanitizer.check_partition_map(pmap, num_banks=4, bank_ways=4)


class TestDecisionRealization:
    def _decision(self):
        # 4 cores, 8 banks: cores 2/3 take the Center banks, cores 0/1 pair.
        return BankAwareDecision(
            ways=(12, 4, 24, 24),
            center_banks=(0, 0, 2, 2),
            pairs=((0, 1),),
            bank_ways=8,
        )

    def test_faithful_realization_passes(self, sanitizer):
        decision = self._decision()
        pmap = decision_to_partition_map(decision, num_banks=8)
        sanitizer.check_decision_realization(decision, pmap)

    def test_way_vector_mismatch_detected(self, sanitizer):
        decision = self._decision()
        with pytest.raises(SanitizerViolation, match="realization"):
            sanitizer.check_decision_realization(
                decision, equal_partition_map(4, 8, 8)
            )

    def test_rule3_spill_detected(self, sanitizer):
        decision = self._decision()
        pmap = decision_to_partition_map(decision, num_banks=8)
        # relocate core 0's annex from its partner's bank into bank 2
        part = pmap[0]
        pmap.partitions[0] = CorePartition(
            0, part.level1, level2=BankAllocation(2, part.level2.ways)
        )
        with pytest.raises(SanitizerViolation, match="Rule 3"):
            sanitizer.check_decision_realization(decision, pmap)


# ------------------------------------------------------- profiler ledgers


class TestProfilerMass:
    def test_msa_ledger_tracks_decay_and_reset(self, sanitizer):
        prof = MSAProfiler(16, 4)
        prof.observe_many(range(40))
        sanitizer.check_profiler(prof)
        prof.decay(0.5)
        sanitizer.check_profiler(prof)
        prof.reset()
        sanitizer.check_profiler(prof)

    def test_sampled_ledger_consistent(self, sanitizer):
        prof = SampledMSAProfiler(64, 8, set_sampling=4)
        prof.observe_many(range(512))
        sanitizer.check_profiler(prof)
        prof.decay(0.75)
        sanitizer.check_profiler(prof)

    def test_counter_tampering_detected(self, sanitizer):
        prof = MSAProfiler(16, 4)
        prof.observe_many(range(40))
        prof._counters[0] += 5.0
        with pytest.raises(SanitizerViolation, match="msa-mass"):
            sanitizer.check_profiler(prof)

    def test_zeroed_trusted_histogram_detected(self, sanitizer):
        prof = MSAProfiler(16, 4)
        prof.observe_many(range(40))
        with pytest.raises(SanitizerViolation, match="tampered"):
            sanitizer.check_trusted_histogram(
                prof, np.zeros_like(prof.histogram), core=3
            )

    def test_non_finite_trusted_histogram_detected(self, sanitizer):
        prof = MSAProfiler(16, 4)
        prof.observe_many(range(40))
        bad = prof.histogram
        bad[0] = np.nan
        with pytest.raises(SanitizerViolation, match="non-finite"):
            sanitizer.check_trusted_histogram(prof, bad)

    def test_untouched_histogram_passes(self, sanitizer):
        prof = MSAProfiler(16, 4)
        prof.observe_many(range(40))
        sanitizer.check_trusted_histogram(prof, prof.histogram)


# -------------------------------------------------------- installed state


class TestInstallation:
    def _l2(self):
        cfg = L2Config(num_banks=4, bank_ways=4, sets_per_bank=16)
        l2 = NucaL2(cfg, num_cores=2)
        l2.apply_partition(equal_partition_map(2, 4, 4))
        for line in range(64):
            l2.access(line % 2, line)
        return l2

    def test_healthy_installation_passes(self, sanitizer):
        sanitizer.check_installation(self._l2())
        assert sanitizer.checks_run > 1

    def test_directory_corruption_detected(self, sanitizer):
        l2 = self._l2()
        line = next(iter(l2._where))
        l2._where[line] = (l2._where[line] + 1) % 4
        with pytest.raises(SanitizerViolation, match="directory"):
            sanitizer.check_installation(l2)

    def test_ownership_mask_corruption_detected(self, sanitizer):
        l2 = self._l2()
        owners = l2.banks[0].way_owners()
        owners[0] = frozenset((1,))  # steal a way core 0 is mapped to
        l2.banks[0].set_way_owners(owners)
        with pytest.raises(SanitizerViolation, match="way-conservation"):
            sanitizer.check_installation(l2)


# --------------------------------------------------------------- end to end


class TestEndToEnd:
    def _settings(self, **kwargs):
        return RunSettings(duration_cycles=500_000.0, seed=5, **kwargs)

    def _config(self):
        return scaled_config(32, epoch_cycles=150_000)

    def test_sanitized_run_completes_clean(self):
        result = run_mix(
            TABLE_III_SETS[0], "bank-aware", self._config(),
            self._settings(sanitize=True),
        )
        assert result.total_instructions > 0

    def test_injected_fault_raises_sanitizer_violation(self):
        plan = FaultPlan.parse("0:zero@0")
        with pytest.raises(SanitizerViolation, match="msa-mass"):
            run_mix(
                TABLE_III_SETS[0], "bank-aware", self._config(),
                self._settings(sanitize=True, fault_plan=plan),
            )

    def test_same_fault_contained_without_sanitize(self):
        plan = FaultPlan.parse("0:zero@0")
        result = run_mix(
            TABLE_III_SETS[0], "bank-aware", self._config(),
            self._settings(fault_plan=plan),
        )
        assert result.total_instructions > 0
