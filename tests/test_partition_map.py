"""Physical partition descriptions and their global validation."""

import pytest

from repro.cache.bank import CacheBank
from repro.cache.partition_map import (
    BankAllocation,
    CorePartition,
    PartitionMap,
    equal_partition_map,
)


class TestBankAllocation:
    def test_ways_sorted_and_unique(self):
        a = BankAllocation(3, (2, 0, 1))
        assert a.ways == (0, 1, 2)
        assert a.num_ways == 3

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            BankAllocation(0, (1, 1))
        with pytest.raises(ValueError):
            BankAllocation(0, ())
        with pytest.raises(ValueError):
            BankAllocation(0, (-1,))


class TestCorePartition:
    def test_total_ways(self):
        p = CorePartition(
            0,
            (BankAllocation(0, (0, 1)), BankAllocation(1, tuple(range(8)))),
            level2=BankAllocation(2, (4, 5)),
        )
        assert p.total_ways == 12
        assert p.banks == (0, 1, 2)
        assert len(p.allocations()) == 3

    def test_duplicate_bank_rejected(self):
        with pytest.raises(ValueError):
            CorePartition(
                0,
                (BankAllocation(1, (0,)),),
                level2=BankAllocation(1, (1,)),
            )

    def test_needs_level1(self):
        with pytest.raises(ValueError):
            CorePartition(0, ())


class TestPartitionMap:
    def test_duplicate_core_rejected(self):
        pm = PartitionMap()
        pm.add(CorePartition(0, (BankAllocation(0, (0,)),)))
        with pytest.raises(ValueError):
            pm.add(CorePartition(0, (BankAllocation(1, (0,)),)))

    def test_validate_catches_double_claim(self):
        pm = PartitionMap()
        pm.add(CorePartition(0, (BankAllocation(0, (0, 1)),)))
        pm.add(CorePartition(1, (BankAllocation(0, (1, 2)),)))
        with pytest.raises(ValueError, match="claimed"):
            pm.validate(num_banks=2, bank_ways=4)

    def test_validate_catches_out_of_range(self):
        pm = PartitionMap()
        pm.add(CorePartition(0, (BankAllocation(5, (0,)),)))
        with pytest.raises(ValueError):
            pm.validate(num_banks=2, bank_ways=4)
        pm2 = PartitionMap()
        pm2.add(CorePartition(0, (BankAllocation(0, (9,)),)))
        with pytest.raises(ValueError):
            pm2.validate(num_banks=2, bank_ways=4)

    def test_way_vector(self):
        pm = equal_partition_map(8, 16, 8)
        assert pm.way_vector() == {c: 16 for c in range(8)}

    def test_install_programs_banks(self):
        pm = PartitionMap()
        pm.add(CorePartition(0, (BankAllocation(0, (0, 1)),)))
        pm.add(CorePartition(1, (BankAllocation(0, (2, 3)),)))
        banks = [CacheBank(0, 4, 4)]
        pm.install(banks)
        assert banks[0].candidates_for(0) == (0, 1)
        assert banks[0].candidates_for(1) == (2, 3)

    def test_install_unclaimed_ways_are_locked(self):
        pm = PartitionMap()
        pm.add(CorePartition(0, (BankAllocation(0, (0,)),)))
        banks = [CacheBank(0, 4, 2)]
        pm.install(banks)
        assert banks[0].candidates_for(1) == ()


class TestEqualPartitionMap:
    def test_paper_shape(self):
        """Each core gets its Local bank plus one Center bank (2 MB)."""
        pm = equal_partition_map(8, 16, 8)
        pm.validate(16, 8)
        for core in range(8):
            part = pm[core]
            assert part.total_ways == 16
            assert core in part.banks  # its Local bank
            assert len(part.level1) == 2
            assert part.level2 is None

    def test_all_banks_covered_once(self):
        pm = equal_partition_map(8, 16, 8)
        banks = [b for c in range(8) for b in pm[c].banks]
        assert sorted(banks) == list(range(16))

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            equal_partition_map(3, 16, 8)
