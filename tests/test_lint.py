"""Static-analysis engine: every rule positive+negative, suppressions,
configuration, reporters, CLI exit codes."""

import json

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    Finding,
    LintConfig,
    LintConfigError,
    LintResult,
    PARSE_RULE,
    RULES,
    collect_suppressions,
    config_from_mapping,
    lint_paths,
    lint_source,
    load_config,
    render_json,
    render_rules,
    render_text,
)

CFG = LintConfig()


def rules_of(findings):
    return [f.rule for f in findings]


def lint(source, path="src/repro/analysis/example.py", config=CFG):
    return lint_source(source, path, config)


# ---------------------------------------------------------------- DET001


class TestDet001:
    def test_import_random_flagged(self):
        assert "DET001" in rules_of(lint("import random\n"))

    def test_from_random_import_flagged(self):
        assert "DET001" in rules_of(lint("from random import shuffle\n"))

    def test_numpy_default_rng_flagged(self):
        src = "import numpy as np\nr = np.random.default_rng(3)\n"
        assert "DET001" in rules_of(lint(src))

    def test_numpy_random_seed_flagged(self):
        src = "import numpy\nnumpy.random.seed(0)\n"
        assert "DET001" in rules_of(lint(src))

    def test_rng_stream_clean(self):
        src = "from repro.util.rng import rng_stream\nr = rng_stream('x', 1)\n"
        assert "DET001" not in rules_of(lint(src))

    def test_allowed_in_rng_module(self):
        src = "import numpy as np\nr = np.random.default_rng(3)\n"
        findings = lint(src, path="src/repro/util/rng.py")
        assert "DET001" not in rules_of(findings)


# ---------------------------------------------------------------- DET002


class TestDet002:
    def test_wall_clock_in_sim_flagged(self):
        src = "import time\nnow = time.time()\n"
        findings = lint(src, path="src/repro/sim/controller.py")
        assert "DET002" in rules_of(findings)

    def test_datetime_now_in_cache_flagged(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        findings = lint(src, path="src/repro/cache/nuca.py")
        assert "DET002" in rules_of(findings)

    def test_wall_clock_outside_scope_allowed(self):
        src = "import time\nnow = time.time()\n"
        findings = lint(src, path="src/repro/analysis/report.py")
        assert "DET002" not in rules_of(findings)


# ---------------------------------------------------------------- FP001


class TestFp001:
    def test_float_literal_equality_flagged(self):
        assert "FP001" in rules_of(lint("ok = x == 1.5\n"))

    def test_float_call_inequality_flagged(self):
        assert "FP001" in rules_of(lint("bad = float(x) != y\n"))

    def test_arithmetic_over_floats_flagged(self):
        assert "FP001" in rules_of(lint("bad = a == b * 0.5\n"))

    def test_int_equality_clean(self):
        assert "FP001" not in rules_of(lint("ok = x == 1\n"))

    def test_pytest_approx_clean(self):
        src = "import pytest\nok = x == pytest.approx(1.5)\n"
        assert "FP001" not in rules_of(lint(src))

    def test_comparison_operators_clean(self):
        assert "FP001" not in rules_of(lint("ok = x < 1.5 or x >= 0.1\n"))


# ---------------------------------------------------------------- INV001


class TestInv001:
    def test_direct_construction_flagged(self):
        src = (
            "from repro.cache.partition_map import PartitionMap\n"
            "pmap = PartitionMap()\n"
        )
        findings = lint(src, path="src/repro/sim/custom.py")
        assert "INV001" in rules_of(findings)

    def test_allowed_inside_partitioning(self):
        src = (
            "from repro.cache.partition_map import PartitionMap\n"
            "pmap = PartitionMap()\n"
        )
        findings = lint(src, path="src/repro/partitioning/allocation.py")
        assert "INV001" not in rules_of(findings)

    def test_allowed_in_guard(self):
        src = (
            "from repro.cache.partition_map import PartitionMap\n"
            "pmap = PartitionMap()\n"
        )
        findings = lint(src, path="src/repro/resilience/guard.py")
        assert "INV001" not in rules_of(findings)


# ---------------------------------------------------------------- API001


class TestApi001:
    def test_mutable_default_flagged(self):
        src = "def build(items: list | None = []) -> list:\n    return items\n"
        assert "API001" in rules_of(lint(src))

    def test_bare_except_flagged(self):
        src = "try:\n    x = 1\nexcept:\n    pass\n"
        assert "API001" in rules_of(lint(src))

    def test_unannotated_public_function_flagged(self):
        src = "def compute(value):\n    return value\n"
        assert "API001" in rules_of(lint(src))

    def test_missing_return_annotation_flagged(self):
        src = "def compute(value: int):\n    return value\n"
        assert "API001" in rules_of(lint(src))

    def test_annotated_function_clean(self):
        src = "def compute(value: int) -> int:\n    return value\n"
        assert "API001" not in rules_of(lint(src))

    def test_private_function_exempt(self):
        src = "def _helper(value):\n    return value\n"
        assert "API001" not in rules_of(lint(src))

    def test_annotations_not_required_outside_src(self):
        src = "def test_run(benchmark):\n    pass\n\ndef helper(x):\n    pass\n"
        findings = lint(src, path="benchmarks/bench_example.py")
        assert "API001" not in rules_of(findings)


# ---------------------------------------------------------------- RES002


class TestRes002:
    def test_broad_except_pass_flagged(self):
        src = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        assert "RES002" in rules_of(lint(src))

    def test_bare_except_ellipsis_flagged(self):
        src = "try:\n    x = 1\nexcept:\n    ...\n"
        assert "RES002" in rules_of(lint(src))

    def test_base_exception_flagged(self):
        src = "try:\n    x = 1\nexcept BaseException:\n    pass\n"
        assert "RES002" in rules_of(lint(src))

    def test_broad_member_of_tuple_flagged(self):
        src = "try:\n    x = 1\nexcept (ValueError, Exception):\n    pass\n"
        assert "RES002" in rules_of(lint(src))

    def test_narrow_typed_pass_clean(self):
        # the supervisor's kill-pool idiom: a precise catch may swallow
        src = "try:\n    x = 1\nexcept (OSError, ValueError):\n    pass\n"
        assert "RES002" not in rules_of(lint(src))

    def test_broad_except_with_handling_body_clean(self):
        src = "try:\n    x = 1\nexcept Exception:\n    x = None\n"
        assert "RES002" not in rules_of(lint(src))

    def test_scoped_by_res002_paths(self):
        src = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        findings = lint(src, path="benchmarks/bench_example.py")
        assert "RES002" not in rules_of(findings)

    def test_res002_paths_configurable(self):
        cfg = config_from_mapping(
            {"rules": {"res002-paths": ["benchmarks/"]}}
        )
        src = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        findings = lint(src, path="benchmarks/bench_example.py", config=cfg)
        assert "RES002" in rules_of(findings)


# ---------------------------------------------------------- suppressions


class TestSuppressions:
    def test_collect(self):
        src = "x = 1  # repro-lint: disable=FP001,API001\ny = 2\n"
        assert collect_suppressions(src) == {1: {"FP001", "API001"}}

    def test_suppressed_rule_dropped(self):
        src = "bad = x == 1.5  # repro-lint: disable=FP001\n"
        assert "FP001" not in rules_of(lint(src))

    def test_disable_all(self):
        src = "import random  # repro-lint: disable=all\n"
        assert rules_of(lint(src)) == []

    def test_wrong_rule_does_not_suppress(self):
        src = "bad = x == 1.5  # repro-lint: disable=DET001\n"
        assert "FP001" in rules_of(lint(src))

    def test_other_line_not_suppressed(self):
        src = "# repro-lint: disable=FP001\nbad = x == 1.5\n"
        assert "FP001" in rules_of(lint(src))


# --------------------------------------------------------- configuration


class TestConfig:
    def test_severity_override(self):
        cfg = config_from_mapping({"severity": {"FP001": "advice"}})
        findings = lint("bad = x == 1.5\n", config=cfg)
        fp = [f for f in findings if f.rule == "FP001"]
        assert fp and fp[0].severity == "advice"

    def test_select_restricts(self):
        cfg = config_from_mapping({"select": ["DET001"]})
        src = "import random\nbad = x == 1.5\n"
        assert rules_of(lint(src, config=cfg)) == ["DET001"]

    def test_ignore_drops(self):
        cfg = config_from_mapping({"ignore": ["FP001"]})
        assert "FP001" not in rules_of(lint("bad = x == 1.5\n", config=cfg))

    def test_unknown_key_rejected(self):
        with pytest.raises(LintConfigError):
            config_from_mapping({"sevrity": {}})

    def test_bad_severity_value_rejected(self):
        with pytest.raises(LintConfigError):
            config_from_mapping({"severity": {"FP001": "warning"}})

    def test_load_config_reads_repo_pyproject(self):
        cfg = load_config()
        assert "tests" in cfg.exclude

    def test_rule_scoping_configurable(self):
        cfg = config_from_mapping(
            {"rules": {"det002-paths": ["repro/noc/"]}}
        )
        src = "import time\nnow = time.time()\n"
        assert "DET002" not in rules_of(
            lint(src, path="src/repro/sim/x.py", config=cfg)
        )
        assert "DET002" in rules_of(
            lint(src, path="src/repro/noc/x.py", config=cfg)
        )

    def test_det002_allow_carves_out_harness(self):
        cfg = config_from_mapping(
            {"rules": {
                "det002-paths": ["repro/parallel/"],
                "det002-allow": ["repro/parallel/bench.py"],
            }}
        )
        src = "import time\nnow = time.time()\n"
        assert "DET002" in rules_of(
            lint(src, path="src/repro/parallel/executor.py", config=cfg)
        )
        assert "DET002" not in rules_of(
            lint(src, path="src/repro/parallel/bench.py", config=cfg)
        )

    def test_repo_config_scopes_bench_harness(self):
        cfg = load_config()
        assert "repro/parallel/bench.py" in cfg.det002_allow


# ------------------------------------------------------------- reporters


class TestReporters:
    def _result(self):
        findings = lint("import random\nbad = x == 1.5\n")
        return LintResult(findings=tuple(findings), files_checked=1)

    def test_parse_error_reported(self):
        findings = lint("def broken(:\n")
        assert rules_of(findings) == [PARSE_RULE]
        assert findings[0].severity == "error"

    def test_text_reporter(self):
        text = render_text(self._result())
        assert "DET001" in text and "FP001" in text
        assert "1 file checked" in text and "2 error(s)" in text

    def test_json_schema(self):
        result = self._result()
        payload = json.loads(render_json(result))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["summary"]["error"] == result.error_count
        assert payload["summary"]["advice"] == result.advice_count
        for item in payload["findings"]:
            assert set(item) == {
                "path", "line", "column", "rule", "severity", "message",
            }

    def test_render_rules_lists_every_rule(self):
        text = render_rules()
        for rule_id in RULES:
            assert rule_id in text

    def test_exit_codes(self):
        dirty = self._result()
        assert dirty.error_count > 0 and dirty.exit_code == 1
        clean = LintResult(findings=(), files_checked=3)
        assert clean.exit_code == 0
        advice_only = LintResult(
            findings=(
                Finding("p.py", 1, 0, "API001", "advice", "m"),
            ),
            files_checked=1,
        )
        assert advice_only.exit_code == 0


# ------------------------------------------------------------------ CLI


class TestCli:
    def test_lint_paths_missing_operand(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["no/such/dir"], CFG)

    def test_cli_clean_file(self, tmp_path):
        from repro.cli import main

        good = tmp_path / "clean.py"
        good.write_text("def fine(x: int) -> int:\n    return x\n")
        assert main(["lint", str(good)]) == 0

    def test_cli_violations_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "dirty.py"
        bad.write_text("import random\n")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["error"] >= 1
        assert payload["findings"][0]["rule"] == "DET001"

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        assert "DET001" in capsys.readouterr().out

    def test_repository_is_clean(self):
        result = lint_paths(["src", "benchmarks", "examples"], load_config())
        assert result.exit_code == 0, render_text(result)
