"""The banked NUCA L2: shared organisations, partitioning, migration."""

import pytest

from repro.cache.nuca import NucaL2
from repro.cache.partition_map import (
    BankAllocation,
    CorePartition,
    PartitionMap,
    equal_partition_map,
)
from repro.config import L2Config

CFG = L2Config(num_banks=16, bank_ways=8, sets_per_bank=32)


def make_l2(placement="parallel", num_cores=8, config=CFG):
    return NucaL2(config, num_cores, placement=placement)


def directory_consistent(l2: NucaL2) -> bool:
    """Every directory entry points at a bank that really holds the line,
    and every resident line is in the directory."""
    resident = {}
    for bank in l2.banks:
        for line in bank.resident_lines():
            resident[line] = bank.bank_id
    return resident == l2._where


class TestSharedModes:
    @pytest.mark.parametrize("placement", ["parallel", "hash", "dnuca"])
    def test_miss_then_hit(self, placement):
        l2 = make_l2(placement)
        l2.share_all()
        assert not l2.access(0, 1234).hit
        assert l2.access(0, 1234).hit
        assert l2.contains(1234)

    @pytest.mark.parametrize("placement", ["parallel", "dnuca"])
    def test_directory_consistency(self, placement):
        l2 = make_l2(placement)
        l2.share_all()
        for core in range(4):
            for i in range(300):
                l2.access(core, (core << 40) + i * 7)
        assert directory_consistent(l2)

    def test_hash_mode_uses_home_bank(self):
        l2 = make_l2("hash")
        l2.share_all()
        r = l2.access(0, 555)
        assert r.bank == l2.shared_home(555)
        assert l2.bank_of(555) == r.bank

    def test_dnuca_fills_local_bank(self):
        l2 = make_l2("dnuca")
        l2.share_all()
        for core in (0, 3, 7):
            r = l2.access(core, (core + 1) << 30)
            assert r.bank == core  # gravity placement at the Local bank

    def test_dnuca_promotion_moves_toward_requester(self):
        l2 = make_l2("dnuca")
        l2.share_all()
        line = 42
        l2.access(7, line)  # lands in bank 7
        assert l2.bank_of(line) == 7
        r = l2.access(0, line)  # core 0 hit: promote 1 step toward core 0
        assert r.hit and r.migrations >= 1
        new_bank = l2.bank_of(line)
        order = l2.bank_orders[0]
        assert order.index(new_bank) < order.index(7)

    def test_dnuca_demotion_chain(self):
        """Filling the same set repeatedly pushes victims outward along the
        owner's bank order instead of dropping them immediately."""
        l2 = make_l2("dnuca")
        l2.share_all()
        sets = CFG.sets_per_bank
        # 9 lines of set 0 > 8 local ways: the 9th fill demotes the LRU
        for i in range(9):
            l2.access(0, i * sets)
        assert all(l2.contains(i * sets) for i in range(9))
        second_bank = l2.bank_orders[0][1]
        assert l2.bank_of(0) == second_bank  # line 0 was LRU, demoted
        assert directory_consistent(l2)

    def test_shared_interference_exists(self):
        """In shared mode one core's stream can evict another's data."""
        l2 = make_l2("dnuca", num_cores=2, config=L2Config(num_banks=2, bank_ways=2, sets_per_bank=16))
        l2.share_all()
        sets = 16
        l2.access(0, 0)
        for i in range(1, 40):  # core 1 streams through set 0 of both banks
            l2.access(1, i * sets)
        assert not l2.contains(0)


class TestPartitionedMode:
    def make_partitioned(self, placement="parallel"):
        l2 = make_l2(placement)
        l2.apply_partition(equal_partition_map(8, 16, 8))
        return l2

    @pytest.mark.parametrize("placement", ["parallel", "hash", "dnuca"])
    def test_miss_then_hit(self, placement):
        l2 = self.make_partitioned(placement)
        assert not l2.access(2, 999).hit
        assert l2.access(2, 999).hit

    @pytest.mark.parametrize("placement", ["parallel", "dnuca"])
    def test_fills_stay_in_partition(self, placement):
        l2 = self.make_partitioned(placement)
        part_banks = set(l2.partition_map[3].banks)
        for i in range(500):
            l2.access(3, (3 << 40) + i)
        for bank in l2.banks:
            if bank.bank_id not in part_banks:
                assert bank.occupancy() == 0

    @pytest.mark.parametrize("placement", ["parallel", "dnuca"])
    def test_partition_isolation(self, placement):
        """The defining property: a neighbour's stream cannot evict a
        partitioned core's lines."""
        l2 = self.make_partitioned(placement)
        victim_lines = [(1 << 40) + i for i in range(64)]
        for line in victim_lines:
            l2.access(1, line)
        for i in range(20_000):
            l2.access(2, (2 << 40) + i)  # core 2 streams furiously
        assert all(l2.contains(line) for line in victim_lines)

    def test_level2_victim_cascade(self):
        """A paired partition demotes level-1 victims into the level-2 ways
        (paper Fig. 4c) instead of dropping them."""
        cfg = L2Config(num_banks=16, bank_ways=8, sets_per_bank=16)
        l2 = NucaL2(cfg, 8, placement="parallel")
        pmap = PartitionMap()
        pmap.add(
            CorePartition(
                0,
                (BankAllocation(0, tuple(range(8))),),
                level2=BankAllocation(1, (4, 5, 6, 7)),
            )
        )
        pmap.add(CorePartition(1, (BankAllocation(1, (0, 1, 2, 3)),)))
        for c in range(2, 8):
            pmap.add(CorePartition(c, (BankAllocation(c, tuple(range(8))),)))
        # centers to core 7 to make the map total the full capacity
        for b in range(8, 16):
            pmap.partitions[7] = CorePartition(
                7,
                tuple(
                    [BankAllocation(7, tuple(range(8)))]
                    + [BankAllocation(bb, tuple(range(8))) for bb in range(8, 16)]
                ),
            )
        l2.apply_partition(pmap)
        sets = cfg.sets_per_bank
        lines = [i * sets for i in range(9)]  # 9 lines, 8 level-1 ways
        for line in lines:
            l2.access(0, line)
        assert all(l2.contains(line) for line in lines)
        assert l2.bank_of(lines[0]) == 1  # the LRU line went to level 2
        assert l2.stats.migrations >= 1

    def test_level2_hit_promotes_back(self):
        cfg = L2Config(num_banks=16, bank_ways=8, sets_per_bank=16)
        l2 = NucaL2(cfg, 8, placement="parallel")
        pmap = equal_partition_map(8, 16, 8)
        pmap.partitions[0] = CorePartition(
            0,
            (BankAllocation(0, tuple(range(8))),),
            level2=BankAllocation(8, tuple(range(8))),
        )
        pmap.partitions[1] = CorePartition(1, (BankAllocation(1, tuple(range(8))),))
        l2.apply_partition(pmap)
        sets = cfg.sets_per_bank
        for i in range(9):
            l2.access(0, i * sets)
        assert l2.bank_of(0) == 8
        r = l2.access(0, 0)  # hit in level 2
        assert r.hit and r.migrations >= 1
        assert l2.bank_of(0) == 0  # promoted back to level 1

    def test_stats_per_core(self):
        l2 = self.make_partitioned()
        l2.access(4, 1)
        l2.access(4, 1)
        l2.access(5, (5 << 40) + 1)
        assert l2.stats.misses[4] == 1
        assert l2.stats.hits[4] == 1
        assert l2.stats.core_accesses(5) == 1
        assert l2.stats.core_miss_rate(4) == 0.5


class TestModeSwitches:
    def test_shared_to_partitioned_keeps_lines(self):
        l2 = make_l2("parallel")
        l2.share_all()
        for i in range(100):
            l2.access(0, i)
        occ = l2.occupancy()
        l2.apply_partition(equal_partition_map(8, 16, 8))
        assert l2.occupancy() == occ
        assert directory_consistent(l2)
        assert l2.access(0, 0).hit  # still findable

    def test_partitioned_to_shared_flushes(self):
        l2 = make_l2("parallel")
        l2.apply_partition(equal_partition_map(8, 16, 8))
        for i in range(100):
            l2.access(0, i)
        l2.share_all()
        assert l2.occupancy() == 0

    def test_repartition_keeps_lines(self):
        l2 = make_l2("parallel")
        l2.apply_partition(equal_partition_map(8, 16, 8))
        for i in range(50):
            l2.access(0, i)
        occ = l2.occupancy()
        l2.apply_partition(equal_partition_map(8, 16, 8))
        assert l2.occupancy() == occ

    def test_flush(self):
        l2 = make_l2()
        l2.share_all()
        for i in range(10):
            l2.access(0, i)
        assert l2.flush() == 10
        assert l2.occupancy() == 0

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError):
            NucaL2(CFG, 8, placement="teleport")


class TestWritebacks:
    def test_dirty_eviction_counted(self):
        cfg = L2Config(num_banks=2, bank_ways=1, sets_per_bank=4)
        l2 = NucaL2(cfg, 2, placement="hash")
        l2.share_all()
        # fill one set of one bank with a dirty line, then evict it
        line = 0
        home = l2.shared_home(line)
        l2.access(0, line, is_write=True)
        # find another line with same set and same home bank
        other = next(
            l for l in range(4, 400, 4) if l2.shared_home(l) == home
        )
        l2.access(0, other)
        assert l2.stats.writebacks == 1
