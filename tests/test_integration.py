"""Cross-module integration tests: profiler -> algorithm -> cache -> timing.

These exercise the full pipeline at small scale, checking properties that
only emerge from the composition — MSA predictions vs. simulated caches,
controller convergence, latency wiring, epoch bookkeeping.
"""

import pytest

from repro.cache.nuca import NucaL2
from repro.cache.partition_map import equal_partition_map
from repro.config import L2Config, scaled_config
from repro.profiling.miss_curve import MissCurve
from repro.profiling.msa import MSAProfiler
from repro.sim.runner import RunSettings, build_system
from repro.workloads import Mix, generate_trace, get

CFG = scaled_config(32, epoch_cycles=200_000)


class TestMsaPredictsSimulatedCache:
    @pytest.mark.parametrize("name", ["vpr", "crafty", "gcc"])
    def test_prediction_matches_ideal_private_partition(self, name):
        """The MSA projection at W ways must match an actual W-way LRU
        cache fed the same stream (steady state, single core) — the
        property the whole allocation machinery rests on."""
        nsets = 64
        trace = generate_trace(get(name), 25_000, nsets, seed=13)
        lines = trace.lines.tolist()
        warm = len(lines) // 3

        prof = MSAProfiler(nsets, 32)
        prof.observe_many(lines[:warm])
        prof.reset()
        prof.observe_many(lines[warm:])
        curve = MissCurve.from_profiler(prof, name)

        for ways in (4, 16):
            cfg = L2Config(num_banks=2, bank_ways=ways // 2, sets_per_bank=nsets)
            l2 = NucaL2(cfg, 1, placement="dnuca")
            pmap = equal_partition_map(1, 2, ways // 2)
            l2.apply_partition(pmap)
            for line in lines[:warm]:
                l2.access(0, line)
            start = l2.stats.misses.get(0, 0)
            for line in lines[warm:]:
                l2.access(0, line)
            measured = l2.stats.misses.get(0, 0) - start
            predicted = curve.misses_at(ways)
            total = len(lines) - warm
            # the aggregated 2-bank structure only approximates global LRU
            assert abs(measured - predicted) / total < 0.08, (
                f"{name}@{ways}: predicted {predicted}, measured {measured}"
            )


class TestControllerConvergence:
    def test_decisions_stabilise_on_stationary_workloads(self):
        """With stationary inputs the controller's allocations must settle
        (identical decisions across the last epochs) rather than thrash."""
        mix = Mix(("gzip", "vpr", "mcf", "crafty",
                   "galgel", "eon", "vortex", "swim"))
        sys_ = build_system(
            mix, "bank-aware", CFG,
            RunSettings(duration_cycles=1_600_000.0, seed=17),
        )
        r = sys_.run()
        assert len(r.epochs) >= 4
        tail = [e.ways for e in r.epochs[-2:]]
        assert tail[0] == tail[1], r.epochs

    def test_epoch_times_strictly_increase(self):
        sys_ = build_system(
            Mix(("gzip", "vpr", "mcf", "crafty",
                 "galgel", "eon", "vortex", "swim")),
            "bank-aware", CFG,
            RunSettings(duration_cycles=1_000_000.0, seed=17),
        )
        r = sys_.run()
        times = [e.time for e in r.epochs]
        assert times == sorted(times)
        assert all(b - a >= CFG.epoch_cycles * 0.99 for a, b in zip(times, times[1:]))


class TestLatencyWiring:
    def test_cpi_reflects_bank_distance(self):
        """Two single-core runs, same workload: one served by its Local
        bank, one forced to the far Local bank — CPI must rise with hops."""
        from repro.cache.partition_map import BankAllocation, CorePartition, PartitionMap
        from repro.cpu.core import CoreTimer
        from repro.noc.contention import ContentionModel
        from repro.noc.latency import LatencyModel

        cfg = scaled_config(32)
        trace = generate_trace(get("crafty"), 8_000, cfg.l2.sets_per_bank, seed=3)
        lat = LatencyModel.from_config(cfg.l2, cfg.num_cores)
        results = {}
        for bank in (0, 7):  # own Local bank vs. the far one
            l2 = NucaL2(cfg.l2, cfg.num_cores, placement="dnuca")
            pmap = PartitionMap()
            all_ways = tuple(range(cfg.l2.bank_ways))
            pmap.add(CorePartition(0, (BankAllocation(bank, all_ways),)))
            used = {bank}
            for core in range(1, 8):
                free = next(b for b in range(16) if b not in used)
                used.add(free)
                pmap.add(CorePartition(core, (BankAllocation(free, all_ways),)))
            # give the leftover banks to core 7 so capacity is fully owned
            l2.apply_partition(pmap)
            timer = CoreTimer(0, cfg.core, nonmem_cpi=0.5, mlp=1.5)
            contention = ContentionModel(cfg.l2.num_banks)
            for acc in trace:
                arrival = timer.advance_compute(acc.gap)
                res = l2.access(0, acc.line)
                delay = contention.bank_delay(res.bank, arrival)
                latency = lat.bank_latency(0, res.bank) + delay
                if not res.hit:
                    latency += cfg.memory.latency_cycles
                timer.complete_access(latency)
            results[bank] = timer.cpi
        assert results[7] > results[0] * 1.05


class TestEndToEndAccounting:
    def test_result_invariants_across_schemes(self):
        mix = Mix(("gzip", "vpr", "mcf", "crafty",
                   "galgel", "eon", "vortex", "swim"))
        for scheme in ("no-partitions", "equal-partitions", "bank-aware",
                       "unrestricted"):
            sys_ = build_system(
                mix, scheme, CFG, RunSettings(duration_cycles=400_000.0, seed=2)
            )
            r = sys_.run()
            assert r.scheme == scheme
            for c in r.cores:
                assert c.l2_misses <= c.l2_accesses
                assert c.cycles > 0 and c.instructions > 0
                assert 0.0 <= c.miss_rate <= 1.0
