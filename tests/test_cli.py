"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "bzip2" in out and "mcf" in out
        assert out.count("\n") >= 26

    def test_machine_scaled(self, capsys):
        assert main(["machine", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "2 MB" in out

    def test_profile(self, capsys):
        assert main(
            ["profile", "sixtrack", "--ways", "4,8", "--scale", "32",
             "--accesses", "8000"]
        ) == 0
        out = capsys.readouterr().out
        assert "sixtrack" in out

    def test_profile_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["profile", "doom3"])

    def test_partition_with_set(self, capsys):
        assert main(
            ["partition", "--set", "1", "--scale", "32", "--accesses", "8000"]
        ) == 0
        out = capsys.readouterr().out
        assert "Bank-aware assignment" in out
        assert "apsi" in out

    def test_partition_explicit_names_and_unrestricted(self, capsys):
        names = ["gzip", "eon", "crafty", "gap", "galgel", "perlbmk",
                 "sixtrack", "vpr"]
        assert main(
            ["partition", *names, "--scale", "32", "--accesses", "8000",
             "--unrestricted"]
        ) == 0
        out = capsys.readouterr().out
        assert "Unrestricted (UCP) assignment" in out

    def test_partition_needs_mix(self):
        with pytest.raises(SystemExit):
            main(["partition", "--scale", "32"])

    def test_partition_bad_set(self):
        with pytest.raises(SystemExit):
            main(["partition", "--set", "99"])

    def test_partition_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["partition"] + ["doom3"] * 8)

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--set", "2", "--scale", "32",
             "--duration", "300000", "--scheme", "equal-partitions"]
        ) == 0
        out = capsys.readouterr().out
        assert "equal-partitions" in out
        assert "overall miss rate" in out

    def test_compare(self, capsys):
        assert main(
            ["compare", "--set", "1", "--scale", "32", "--duration", "300000"]
        ) == 0
        out = capsys.readouterr().out
        assert "no-partitions" in out and "bank-aware" in out


class TestArgumentValidation:
    @pytest.mark.parametrize("argv", [
        ["simulate", "--set", "1", "--seed", "-3"],
        ["simulate", "--set", "1", "--duration", "0"],
        ["profile", "gzip", "--accesses", "-1"],
        ["montecarlo", "--mixes", "0"],
    ])
    def test_non_positive_values_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as info:
            main(argv)
        assert info.value.code == 2
        assert "positive" in capsys.readouterr().err

    def test_bad_fault_spec_is_clean_error(self, capsys):
        rc = main(["partition", "--set", "1", "--scale", "32",
                   "--accesses", "6000", "--inject-faults", "0:typo"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestFaultInjection:
    def test_partition_with_faults_falls_back(self, capsys):
        assert main(
            ["partition", "--set", "1", "--scale", "32", "--accesses", "6000",
             "--inject-faults", "0:zero", "--fault-seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "guard log" in out
        assert "equal shares" in out

    def test_simulate_with_faults_reports_guard(self, capsys):
        assert main(
            ["simulate", "--set", "2", "--scale", "32", "--epoch", "100000",
             "--duration", "400000", "--scheme", "bank-aware",
             "--inject-faults", "1:degenerate@1"]
        ) == 0
        out = capsys.readouterr().out
        assert "guard log" in out
        assert "fault" in out


class TestMonteCarloCommand:
    ARGS = ["montecarlo", "--scale", "32", "--mixes", "5",
            "--accesses", "6000", "--seed", "9"]

    def test_runs(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Bank-aware" in out

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        path = str(tmp_path / "mc.json")
        assert main(self.ARGS + ["--checkpoint", path]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--checkpoint", path, "--resume"]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[:8] == second.splitlines()[:8]

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="requires"):
            main(self.ARGS + ["--resume"])

    def test_corrupt_checkpoint_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "mc.json"
        path.write_text("{not json")
        rc = main(self.ARGS + ["--checkpoint", str(path), "--resume"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestCurveCaching:
    def test_profile_save_then_partition_load(self, tmp_path, capsys):
        path = str(tmp_path / "curves.npz")
        names = ["gzip", "eon", "crafty", "gap", "galgel", "perlbmk",
                 "sixtrack", "vpr"]
        assert main(
            ["profile", *sorted(set(names)), "--scale", "32",
             "--accesses", "6000", "--save", path]
        ) == 0
        assert "saved" in capsys.readouterr().out
        assert main(
            ["partition", *names, "--curves", path, "--scale", "32"]
        ) == 0
        assert "Bank-aware assignment" in capsys.readouterr().out

    def test_partition_missing_curves_rejected(self, tmp_path):
        from repro.profiling import save_curves

        path = str(tmp_path / "partial.npz")
        save_curves(path, {})
        with pytest.raises(SystemExit, match="lacks"):
            main(["partition", "--set", "1", "--curves", path, "--scale", "32"])
