"""Tests of the whole-program analyzer (``repro lint --xmod``).

Synthetic fixture trees are written under ``tmp_path`` mimicking the
package layout the default config expects (``repro/cli.py`` entry points,
``repro/errors.py`` taxonomy, ``repro/telemetry/events.py`` schemas), so
every cross-module rule can be exercised positive and suppressed-negative
without touching the real tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.config import LintConfig
from repro.lint.engine import iter_python_files
from repro.lint.findings import Finding, LintResult
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.xmod import analyze_files
from repro.lint.xmod.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.xmod.cache import load_cached, store, tree_key
from repro.lint.xmod.callgraph import build_call_graph
from repro.lint.xmod.engine import XMOD_ANALYZER_VERSION
from repro.lint.xmod.symbols import Project, module_name_for

GOLDEN = Path(__file__).parent / "data" / "sarif_golden.json"


def write_tree(root: Path, files: dict[str, str]) -> list[Path]:
    """Materialise a fixture tree; returns the python files in it."""
    out = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        if path.suffix == ".py":
            out.append(path)
    return sorted(out)


def project_of(root: Path, files: dict[str, str]) -> Project:
    return Project.load(write_tree(root, files))


def rules_of(result: LintResult) -> list[str]:
    return [f.rule for f in result.findings]


def analyze(root: Path, files: dict[str, str]) -> LintResult:
    return analyze_files(write_tree(root, files), LintConfig())


# ---------------------------------------------------------------------------
# symbol resolution


class TestSymbols:
    def test_module_name_walks_packages(self, tmp_path):
        files = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sub/__init__.py": "",
            "pkg/sub/mod.py": "x = 1\n",
        })
        assert module_name_for(files[-1]) == "pkg.sub.mod"
        assert module_name_for(files[0]) == "pkg"

    def test_resolve_through_import_alias_chain(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": "def target():\n    return 1\n",
            "pkg/mid.py": "from pkg.base import target as renamed\n",
            "pkg/top.py": "from pkg.mid import renamed as again\n",
        })
        resolved = project.resolve("pkg.top", "again")
        assert resolved is not None
        assert resolved.qualname == "pkg.base.target"
        assert resolved.kind == "function"

    def test_relative_import_anchors_on_package(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": "def target():\n    return 1\n",
            "pkg/user.py": "from .base import target\n",
        })
        resolved = project.resolve("pkg.user", "target")
        assert resolved is not None and resolved.qualname == "pkg.base.target"

    def test_external_names_are_tagged_external(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": "import numpy as np\n",
        })
        import ast as ast_mod
        expr = ast_mod.parse("np.random.default_rng", mode="eval").body
        resolved = project.resolve_expr("pkg.mod", expr)
        assert resolved is not None
        assert resolved.kind == "external"
        assert resolved.qualname == "numpy.random.default_rng"

    def test_import_cycle_does_not_recurse_forever(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "from pkg.b import name\n",
            "pkg/b.py": "from pkg.a import name\n",
        })
        assert project.resolve("pkg.a", "name") is None

    def test_is_subclass_of_follows_bases_across_modules(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/errors.py": (
                "class Base(Exception):\n    pass\n\n"
                "class Mid(Base):\n    pass\n"
            ),
            "pkg/more.py": (
                "from pkg.errors import Mid\n\n"
                "class Leaf(Mid):\n    pass\n"
            ),
        })
        leaf = project.modules["pkg.more"].defs["Leaf"]
        assert project.is_subclass_of("pkg.more", leaf, {"pkg.errors.Base"})
        assert not project.is_subclass_of("pkg.more", leaf, {"pkg.other.X"})


# ---------------------------------------------------------------------------
# call graph


class TestCallGraph:
    def test_direct_and_imported_call_edges(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n",
            "pkg/b.py": (
                "from pkg.a import helper\n\n"
                "def caller():\n    return helper()\n"
            ),
        })
        graph = build_call_graph(project)
        assert "pkg.a.helper" in graph.edges["pkg.b.caller"]

    def test_class_call_reaches_ctor_methods(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cls.py": (
                "class Thing:\n"
                "    def __init__(self):\n        self.x = 1\n"
                "    def __post_init__(self):\n        pass\n"
            ),
            "pkg/use.py": (
                "from pkg.cls import Thing\n\n"
                "def make():\n    return Thing()\n"
            ),
        })
        graph = build_call_graph(project)
        edges = graph.edges["pkg.use.make"]
        assert "pkg.cls.Thing.__init__" in edges
        assert "pkg.cls.Thing.__post_init__" in edges

    def test_nested_def_reachable_from_parent(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": (
                "def outer():\n"
                "    def inner():\n        return 1\n"
                "    return inner\n"
            ),
        })
        graph = build_call_graph(project)
        inner = "pkg.mod.outer.<locals>.inner"
        assert inner in graph.units
        assert inner in graph.reachable({"pkg.mod.outer"})

    def test_callable_passed_as_argument_creates_edge(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def callback():\n    return 1\n",
            "pkg/b.py": (
                "from pkg.a import callback\n\n"
                "def submitter(ex):\n    ex.submit(callback)\n"
            ),
        })
        graph = build_call_graph(project)
        assert "pkg.a.callback" in graph.edges["pkg.b.submitter"]

    def test_method_defined_in_try_block_is_collected(self, tmp_path):
        project = project_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": (
                "try:\n"
                "    def maybe():\n        return 1\n"
                "except ImportError:\n"
                "    def maybe():\n        return 2\n"
            ),
        })
        graph = build_call_graph(project)
        assert "pkg.mod.maybe" in graph.units


# ---------------------------------------------------------------------------
# the five rules: one positive + one suppressed negative each


class TestPar001:
    def test_lambda_submission_flagged(self, tmp_path):
        result = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/run.py": (
                "def run(ex, items):\n"
                "    return ex.map_ordered(lambda x: x, items)\n"
            ),
        })
        assert rules_of(result) == ["PAR001"]

    def test_nested_def_submission_flagged(self, tmp_path):
        result = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/run.py": (
                "def run(ex, items):\n"
                "    def inner(x):\n"
                "        return x\n"
                "    return ex.map_ordered(inner, items)\n"
            ),
        })
        assert rules_of(result) == ["PAR001"]

    def test_module_level_function_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/run.py": (
                "def work(x):\n"
                "    return x\n\n"
                "def run(ex, items):\n"
                "    return ex.map_ordered(work, items)\n"
            ),
        })
        assert rules_of(result) == []

    def test_suppressed_negative(self, tmp_path):
        result = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/run.py": (
                "def run(ex, items):\n"
                "    return ex.map_ordered(lambda x: x, items)"
                "  # repro-lint: disable=PAR001\n"
            ),
        })
        assert rules_of(result) == []


class TestPar002:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/work.py": (
            "STATE = []\n\n"
            "def helper(item):\n"
            "    STATE.append(item)\n\n"
            "def worker(item):\n"
            "    helper(item)\n"
            "    return item\n\n"
            "def run(ex, items):\n"
            "    return ex.map_ordered(worker, items)\n"
        ),
    }

    def test_worker_reachable_global_write_flagged(self, tmp_path):
        result = analyze(tmp_path, self.FILES)
        assert rules_of(result) == ["PAR002"]
        assert "helper" in result.findings[0].message

    def test_write_outside_worker_path_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": (
                "STATE = []\n\n"
                "def serial_only(item):\n"
                "    STATE.append(item)\n\n"
                "def worker(item):\n"
                "    return item\n\n"
                "def run(ex, items):\n"
                "    return ex.map_ordered(worker, items)\n"
            ),
        })
        assert rules_of(result) == []

    def test_suppressed_negative(self, tmp_path):
        files = dict(self.FILES)
        files["pkg/work.py"] = files["pkg/work.py"].replace(
            "    STATE.append(item)\n",
            "    STATE.append(item)  # repro-lint: disable=PAR002\n",
        )
        result = analyze(tmp_path, files)
        assert rules_of(result) == []


class TestDet003:
    def test_raw_generator_flagged(self, tmp_path):
        result = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sim.py": (
                "import numpy as np\n\n"
                "def draw():\n"
                "    return np.random.default_rng().random()\n"
            ),
        })
        assert rules_of(result) == ["DET003"]

    def test_rng_stream_chokepoint_is_allowed(self, tmp_path):
        # the sanctioned construction site is carved out by det003-allow
        result = analyze(tmp_path, {
            "repro/__init__.py": "",
            "repro/util/__init__.py": "",
            "repro/util/rng.py": (
                "import numpy as np\n\n"
                "def rng_stream(seed, *keys):\n"
                "    return np.random.default_rng(seed)\n"
            ),
        })
        assert rules_of(result) == []

    def test_generator_flowing_into_fanout_flagged(self, tmp_path):
        result = analyze(tmp_path, {
            "repro/__init__.py": "",
            "repro/util/__init__.py": "",
            "repro/util/rng.py": (
                "import numpy as np\n\n"
                "def rng_stream(seed, *keys):\n"
                "    return np.random.default_rng(seed)\n"
            ),
            "repro/run.py": (
                "from repro.util.rng import rng_stream\n\n"
                "def sweep(ex, items, seed):\n"
                "    rng = rng_stream(seed)\n"
                "    return ex.map_ordered(work, items, rng)\n\n"
                "def work(item):\n"
                "    return item\n"
            ),
        })
        assert rules_of(result) == ["DET003"]
        assert "scheduling order" in result.findings[0].message

    def test_suppressed_negative(self, tmp_path):
        result = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sim.py": (
                "import numpy as np\n\n"
                "def draw():\n"
                "    return np.random.default_rng().random()"
                "  # repro-lint: disable=DET003\n"
            ),
        })
        assert rules_of(result) == []


TELEMETRY_FIXTURE = {
    "repro/__init__.py": "",
    "repro/telemetry/__init__.py": "",
    "repro/telemetry/events.py": (
        "class FieldSpec:\n"
        "    def __init__(self, types, required=True, deterministic=True):\n"
        "        self.types = types\n"
        "        self.required = required\n\n"
        "_NUM = FieldSpec((int, float))\n"
        "_OPT_STR = FieldSpec((str,), required=False)\n\n"
        "COMMON_FIELDS = {\n"
        "    'type': FieldSpec((str,)),\n"
        "    'seq': _NUM,\n"
        "}\n\n"
        "EVENT_SCHEMAS = {\n"
        "    'tick': {\n"
        "        'value': _NUM,\n"
        "        'note': _OPT_STR,\n"
        "    },\n"
        "}\n"
    ),
}


class TestTel001:
    def emitter(self, body: str) -> dict[str, str]:
        files = dict(TELEMETRY_FIXTURE)
        files["repro/emit.py"] = body
        return files

    def test_unknown_field_flagged(self, tmp_path):
        result = analyze(tmp_path, self.emitter(
            "def go(tracer):\n"
            "    tracer.emit('tick', value=1, legacy=2)\n"
        ))
        assert rules_of(result) == ["TEL001"]
        assert "legacy" in result.findings[0].message

    def test_missing_required_field_flagged(self, tmp_path):
        result = analyze(tmp_path, self.emitter(
            "def go(tracer):\n"
            "    tracer.emit('tick', note='x')\n"
        ))
        assert rules_of(result) == ["TEL001"]
        assert "'value'" in result.findings[0].message

    def test_unknown_event_type_flagged(self, tmp_path):
        result = analyze(tmp_path, self.emitter(
            "def go(tracer):\n"
            "    tracer.emit('boom', value=1)\n"
        ))
        assert rules_of(result) == ["TEL001"]

    def test_conforming_emit_is_clean(self, tmp_path):
        result = analyze(tmp_path, self.emitter(
            "def go(tracer):\n"
            "    tracer.emit('tick', value=1, note='x', seq=3)\n"
        ))
        assert rules_of(result) == []

    def test_splat_skips_completeness_check(self, tmp_path):
        result = analyze(tmp_path, self.emitter(
            "def go(tracer, record):\n"
            "    tracer.emit('tick', **record)\n"
        ))
        assert rules_of(result) == []

    def test_suppressed_negative(self, tmp_path):
        result = analyze(tmp_path, self.emitter(
            "def go(tracer):\n"
            "    tracer.emit('tick', value=1, legacy=2)"
            "  # repro-lint: disable=TEL001\n"
        ))
        assert rules_of(result) == []


ERR_FIXTURE = {
    "repro/__init__.py": "",
    "repro/errors.py": (
        "class ReproError(Exception):\n    pass\n\n"
        "class ConfigError(ReproError, ValueError):\n    pass\n"
    ),
}


class TestErr001:
    def tree(self, helper: str) -> dict[str, str]:
        files = dict(ERR_FIXTURE)
        files["repro/domain.py"] = helper
        files["repro/cli.py"] = (
            "from repro.domain import helper\n\n"
            "def cmd_run(args):\n"
            "    return helper(args)\n"
        )
        return files

    def test_builtin_raise_on_cli_path_flagged(self, tmp_path):
        result = analyze(tmp_path, self.tree(
            "def helper(x):\n"
            "    raise ValueError('bad')\n"
        ))
        assert rules_of(result) == ["ERR001"]

    def test_taxonomy_raise_is_clean(self, tmp_path):
        result = analyze(tmp_path, self.tree(
            "from repro.errors import ConfigError\n\n"
            "def helper(x):\n"
            "    raise ConfigError('bad')\n"
        ))
        assert rules_of(result) == []

    def test_unreachable_raise_is_clean(self, tmp_path):
        files = dict(ERR_FIXTURE)
        files["repro/domain.py"] = (
            "def not_called_from_cli(x):\n"
            "    raise ValueError('bad')\n"
        )
        files["repro/cli.py"] = "def cmd_run(args):\n    return 0\n"
        result = analyze_files(write_tree(tmp_path, files), LintConfig())
        assert rules_of(result) == []

    def test_suppressed_negative(self, tmp_path):
        result = analyze(tmp_path, self.tree(
            "def helper(x):\n"
            "    raise ValueError('bad')  # repro-lint: disable=ERR001\n"
        ))
        assert rules_of(result) == []


# ---------------------------------------------------------------------------
# SARIF reporter


class TestSarif:
    RESULT = LintResult(
        findings=(
            Finding(
                path="src/repro/fabric/sweep.py",
                line=170,
                column=8,
                rule="TEL001",
                severity="error",
                message="emit of 'mc_point' passes field 'legacy' that the "
                        "schema does not declare",
            ),
            Finding(
                path="src/repro/util/bits.py",
                line=23,
                column=8,
                rule="ERR001",
                severity="advice",
                message="[baselined: conventional contract] raise of "
                        "builtin ValueError",
            ),
        ),
        files_checked=2,
    )

    def test_levels_and_locations(self):
        doc = to_sarif(self.RESULT)
        run = doc["runs"][0]
        results = run["results"]
        assert [r["level"] for r in results] == ["error", "warning"]
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 170
        assert region["startColumn"] == 9  # SARIF columns are 1-based

    def test_rule_catalogue_covers_xmod_rules(self):
        doc = to_sarif(self.RESULT)
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"PAR001", "PAR002", "DET003", "TEL001", "ERR001"} <= ids
        assert "DET001" in ids  # per-file rules are in the catalogue too

    def test_golden_file(self):
        assert render_sarif(self.RESULT) == GOLDEN.read_text(
            encoding="utf-8"
        ), (
            "SARIF output drifted from the golden file; if the change is "
            "intentional, regenerate tests/data/sarif_golden.json"
        )


# ---------------------------------------------------------------------------
# baseline ratcheting


class TestBaseline:
    OLD = Finding(
        path="src/a.py", line=3, column=0, rule="ERR001",
        severity="error", message="raise of builtin ValueError",
    )
    NEW = Finding(
        path="src/b.py", line=9, column=4, rule="PAR002",
        severity="error", message="worker-reachable global write",
    )

    def baseline(self, tmp_path: Path) -> Path:
        path = tmp_path / "lint-baseline.json"
        write_baseline([self.OLD], path)
        data = json.loads(path.read_text())
        for entry in data["entries"]:
            entry["reason"] = "adopted with debt; tracked in the ratchet"
        path.write_text(json.dumps(data))
        return path

    def test_old_finding_is_demoted_new_finding_fails(self, tmp_path):
        entries = load_baseline(self.baseline(tmp_path))
        outcome = apply_baseline([self.OLD, self.NEW], entries)
        assert [f.rule for f in outcome.new] == ["PAR002"]
        assert [f.severity for f in outcome.baselined] == ["advice"]
        assert outcome.baselined[0].message.startswith("[baselined:")
        assert not outcome.stale
        # the ratchet contract: only the NEW finding can fail a build
        gate = LintResult(
            findings=tuple([*outcome.new, *outcome.baselined]),
            files_checked=1,
        )
        assert gate.exit_code == 1
        clean = apply_baseline([self.OLD], entries)
        assert LintResult(
            findings=tuple([*clean.new, *clean.baselined]), files_checked=1
        ).exit_code == 0

    def test_stale_entries_are_reported(self, tmp_path):
        entries = load_baseline(self.baseline(tmp_path))
        outcome = apply_baseline([], entries)
        assert [e.rule for e in outcome.stale] == ["ERR001"]

    def test_empty_reason_is_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        write_baseline([self.OLD], path)
        data = json.loads(path.read_text())
        data["entries"][0]["reason"] = "  "
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="reason"):
            load_baseline(path)

    def test_update_carries_reasons_over(self, tmp_path):
        path = self.baseline(tmp_path)
        previous = load_baseline(path)
        write_baseline([self.OLD, self.NEW], path, previous)
        reasons = {
            e.rule: e.reason for e in load_baseline(path)
        }
        assert reasons["ERR001"] == "adopted with debt; tracked in the ratchet"
        assert reasons["PAR002"].startswith("TODO")


# ---------------------------------------------------------------------------
# findings cache


class TestCache:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": "def f():\n    return 1\n",
    }

    def test_roundtrip_and_content_invalidation(self, tmp_path):
        files = write_tree(tmp_path, self.FILES)
        config = LintConfig()
        cache_path = tmp_path / "cache.json"
        key = tree_key(files, config, XMOD_ANALYZER_VERSION)
        assert load_cached(cache_path, key) is None
        result = analyze_files(files, config)
        store(cache_path, key, result)
        hit = load_cached(cache_path, key)
        assert hit is not None
        assert hit.findings == result.findings
        assert hit.files_checked == result.files_checked
        # editing any file changes the key -> miss
        files[-1].write_text("def f():\n    return 2\n")
        assert tree_key(files, config, XMOD_ANALYZER_VERSION) != key

    def test_config_fingerprint_invalidates(self, tmp_path):
        files = write_tree(tmp_path, self.FILES)
        key_a = tree_key(files, LintConfig(), XMOD_ANALYZER_VERSION)
        key_b = tree_key(
            files, LintConfig(ignore=("PAR001",)), XMOD_ANALYZER_VERSION
        )
        assert key_a != key_b

    def test_corrupt_cache_is_a_miss(self, tmp_path):
        files = write_tree(tmp_path, self.FILES)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{ not json")
        key = tree_key(files, LintConfig(), XMOD_ANALYZER_VERSION)
        assert load_cached(cache_path, key) is None


# ---------------------------------------------------------------------------
# file discovery (exclusion matching regression)


class TestExclusionMatching:
    def test_fragment_matches_segments_not_substrings(self, tmp_path):
        write_tree(tmp_path, {
            "src/obs/watch.py": "x = 1\n",
            "src/jobs.py": "x = 1\n",  # 'obs' is a substring of 'jobs.py'
        })
        config = LintConfig(exclude=("obs",))
        found = iter_python_files([str(tmp_path / "src")], config)
        names = [p.name for p in found]
        assert "jobs.py" in names
        assert "watch.py" not in names

    def test_multi_segment_fragment_matches_contiguous_run(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/obs/watch.py": "x = 1\n",
            "src/other/obs_tools.py": "x = 1\n",
        })
        config = LintConfig(exclude=("repro/obs",))
        found = iter_python_files([str(tmp_path / "src")], config)
        names = [p.name for p in found]
        assert names == ["obs_tools.py"]
