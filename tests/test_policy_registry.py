"""The policy lab: registry contract + property suite over every policy.

Four families of guarantees:

* registry mechanics — canonical listing order, lookup errors, duplicate
  rejection, capability flags;
* decision invariants — every registered policy conserves ways, honours
  the min-way floor, and (when it claims the Bank-aware structure)
  passes the guard's Rules 1-3 deep check, over randomized curve sets;
* determinism — identical inputs give identical decisions, and the
  related-work building blocks (regulator, joint search) are pure
  functions of their inputs;
* backend identity — every *dynamic* registered policy produces
  bit-identical results through the reference and batched sim engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import scaled_config
from repro.errors import ConfigError
from repro.partitioning.bank_bw import (
    WINDOWS_PER_EPOCH,
    BankBudgetRegulator,
)
from repro.partitioning.joint import best_assignment, schedule_mix
from repro.partitioning.registry import (
    PartitionPolicy,
    PolicyContext,
    analytic_policies,
    get_policy,
    policy_help,
    register,
    registered_policies,
)
from repro.profiling.miss_curve import MissCurve
from repro.resilience.guard import DecisionGuard
from repro.sim.runner import RunSettings, run_mix
from repro.sim.system import ALL_SIM_SCHEMES, DETAILED_SCHEMES
from repro.workloads import Mix

CTX = PolicyContext(
    num_cores=8, num_banks=16, bank_ways=8, max_ways_per_core=72
)


def knee_curve(knee, total=1000.0, floor_frac=0.05, max_ways=128):
    ways = np.arange(max_ways + 1, dtype=np.float64)
    frac = np.clip(ways / knee, 0, 1)
    misses = total * (1 - frac * (1 - floor_frac))
    return MissCurve(f"knee{knee}", misses, total)


@st.composite
def curve_sets(draw, n=8):
    return [
        knee_curve(
            draw(st.integers(1, 80)),
            draw(st.floats(10.0, 10_000.0)),
            draw(st.floats(0.0, 0.9)),
        )
        for _ in range(n)
    ]


class TestRegistry:
    def test_canonical_listing_order(self):
        names = registered_policies()
        assert names[:4] == (
            "no-partitions", "equal-partitions", "bank-aware", "unrestricted"
        )
        extras = names[4:]
        assert "bank-bw" in extras and "joint" in extras
        assert list(extras) == sorted(extras)

    def test_sim_schemes_follow_the_registry(self):
        assert ALL_SIM_SCHEMES == registered_policies()
        assert set(DETAILED_SCHEMES) < set(ALL_SIM_SCHEMES)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigError, match="bank-aware"):
            get_policy("half-and-half")

    def test_duplicate_and_anonymous_registration_rejected(self):
        with pytest.raises(ConfigError):
            register(get_policy("bank-aware"))
        with pytest.raises(ConfigError):
            register(PartitionPolicy())

    def test_analytic_excludes_the_shared_baseline(self):
        ranked = analytic_policies()
        assert "no-partitions" not in ranked
        assert "bank-aware" in ranked and "joint" in ranked

    def test_help_covers_every_policy(self):
        text = policy_help()
        for name in registered_policies():
            assert name in text

    def test_capability_flags(self):
        assert get_policy("no-partitions").shares_cache
        assert not get_policy("no-partitions").dynamic
        assert get_policy("bank-bw").needs_bank_queues
        assert get_policy("joint").needs_job_assignment
        for name in ("bank-aware", "unrestricted", "bank-bw", "joint"):
            assert get_policy(name).dynamic
            assert get_policy(name).needs_profilers

    def test_base_class_requires_decide(self):
        with pytest.raises(NotImplementedError):
            PartitionPolicy().decide([], CTX)


class TestDecisionInvariants:
    """Every registered policy, randomized curve sets."""

    @settings(max_examples=20, deadline=None)
    @given(curves=curve_sets())
    def test_conserves_ways_and_honours_floors(self, curves):
        guard = DecisionGuard(
            CTX.num_cores, num_banks=CTX.num_banks, bank_ways=CTX.bank_ways,
            max_ways_per_core=CTX.max_ways_per_core, min_ways=CTX.min_ways,
        )
        for name in registered_policies():
            verdict = get_policy(name).decide(curves, CTX)
            assert sum(verdict.ways) == CTX.total_ways, name
            assert all(w >= CTX.min_ways for w in verdict.ways), name
            assert all(
                w <= CTX.max_ways_per_core for w in verdict.ways
            ), name
            if verdict.bank_decision is not None:
                d = verdict.bank_decision
                guard.validate_decision(d.ways, d.center_banks, d.pairs)
            else:
                guard.validate_vector(verdict.ways)

    @settings(max_examples=20, deadline=None)
    @given(curves=curve_sets())
    def test_partitioned_policies_materialise_a_map(self, curves):
        for name in registered_policies():
            policy = get_policy(name)
            verdict = policy.decide(curves, CTX)
            if policy.shares_cache:
                assert verdict.pmap is None, name
            else:
                pmap = verdict.pmap
                assert pmap is not None, name
                pmap.validate(CTX.num_banks, CTX.bank_ways)
                # the installed map realises exactly the decided vector
                vec = pmap.way_vector()
                for core, want in enumerate(verdict.ways):
                    assert vec.get(core, 0) == want, name

    @settings(max_examples=10, deadline=None)
    @given(curves=curve_sets())
    def test_decisions_are_deterministic(self, curves):
        for name in registered_policies():
            a = get_policy(name).decide(curves, CTX)
            b = get_policy(name).decide(list(curves), CTX)
            assert a.ways == b.ways, name


class TestJointSearch:
    def test_moves_hungry_workloads_apart(self):
        """Two cache-hungry neighbours should not stay adjacent when the
        swap search finds a better placement."""
        hungry = knee_curve(70, total=50_000)
        modest = knee_curve(2, total=50)
        curves = [hungry, hungry] + [modest] * 6
        assignment = best_assignment(curves, max_ways_per_core=72)
        baseline = best_assignment(curves, max_passes=0)
        assert assignment.predicted <= baseline.predicted

    def test_ways_by_workload_inverts_the_placement(self):
        curves = [knee_curve(k) for k in (4, 8, 16, 32, 45, 6, 10, 60)]
        assignment = best_assignment(curves)
        for core, workload in enumerate(assignment.placement):
            assert (
                assignment.ways_by_workload()[workload]
                == assignment.decision.ways[core]
            )

    def test_schedule_mix_reorders_names(self):
        names = ("gzip", "eon", "mcf", "galgel",
                 "perlbmk", "crafty", "gap", "swim")
        curves = {
            n: knee_curve(k)
            for n, k in zip(names, (4, 8, 16, 32, 45, 6, 10, 60))
        }
        scheduled, assignment = schedule_mix(Mix(names), curves)
        assert tuple(scheduled.names) == tuple(
            names[w] for w in assignment.placement
        )
        assert sorted(scheduled.names) == sorted(names)


class TestBankBudgetRegulator:
    def test_unlimited_until_first_rebudget(self):
        reg = BankBudgetRegulator(2, 4, window_cycles=100.0)
        assert reg.charge(0, 0, 10.0) == 0.0
        assert reg.throttled == 0

    def test_budgets_track_demand_with_headroom(self):
        reg = BankBudgetRegulator(1, 1, window_cycles=100.0)
        for i in range(WINDOWS_PER_EPOCH * 4):  # 4 accesses/window
            reg.charge(0, 0, float(i))
        reg.rebudget()
        assert reg.budgets[0][0] == 5  # 4 * 1.25
        assert reg.demand[0][0] == 0  # demand window reset

    def test_over_budget_access_defers_to_next_window(self):
        reg = BankBudgetRegulator(1, 1, window_cycles=100.0)
        reg.budgets[0][0] = 1
        assert reg.charge(0, 0, 10.0) == 0.0
        delay = reg.charge(0, 0, 20.0)
        assert delay == 80.0  # pushed to cycle 100, the next window
        assert reg.throttled == 1
        assert reg.total_throttle_cycles == 80.0

    def test_burst_spreads_one_per_window(self):
        reg = BankBudgetRegulator(1, 1, window_cycles=100.0)
        reg.budgets[0][0] = 1
        reg.charge(0, 0, 0.0)
        assert reg.charge(0, 0, 1.0) == 99.0  # window 1
        assert reg.charge(0, 0, 2.0) == 198.0  # window 2
        assert reg.charge(0, 0, 3.0) == 297.0  # window 3

    def test_zero_budget_means_unlimited(self):
        reg = BankBudgetRegulator(1, 1, window_cycles=100.0)
        reg.rebudget()  # no demand observed -> budget stays 0
        assert reg.budgets[0][0] == 0
        for i in range(50):
            assert reg.charge(0, 0, float(i)) == 0.0


class TestBackendIdentity:
    """Every dynamic registered policy is bit-identical across engines."""

    CFG = scaled_config(32, epoch_cycles=100_000)
    MIX = Mix(
        ("gzip", "eon", "mcf", "galgel", "perlbmk", "crafty", "gap", "swim")
    )

    @pytest.mark.parametrize(
        "scheme",
        [n for n in registered_policies() if get_policy(n).dynamic],
    )
    def test_reference_equals_batched(self, scheme):
        results = [
            run_mix(
                self.MIX, scheme, self.CFG,
                RunSettings(
                    duration_cycles=300_000.0, seed=5,
                    sim_backend=backend, trace=True,
                ),
            )
            for backend in ("reference", "batched")
        ]
        ref, batched = results
        assert ref.to_dict() == batched.to_dict()
        assert [dict(e) for e in ref.events] == [
            dict(e) for e in batched.events
        ]
        # the runs actually exercised the policy (epochs fired)
        assert ref.epochs, scheme
