"""Exact MSA stack-distance profiler (paper Section III.A, Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cacheset import CacheSet
from repro.profiling.miss_curve import MissCurve
from repro.profiling.msa import MSAProfiler


class TestBasics:
    def test_first_touch_is_miss(self):
        p = MSAProfiler(1, 4)
        assert p.observe(0) == 5  # positions+1 = miss bin

    def test_immediate_reuse_is_mru(self):
        p = MSAProfiler(1, 4)
        p.observe(0)
        assert p.observe(0) == 1

    def test_stack_depth_counts_distinct_lines(self):
        p = MSAProfiler(1, 8)
        for line in (0, 1, 2):
            p.observe(line)
        assert p.observe(0) == 3  # two distinct lines touched since

    def test_per_set_stacks_independent(self):
        p = MSAProfiler(2, 4)
        p.observe(0)  # set 0
        p.observe(1)  # set 1
        assert p.observe(0) == 1  # set-1 access did not disturb set 0

    def test_histogram_total(self):
        p = MSAProfiler(4, 8)
        for i in range(100):
            p.observe(i % 13)
        assert p.total_accesses == 100

    def test_beyond_positions_is_miss(self):
        p = MSAProfiler(1, 2)
        for line in (0, 1, 2):
            p.observe(line)
        assert p.observe(0) == 3  # pushed out of the 2-deep stack

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MSAProfiler(3, 4)
        with pytest.raises(ValueError):
            MSAProfiler(4, 0)


class TestProjection:
    def test_miss_counts_projection(self):
        """The inclusion-property projection: misses(w) = total - hits at
        depths <= w."""
        p = MSAProfiler(1, 4)
        seq = [0, 1, 0, 1, 2, 0]
        for line in seq:
            p.observe(line)
        mc = p.miss_counts()
        assert mc[0] == 6  # no cache: everything misses
        # depth-1 hits: none (no immediate reuse); depth-2 hits: 0,1 at i=2,3
        assert mc[2] == 6 - 2
        assert p.misses_at(4) == 3  # three cold misses

    def test_miss_counts_non_increasing(self):
        p = MSAProfiler(4, 16)
        for i in range(500):
            p.observe((i * 7) % 50)
        mc = p.miss_counts()
        assert np.all(np.diff(mc) <= 1e-9)

    def test_miss_ratio_curve_bounds(self):
        p = MSAProfiler(4, 16)
        for i in range(100):
            p.observe(i % 30)
        curve = p.miss_ratio_curve()
        assert curve[0] == pytest.approx(1.0)
        assert np.all((curve >= 0) & (curve <= 1))

    @given(st.lists(st.integers(0, 25), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_projection_matches_simulated_caches(self, lines):
        """The MSA headline property: one profiling pass predicts the exact
        miss count of EVERY cache size (same set count, true LRU)."""
        positions = 6
        p = MSAProfiler(2, positions)
        for line in lines:
            p.observe(line)
        for ways in range(1, positions + 1):
            sets = [CacheSet(ways) for _ in range(2)]
            misses = 0
            for line in lines:
                cset = sets[line & 1]
                if cset.lookup(line) is None:
                    misses += 1
                    cset.insert(line, 0, tuple(range(ways)))
            assert p.misses_at(ways) == misses, f"ways={ways}"


class TestEpochManagement:
    def test_reset_keeps_stack_state(self):
        p = MSAProfiler(1, 4)
        p.observe(0)
        p.reset()
        assert p.total_accesses == 0
        assert p.observe(0) == 1  # stack remembered the line: a depth-1 hit

    def test_decay(self):
        p = MSAProfiler(1, 4)
        for _ in range(8):
            p.observe(0)
        p.decay(0.5)
        assert p.total_accesses == pytest.approx(4.0)
        with pytest.raises(ValueError):
            p.decay(1.5)

    def test_stack_of_set(self):
        p = MSAProfiler(1, 4)
        for line in (0, 1, 2):
            p.observe(line)
        assert p.stack_of_set(0) == [2, 1, 0]


class TestMissCurveBridge:
    def test_from_profiler(self):
        p = MSAProfiler(2, 8)
        for i in range(200):
            p.observe(i % 20)
        curve = MissCurve.from_profiler(p, "x")
        assert curve.misses_at(0) == p.total_accesses
        for w in range(9):
            assert curve.misses_at(w) == pytest.approx(p.misses_at(w))
