"""Table II hardware overhead model — the paper's exact numbers."""

import pytest

from repro.config import ProfilerConfig, SystemConfig
from repro.profiling.overhead import profiler_overhead, system_overhead_fraction


class TestPaperNumbers:
    def test_partial_tags_54_kbit(self):
        """12 bits x 72 ways x 64 sampled sets = 54 kbit."""
        assert profiler_overhead().partial_tag_bits == 54 * 1024

    def test_lru_stack_27_kbit(self):
        """6-bit pointers x 72 ways x 64 sampled sets = 27 kbit."""
        assert profiler_overhead().lru_stack_bits == 27 * 1024

    def test_hit_counters_2_25_kbit(self):
        """72 counters x 32 bits = 2.25 kbit."""
        assert profiler_overhead().hit_counter_bits == 2304

    def test_total_83_25_kbit(self):
        assert profiler_overhead().total_kbits == pytest.approx(83.25)

    def test_head_tail_option(self):
        with_ht = profiler_overhead(head_tail_bits=12)
        assert with_ht.lru_stack_bits == (6 * 72 + 12) * 64

    def test_rows_in_table_order(self):
        rows = profiler_overhead().as_rows()
        assert [r[0] for r in rows] == [
            "Partial Tags",
            "LRU Stack Distance Implem.",
            "Hit Counters",
        ]
        assert [round(r[1], 2) for r in rows] == [54.0, 27.0, 2.25]


class TestSystemFraction:
    def test_headline_fraction_below_1_percent(self):
        """Paper claims ~0.4 % of the 16 MB L2 for all 8 profilers; the
        exact arithmetic of Table II gives ~0.5 % of the data capacity."""
        frac = system_overhead_fraction()
        assert 0.003 < frac < 0.006

    def test_scales_with_sampling(self):
        dense = SystemConfig(
            profiler=ProfilerConfig(set_sampling=1)
        ).validate()
        assert system_overhead_fraction(dense) > system_overhead_fraction()


class TestValidation:
    def test_sampling_cannot_exceed_sets(self):
        with pytest.raises(ValueError):
            profiler_overhead(num_sets=16, profiler=ProfilerConfig(set_sampling=32))
