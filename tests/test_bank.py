"""Bank-level vertical way partitioning and statistics."""

import pytest

from repro.cache.bank import CacheBank


def make_bank(sets=8, ways=4):
    return CacheBank(0, sets, ways)


class TestPartitionState:
    def test_share_all_allows_everyone(self):
        b = make_bank()
        assert b.candidates_for(3) == (0, 1, 2, 3)

    def test_assign_ways_by_count(self):
        b = make_bank()
        b.assign_ways({0: 3, 1: 1})
        assert b.candidates_for(0) == (0, 1, 2)
        assert b.candidates_for(1) == (3,)
        assert b.ways_owned_by(0) == 3

    def test_assign_ways_must_sum_to_associativity(self):
        b = make_bank()
        with pytest.raises(ValueError):
            b.assign_ways({0: 2, 1: 1})
        with pytest.raises(ValueError):
            b.assign_ways({0: 5, 1: -1})

    def test_set_way_owners_shared_way(self):
        b = make_bank()
        b.set_way_owners(
            [frozenset((0,)), frozenset((0, 1)), frozenset((1,)), frozenset()]
        )
        assert b.candidates_for(0) == (0, 1)
        assert b.candidates_for(1) == (1, 2)
        assert b.candidates_for(9) == ()

    def test_owner_list_length_checked(self):
        with pytest.raises(ValueError):
            make_bank().set_way_owners([None])

    def test_candidates_cache_invalidated_on_repartition(self):
        b = make_bank()
        assert b.candidates_for(0) == (0, 1, 2, 3)
        b.assign_ways({0: 1, 1: 3})
        assert b.candidates_for(0) == (0,)


class TestAccessPath:
    def test_fill_requires_owned_ways(self):
        b = make_bank()
        b.assign_ways({0: 4, 1: 0})
        with pytest.raises(PermissionError):
            b.fill(1, 123)

    def test_set_index_low_bits(self):
        b = make_bank(sets=8)
        assert b.set_index(0b10101) == 0b101

    def test_access_records_stats(self):
        b = make_bank()
        assert not b.access(0, 42)
        b.fill(0, 42)
        assert b.access(0, 42)
        assert b.stats.hits[0] == 1
        assert b.stats.misses[0] == 1
        assert b.stats.total_hits() == 1

    def test_isolation_between_cores(self):
        """A core thrashing its own ways never evicts the other core's."""
        b = make_bank(sets=1, ways=4)
        b.assign_ways({0: 2, 1: 2})
        b.fill(0, 8 * 1)
        b.fill(0, 8 * 2)
        for i in range(3, 30):
            b.fill(1, 8 * i)  # line numbers with same set index 0
        assert b.probe(8 * 1) and b.probe(8 * 2)

    def test_eviction_and_writeback_counters(self):
        b = make_bank(sets=1, ways=1)
        b.fill(0, 0, dirty=True)
        ev = b.fill(0, 8)
        assert ev is not None and ev.dirty
        assert b.stats.evictions == 1
        assert b.stats.writebacks == 1

    def test_occupancy_and_residents(self):
        b = make_bank(sets=4, ways=2)
        for line in (0, 1, 2):
            b.fill(0, line)
        assert b.occupancy() == 3
        assert sorted(b.resident_lines()) == [0, 1, 2]

    def test_invalidate(self):
        b = make_bank()
        b.fill(0, 5)
        assert b.invalidate(5) is not None
        assert b.invalidate(5) is None
        assert b.occupancy() == 0

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheBank(0, 6, 4)
