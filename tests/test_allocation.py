"""Mapping abstract decisions onto physical banks (paper Fig. 5)."""

import pytest

from repro.partitioning.allocation import (
    assign_center_banks,
    decision_to_partition_map,
    vector_to_private_map,
)
from repro.partitioning.bank_aware import BankAwareDecision, bank_aware_partition
from tests.test_partitioning import knee_curve


def sample_decision() -> BankAwareDecision:
    return BankAwareDecision(
        ways=(16, 24, 8, 8, 12, 4, 8, 48),
        center_banks=(1, 2, 0, 0, 0, 0, 0, 5),
        pairs=((4, 5),),
    )


class TestCenterAssignment:
    def test_every_center_bank_assigned_once(self):
        chosen = assign_center_banks(sample_decision(), 8, 16)
        banks = [b for lst in chosen.values() for b in lst]
        assert sorted(banks) == list(range(8, 16))

    def test_counts_match_decision(self):
        d = sample_decision()
        chosen = assign_center_banks(d, 8, 16)
        for core in range(8):
            assert len(chosen[core]) == d.center_banks[core]

    def test_proximity_preference(self):
        """A single center-bank core gets one of the centers nearest it."""
        d = BankAwareDecision(
            ways=(16,) + (8,) * 6 + (64,),
            center_banks=(1,) + (0,) * 6 + (7,),
            pairs=(),
        )
        chosen = assign_center_banks(d, 8, 16)
        # core 0's nearest centers are the low-numbered ones
        assert chosen[0][0] in (8, 9, 10)

    def test_count_mismatch_rejected(self):
        d = BankAwareDecision(
            ways=(16,) + (8,) * 7, center_banks=(1,) + (0,) * 7, pairs=()
        )
        with pytest.raises(ValueError):
            assign_center_banks(d, 8, 16)


class TestDecisionToMap:
    def test_valid_and_complete(self):
        pmap = decision_to_partition_map(sample_decision())
        pmap.validate(16, 8)
        assert pmap.way_vector() == {
            0: 16, 1: 24, 2: 8, 3: 8, 4: 12, 5: 4, 6: 8, 7: 48,
        }

    def test_local_bank_always_included_for_unshrunk_cores(self):
        pmap = decision_to_partition_map(sample_decision())
        for core in (0, 1, 2, 3, 6, 7):
            assert core in pmap[core].banks

    def test_pair_layout(self):
        """Core 4 (12 ways) keeps its bank whole + annexes the top 4 ways of
        core 5's bank as level 2; core 5 keeps the low 4 ways of its own."""
        pmap = decision_to_partition_map(sample_decision())
        p4, p5 = pmap[4], pmap[5]
        assert p4.level1[0].bank == 4
        assert p4.level1[0].num_ways == 8
        assert p4.level2 is not None
        assert p4.level2.bank == 5
        assert p4.level2.ways == (4, 5, 6, 7)
        assert p5.level1[0].bank == 5
        assert p5.level1[0].ways == (0, 1, 2, 3)
        assert p5.level2 is None

    def test_even_pair_split_means_no_sharing(self):
        d = BankAwareDecision(
            ways=(8, 8) + (8,) * 4 + (40, 40),
            center_banks=(0, 0, 0, 0, 0, 0, 4, 4),
            pairs=((0, 1),),
        )
        pmap = decision_to_partition_map(d)
        assert pmap[0].level2 is None
        assert pmap[1].level2 is None

    def test_real_decisions_map_cleanly(self):
        curves = [knee_curve(k) for k in (45, 3, 12, 4, 60, 6, 25, 10)]
        decision = bank_aware_partition(curves)
        pmap = decision_to_partition_map(decision)
        pmap.validate(16, 8)
        assert sum(pmap.way_vector().values()) == 128


class TestPrivateVectorMap:
    def test_contiguous_layout(self):
        ways = [16] * 8
        pmap = vector_to_private_map(ways, num_banks=16, bank_ways=8)
        pmap.validate(16, 8)
        assert pmap[0].banks == (0, 1)
        assert pmap[7].banks == (14, 15)

    def test_straddling_fractions(self):
        ways = [12, 4, 16, 16, 16, 16, 16, 32]
        pmap = vector_to_private_map(ways, num_banks=16, bank_ways=8)
        pmap.validate(16, 8)
        assert pmap.way_vector() == {i: w for i, w in enumerate(ways)}

    def test_wrong_total_rejected(self):
        with pytest.raises(ValueError):
            vector_to_private_map([8] * 8, num_banks=16, bank_ways=8)

    def test_zero_way_core_rejected(self):
        with pytest.raises(ValueError):
            vector_to_private_map([0, 128] + [0] * 6, num_banks=16, bank_ways=8)
