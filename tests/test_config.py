"""Configuration validation and the paper's Table I values."""

import pytest

from repro.config import (
    L1Config,
    L2Config,
    ProfilerConfig,
    SystemConfig,
    baseline_config,
    scaled_config,
)


class TestBaseline:
    def test_paper_l2_geometry(self):
        cfg = baseline_config()
        assert cfg.l2.num_banks == 16
        assert cfg.l2.bank_ways == 8
        assert cfg.l2.sets_per_bank == 2048
        assert cfg.l2.total_size_bytes == 16 * 1024 * 1024
        assert cfg.l2.total_ways == 128

    def test_paper_bank_size_is_1mb(self):
        assert baseline_config().l2.bank_size_bytes == 1024 * 1024

    def test_paper_l1(self):
        l1 = baseline_config().l1
        assert l1.size_bytes == 64 * 1024
        assert l1.ways == 2
        assert l1.access_cycles == 3
        assert l1.num_sets == 512

    def test_paper_memory(self):
        mem = baseline_config().memory
        assert mem.latency_cycles == 260
        assert mem.bandwidth_gbs == 64.0

    def test_paper_latency_range(self):
        cfg = baseline_config()
        assert cfg.l2.min_latency == 10
        assert cfg.l2.max_latency == 70

    def test_paper_epoch(self):
        assert baseline_config().epoch_cycles == 100_000_000

    def test_max_ways_per_core_is_9_16ths(self):
        cfg = baseline_config()
        assert cfg.max_ways_per_core == 72
        assert cfg.max_ways_per_core == 128 * 9 // 16


class TestValidation:
    def test_l1_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            L1Config(size_bytes=48 * 1024, ways=1).validate()

    def test_l2_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            L2Config(sets_per_bank=100).validate()

    def test_l2_rejects_odd_bank_count(self):
        with pytest.raises(ValueError):
            L2Config(num_banks=15).validate()

    def test_l2_rejects_inverted_latency(self):
        with pytest.raises(ValueError):
            L2Config(min_latency=80, max_latency=70).validate()

    def test_system_needs_local_bank_per_core(self):
        cfg = SystemConfig(num_cores=20)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_profiler_cap_fraction_bounds(self):
        with pytest.raises(ValueError):
            ProfilerConfig(max_capacity_num=17).validate()

    def test_profiler_sampling_positive(self):
        with pytest.raises(ValueError):
            ProfilerConfig(set_sampling=0).validate()


class TestScaled:
    def test_scaled_preserves_structure(self):
        cfg = scaled_config(8)
        assert cfg.l2.num_banks == 16
        assert cfg.l2.bank_ways == 8
        assert cfg.l2.sets_per_bank == 256
        assert cfg.l2.total_ways == 128
        assert cfg.max_ways_per_core == 72

    def test_scaled_sampling_keeps_monitored_sets(self):
        for scale in (1, 2, 8):
            cfg = scaled_config(scale)
            assert cfg.l2.sets_per_bank // cfg.profiler.set_sampling == 64

    def test_scale_one_is_full_machine(self):
        assert scaled_config(1).l2.sets_per_bank == 2048

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_config(7)

    def test_frozen(self):
        cfg = scaled_config()
        with pytest.raises(Exception):
            cfg.num_cores = 4  # type: ignore[misc]
