"""Result containers: CoreResult/SystemResult aggregate arithmetic."""

import pytest

from repro.sim.stats import CoreResult, EpochRecord, SystemResult


def core(idx=0, instructions=1000, cycles=2000.0, accesses=100, misses=25):
    return CoreResult(idx, f"w{idx}", instructions, cycles, accesses, misses)


class TestCoreResult:
    def test_cpi(self):
        assert core().cpi == pytest.approx(2.0)

    def test_miss_rate(self):
        assert core().miss_rate == pytest.approx(0.25)

    def test_mpki(self):
        assert core().mpki == pytest.approx(25.0)

    def test_zero_division_guards(self):
        c = CoreResult(0, "idle", 0, 0.0, 0, 0)
        assert c.cpi == 0.0
        assert c.miss_rate == 0.0
        assert c.mpki == 0.0


class TestSystemResult:
    def make(self):
        r = SystemResult("bank-aware")
        r.cores = [core(0), core(1, instructions=500, cycles=2000.0, misses=50)]
        return r

    def test_totals(self):
        r = self.make()
        assert r.total_instructions == 1500
        assert r.total_accesses == 200
        assert r.total_misses == 75
        assert r.miss_rate == pytest.approx(0.375)

    def test_mean_cpi_equal_weight(self):
        r = self.make()
        # core0 CPI 2.0, core1 CPI 4.0 -> arithmetic mean 3.0
        assert r.mean_cpi == pytest.approx(3.0)

    def test_empty_system(self):
        r = SystemResult("no-partitions")
        assert r.mean_cpi == 0.0
        assert r.miss_rate == 0.0

    def test_core_lookup(self):
        r = self.make()
        assert r.core(1).workload == "w1"


class TestEpochRecord:
    def test_fields(self):
        rec = EpochRecord(10.0, (16,) * 8, (1,) * 8, ((0, 1),))
        assert sum(rec.ways) == 128
        assert rec.pairs == ((0, 1),)

    def test_optional_structure(self):
        rec = EpochRecord(5.0, (64, 64))
        assert rec.center_banks is None
        assert rec.pairs is None
