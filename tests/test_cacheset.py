"""Way-partitioned cache set behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.cacheset import CacheSet, Eviction


class TestBasics:
    def test_miss_then_hit(self):
        s = CacheSet(2)
        assert s.lookup(10) is None
        s.insert(10, 0, (0, 1))
        assert s.lookup(10) is not None
        assert s.probe(10) is not None

    def test_probe_does_not_touch(self):
        s = CacheSet(2)
        s.insert(1, 0, (0, 1))
        s.insert(2, 0, (0, 1))
        s.probe(1)  # must NOT refresh recency
        ev = s.insert(3, 0, (0, 1))
        assert ev.tag == 1

    def test_lru_eviction_order(self):
        s = CacheSet(2)
        s.insert(1, 0, (0, 1))
        s.insert(2, 0, (0, 1))
        s.lookup(1)
        ev = s.insert(3, 0, (0, 1))
        assert ev == Eviction(2, False, 0)

    def test_duplicate_insert_rejected(self):
        s = CacheSet(2)
        s.insert(1, 0, (0, 1))
        with pytest.raises(ValueError):
            s.insert(1, 0, (0, 1))

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            CacheSet(2).insert(1, 0, ())

    def test_occupancy(self):
        s = CacheSet(4)
        for t in range(3):
            s.insert(t, 0, (0, 1, 2, 3))
        assert s.occupancy() == 3
        assert sorted(s.resident_tags()) == [0, 1, 2]


class TestDirty:
    def test_write_insert_marks_dirty(self):
        s = CacheSet(1)
        s.insert(1, 0, (0,), dirty=True)
        ev = s.insert(2, 0, (0,))
        assert ev.dirty

    def test_write_hit_marks_dirty(self):
        s = CacheSet(1)
        s.insert(1, 0, (0,))
        s.lookup(1, is_write=True)
        assert s.insert(2, 0, (0,)).dirty

    def test_set_dirty_explicit(self):
        s = CacheSet(1)
        s.insert(1, 0, (0,))
        s.set_dirty(1)
        assert s.invalidate(1).dirty
        with pytest.raises(KeyError):
            s.set_dirty(99)


class TestInvalidate:
    def test_invalidate_removes(self):
        s = CacheSet(2)
        s.insert(1, 0, (0, 1))
        ev = s.invalidate(1)
        assert ev.tag == 1
        assert s.lookup(1) is None
        assert s.occupancy() == 0

    def test_invalidate_absent_is_none(self):
        assert CacheSet(2).invalidate(5) is None

    def test_invalidated_way_reused_first(self):
        s = CacheSet(2)
        s.insert(1, 0, (0, 1))
        s.insert(2, 0, (0, 1))
        s.invalidate(1)
        assert s.insert(3, 0, (0, 1)) is None  # reuses the freed way


class TestInvalidateNotifiesPolicy:
    """A pluggable policy must see invalidations, or its recency state
    keeps pointing victims at live lines (the stale-stamp bug)."""

    @pytest.mark.parametrize("policy", ["plru", "random"])
    def test_policy_sees_the_freed_way(self, policy):
        s = CacheSet(4, policy=policy)
        for tag in range(4):
            s.insert(tag, 0, (0, 1, 2, 3))
        way = s.probe(2)
        s.invalidate(2)
        # refill lands on the freed way, not on a victim of a full set
        assert s.insert(9, 0, (0, 1, 2, 3)) is None
        assert s.probe(9) == way

    def test_plru_victimises_invalidated_way_when_full(self):
        s = CacheSet(4, policy="plru")
        for tag in range(4):
            s.insert(tag, 0, (0, 1, 2, 3))
        victim_way = s.probe(1)
        s.invalidate(1)
        s.insert(8, 0, (0, 1, 2, 3))  # takes the empty slot
        # the tree was aimed at the freed way, so the *next* fill after it
        # is refilled must not immediately evict the fresh line
        s.lookup(8)
        ev = s.insert(9, 0, (0, 1, 2, 3))
        assert ev is None or ev.tag != 8

    def test_plru_tree_aims_at_invalidated_way(self):
        from repro.cache.replacement import TreePLRUPolicy

        p = TreePLRUPolicy(4)
        for w in range(4):
            p.touch(w)
        p.invalidate(1)
        assert p.victim(range(4)) == 1  # freed slot is the next victim

    def test_lru_policy_clears_stamp(self):
        from repro.cache.replacement import LRUPolicy

        p = LRUPolicy(4)
        for w in range(4):
            p.touch(w)
        p.invalidate(3)
        assert p.victim(range(4)) == 3
        assert p.recency_order()[-1] == 3


class TestPartitioning:
    def test_victim_only_from_candidates(self):
        """The paper's modified LRU: core B's fill may not evict core A's
        line when B's candidate ways exclude it."""
        s = CacheSet(4)
        s.insert(100, 0, (0, 1))  # core 0 owns ways 0-1
        s.insert(101, 0, (0, 1))
        s.insert(200, 1, (2, 3))  # core 1 owns ways 2-3
        s.insert(201, 1, (2, 3))
        ev = s.insert(202, 1, (2, 3))
        assert ev.owner == 1
        assert ev.tag in (200, 201)
        assert s.probe(100) is not None and s.probe(101) is not None

    def test_owner_tracking(self):
        s = CacheSet(2)
        s.insert(1, 7, (0, 1))
        assert s.owner_of(1) == 7
        assert s.ways_of_core(7) == [s.probe(1)]
        with pytest.raises(KeyError):
            s.owner_of(123)

    def test_hit_allowed_on_any_way(self):
        """Lookups may hit outside the requester's ways (paper: only
        replacement is restricted)."""
        s = CacheSet(2)
        s.insert(1, 0, (0,))
        assert s.lookup(1) is not None  # any core may read it


class TestAgainstReferenceModel:
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.booleans()),
            min_size=1,
            max_size=120,
        )
    )
    def test_full_set_matches_lru_reference(self, ops):
        """Un-partitioned CacheSet == textbook LRU list, access by access."""
        ways = 4
        s = CacheSet(ways)
        ref: list[int] = []  # MRU..LRU
        for tag, _w in ops:
            hit_model = tag in ref
            hit_real = s.lookup(tag) is not None
            assert hit_real == hit_model
            if hit_model:
                ref.remove(tag)
            else:
                ev = s.insert(tag, 0, tuple(range(ways)))
                if len(ref) == ways:
                    assert ev is not None and ev.tag == ref[-1]
                    ref.pop()
                else:
                    assert ev is None
            ref.insert(0, tag)

    def test_plru_policy_plugs_in(self):
        s = CacheSet(4, policy="plru")
        for t in range(6):
            s.lookup(t)
            if s.probe(t) is None:
                s.insert(t, 0, (0, 1, 2, 3))
        assert s.occupancy() == 4
