"""Miss curves and marginal utility (paper Section III.C)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.profiling.miss_curve import MissCurve


def linear_curve(total=100.0, max_ways=10, floor=20.0) -> MissCurve:
    """Misses fall linearly from total to floor over max_ways."""
    misses = np.linspace(total, floor, max_ways + 1)
    return MissCurve("lin", misses, total)


class TestConstruction:
    def test_basic(self):
        c = linear_curve()
        assert c.max_ways == 10
        assert c.misses_at(0) == 100.0
        assert c.misses_at(10) == 20.0

    def test_clamps_beyond_max(self):
        c = linear_curve()
        assert c.misses_at(999) == 20.0

    def test_rejects_increasing(self):
        with pytest.raises(ValueError):
            MissCurve("bad", np.array([5.0, 6.0]), 10.0)

    def test_rejects_total_below_size0(self):
        with pytest.raises(ValueError):
            MissCurve("bad", np.array([10.0, 5.0]), 3.0)

    def test_rejects_negative_ways(self):
        with pytest.raises(ValueError):
            linear_curve().misses_at(-1)

    def test_from_histogram(self):
        hist = np.array([50.0, 30.0, 20.0])  # depth1, depth2, miss
        c = MissCurve.from_histogram("h", hist)
        assert c.total_accesses == 100.0
        assert c.misses_at(0) == 100.0
        assert c.misses_at(1) == 50.0
        assert c.misses_at(2) == 20.0


class TestMarginalUtility:
    def test_definition(self):
        """MU(n) = (Miss(c) - Miss(c+n)) / n (the paper's equation)."""
        c = linear_curve()  # 8 misses saved per way
        assert c.marginal_utility(0, 1) == pytest.approx(8.0)
        assert c.marginal_utility(2, 4) == pytest.approx(8.0)

    def test_zero_beyond_saturation(self):
        c = linear_curve()
        assert c.marginal_utility(10, 5) == 0.0

    def test_vectorised_matches_scalar(self):
        c = linear_curve()
        mus = c.marginal_utilities(3, 7)
        for n in range(1, 8):
            assert mus[n - 1] == pytest.approx(c.marginal_utility(3, n))

    def test_rejects_nonpositive_extra(self):
        with pytest.raises(ValueError):
            linear_curve().marginal_utility(0, 0)


class TestLookahead:
    def test_best_mu_sees_past_plateau(self):
        """A curve flat for 4 ways then cliff: single-way MU is 0 but the
        lookahead must find the cliff (the UCP insight)."""
        misses = np.array([100.0, 100, 100, 100, 100, 10, 10, 10])
        c = MissCurve("cliff", misses, 100.0)
        mu1 = c.marginal_utility(0, 1)
        assert mu1 == 0.0
        best_mu, best_n = c.best_marginal_utility(0, 7)
        assert best_n == 5
        assert best_mu == pytest.approx(90.0 / 5)

    def test_prefers_smallest_allocation_at_ties(self):
        misses = np.array([100.0, 50.0, 0.0])
        c = MissCurve("t", misses, 100.0)
        _, n = c.best_marginal_utility(0, 2)
        assert n == 1  # 50/way either way; smaller grant wins


class TestRatios:
    def test_miss_ratio(self):
        c = linear_curve()
        assert c.miss_ratio_at(0) == pytest.approx(1.0)
        assert c.miss_ratio_at(10) == pytest.approx(0.2)

    def test_zero_access_curve(self):
        c = MissCurve("z", np.zeros(4), 0.0)
        assert c.miss_ratio_at(2) == 0.0
        assert np.all(c.miss_ratio_curve() == 0.0)

    @given(st.lists(st.floats(0.0, 1000.0), min_size=2, max_size=40))
    def test_histogram_round_trip_monotonic(self, hist):
        c = MissCurve.from_histogram("h", np.array(hist))
        curve = c.miss_ratio_curve()
        assert np.all(np.diff(curve) <= 1e-9)
        assert curve[0] == pytest.approx(1.0) or c.total_accesses == 0


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        from repro.profiling.miss_curve import load_curves, save_curves

        a = linear_curve()
        b = MissCurve("b", np.array([10.0, 4.0, 1.0]), 12.0)
        path = tmp_path / "curves.npz"
        save_curves(path, {"lin": a, "b": b})
        loaded = load_curves(path)
        assert set(loaded) == {"lin", "b"}
        assert np.allclose(loaded["lin"].misses, a.misses)
        assert loaded["b"].total_accesses == 12.0
        assert loaded["b"].name == "b"

    def test_empty_set(self, tmp_path):
        from repro.profiling.miss_curve import load_curves, save_curves

        path = tmp_path / "none.npz"
        save_curves(path, {})
        assert load_curves(path) == {}
