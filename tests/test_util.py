"""Utility helpers: bit ops, RNG streams, statistics, floorplan geometry."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import hash_fold, ilog2, is_pow2, line_address
from repro.util.floorplan import (
    bank_distance,
    bank_positions,
    center_bank_positions,
    distance_ordered_banks,
)
from repro.util.rng import rng_stream
from repro.util.stats import geometric_mean, relative, safe_div


class TestBits:
    def test_is_pow2(self):
        assert all(is_pow2(1 << k) for k in range(20))
        assert not any(is_pow2(x) for x in (0, -2, 3, 6, 12, 100))

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(2048) == 11
        with pytest.raises(ValueError):
            ilog2(3)

    def test_line_address_64b(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 1
        assert line_address(64 * 1000 + 17) == 1000

    @given(st.integers(min_value=0, max_value=2**60), st.integers(1, 20))
    def test_hash_fold_in_range(self, value, bits):
        assert 0 <= hash_fold(value, bits) < (1 << bits)

    def test_hash_fold_deterministic(self):
        assert hash_fold(123456789, 12) == hash_fold(123456789, 12)

    def test_hash_fold_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            hash_fold(1, 0)


class TestRng:
    def test_same_key_same_stream(self):
        a = rng_stream(7, "x").integers(0, 1000, 10)
        b = rng_stream(7, "x").integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = rng_stream(7, "x").integers(0, 1 << 30, 20)
        b = rng_stream(7, "y").integers(0, 1 << 30, 20)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_stream(1, "x").integers(0, 1 << 30, 20)
        b = rng_stream(2, "x").integers(0, 1 << 30, 20)
        assert not np.array_equal(a, b)


class TestStats:
    def test_safe_div(self):
        assert safe_div(6, 3) == 2
        assert safe_div(6, 0) == 0.0
        assert safe_div(6, 0, default=1.5) == 1.5

    def test_relative(self):
        assert relative(3, 6) == 0.5
        assert relative(3, 0) == 1.0

    def test_geometric_mean_known(self):
        assert math.isclose(geometric_mean([1, 4]), 2.0)
        assert math.isclose(geometric_mean([2, 2, 2]), 2.0)

    def test_geometric_mean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    def test_geometric_mean_between_min_and_max(self, vals):
        gm = geometric_mean(vals)
        assert min(vals) - 1e-9 <= gm <= max(vals) + 1e-9


class TestFloorplan:
    def test_center_positions_in_middle_half(self):
        pos = center_bank_positions(8, 8)
        assert len(pos) == 8
        assert min(pos) == pytest.approx(7 * 0.25)
        assert max(pos) == pytest.approx(7 * 0.75)

    def test_single_center_in_middle(self):
        assert center_bank_positions(8, 1) == [3.5]

    def test_no_centers(self):
        assert center_bank_positions(8, 0) == []

    def test_bank_positions_locals_at_cores(self):
        pos = bank_positions(8, 16)
        assert pos[:8] == [float(i) for i in range(8)]

    def test_distance_order_starts_local(self):
        for core in range(8):
            order = distance_ordered_banks(core, 8, 16)
            assert order[0] == core
            assert sorted(order) == list(range(16))

    def test_distance_order_is_monotonic(self):
        for core in range(8):
            order = distance_ordered_banks(core, 8, 16)
            dists = [bank_distance(core, b, 8, 16) for b in order]
            assert dists == sorted(dists)

    def test_edge_core_reaches_far_local_last(self):
        order = distance_ordered_banks(0, 8, 16)
        assert order[-1] == 7  # the Local bank next to the far core
