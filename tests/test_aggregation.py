"""Bank-aggregation scheme models (paper Fig. 4 / Section III.B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.aggregation import (
    SCHEMES,
    AddressHashAggregation,
    CascadeAggregation,
    IdealLRUAggregation,
    ParallelAggregation,
    make_aggregation,
)
from repro.workloads import generate_trace, get


class TestCascade:
    def test_is_exactly_global_lru(self):
        """Cascade chains banks head-to-tail: its hits/misses must equal a
        monolithic (banks*ways)-way LRU on any access sequence."""
        cascade = CascadeAggregation(4, 2, 8)
        ideal = IdealLRUAggregation(4, 2, 8)
        trace = generate_trace(get("vpr"), 5000, 8, seed=1).lines.tolist()
        for line in trace:
            assert cascade.access(line) == ideal.access(line)
        assert cascade.stats.misses == ideal.stats.misses

    def test_migrations_counted_on_deep_hit(self):
        c = CascadeAggregation(2, 1, 1)  # 2 banks x 1 way, single set
        c.access(10)
        c.access(11)  # 10 shifts into bank 1: 1 migration
        assert c.stats.migrations == 1
        c.access(10)  # hit in bank 1: promote + demote = 2 moves
        assert c.stats.migrations == 3

    def test_recency_order_exposed(self):
        c = CascadeAggregation(2, 2, 1)
        for line in (1, 2, 3):
            c.access(line)
        assert c.recency_order(0) == [3, 2, 1]


class TestHashAndParallel:
    def test_hash_no_migrations(self):
        h = AddressHashAggregation(4, 2, 8)
        for line in generate_trace(get("vpr"), 3000, 8, seed=2).lines.tolist():
            h.access(line)
        assert h.stats.migrations == 0

    def test_hash_bank_is_stable(self):
        h = AddressHashAggregation(4, 2, 8)
        assert h.bank_of(12345) == h.bank_of(12345)
        assert 0 <= h.bank_of(12345) < 4

    def test_parallel_probes_all_banks(self):
        p = ParallelAggregation(4, 2, 8)
        p.access(1)
        p.access(1)
        assert p.stats.directory_probes == 8  # 4 banks x 2 accesses

    def test_parallel_any_bank_placement(self):
        p = ParallelAggregation(4, 1, 1)
        for line in range(4):
            p.access(line)
        # round-robin spread all four lines over the four banks
        assert all(p.access(line) for line in range(4))

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=150))
    @settings(max_examples=30)
    def test_all_schemes_agree_when_single_bank(self, lines):
        """With one bank, every scheme degenerates to plain LRU."""
        aggs = [make_aggregation(n, 1, 4, 4) for n in SCHEMES]
        for line in lines:
            results = {agg.access(line) for agg in aggs}
            assert len(results) == 1


class TestOrderings:
    def test_migration_ordering_cascade_worst(self):
        """The paper's qualitative claim: Cascade migration rate is
        prohibitive, Hash/Parallel are ~zero."""
        trace = generate_trace(get("bzip2"), 20_000, 32, seed=3).lines.tolist()
        rates = {}
        for name in ("cascade", "hash", "parallel"):
            agg = make_aggregation(name, 4, 8, 32)
            for line in trace:
                agg.access(line)
            rates[name] = agg.stats.migrations_per_access
        assert rates["cascade"] > 0.5
        assert rates["hash"] == 0.0
        assert rates["parallel"] == 0.0

    def test_fidelity_ordering(self):
        """Cascade == ideal; Hash/Parallel within a modest degradation."""
        trace = generate_trace(get("twolf"), 20_000, 32, seed=4).lines.tolist()
        miss = {}
        for name in SCHEMES:
            agg = make_aggregation(name, 4, 8, 32)
            for line in trace:
                agg.access(line)
            miss[name] = agg.stats.miss_rate
        assert miss["cascade"] == pytest.approx(miss["ideal"])
        assert miss["hash"] <= miss["ideal"] * 1.35
        assert miss["parallel"] <= miss["ideal"] * 1.35


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_aggregation("quantum", 2, 2, 2)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CascadeAggregation(0, 2, 2)
        with pytest.raises(ValueError):
            CascadeAggregation(2, 2, 3)
