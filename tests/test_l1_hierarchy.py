"""L1 cache and the composed cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.l1 import L1Cache
from repro.config import L1Config, scaled_config


class TestL1:
    def test_geometry_from_config(self):
        l1 = L1Cache()
        assert l1.num_sets == 512
        assert l1.ways == 2

    def test_miss_allocates(self):
        l1 = L1Cache(L1Config(size_bytes=1024, ways=2))
        hit, ev = l1.access(5)
        assert not hit and ev is None
        hit, _ = l1.access(5)
        assert hit

    def test_dirty_writeback_on_eviction(self):
        l1 = L1Cache(L1Config(size_bytes=128, ways=1))  # 2 sets
        l1.access(0, is_write=True)
        _, ev = l1.access(2)  # same set 0, evicts line 0
        assert ev is not None and ev.dirty
        assert l1.stats.writebacks == 1

    def test_stats(self):
        l1 = L1Cache(L1Config(size_bytes=1024, ways=2))
        l1.access(1)
        l1.access(1)
        l1.access(2)
        assert l1.stats.accesses == 3
        assert l1.stats.hits == 1
        assert l1.stats.miss_rate == pytest.approx(2 / 3)

    def test_invalidate(self):
        l1 = L1Cache(L1Config(size_bytes=1024, ways=2))
        l1.access(9, is_write=True)
        ev = l1.invalidate(9)
        assert ev is not None and ev.dirty
        assert not l1.contains(9)


class TestHierarchy:
    def make(self):
        cfg = scaled_config(8)
        return CacheHierarchy(cfg)

    def test_l1_filters_l2(self):
        h = self.make()
        assert h.access(0, 0x1000).level == "memory"
        assert h.access(0, 0x1000).level == "l1"
        assert h.l2.stats.core_accesses(0) == 1  # second access never left L1

    def test_l2_hit_after_l1_eviction(self):
        h = self.make()
        h.access(0, 0)
        # walk far past L1 capacity (1024 lines) within the same L1 set
        for i in range(1, 4):
            h.access(0, i * h.l1s[0].num_sets * 64)
        r = h.access(0, 0)
        assert r.level == "l2"

    def test_core_bounds_checked(self):
        h = self.make()
        with pytest.raises(IndexError):
            h.access(99, 0)

    def test_dirty_l1_victim_updates_l2(self):
        h = self.make()
        h.access(0, 0, is_write=True)
        stride = h.l1s[0].num_sets * 64
        h.access(0, stride)
        h.access(0, 2 * stride)  # evicts dirty line 0 from 2-way L1 set
        bank = h.l2.bank_of(0)
        assert bank is not None  # written back into the L2

    def test_per_core_l1s_independent(self):
        h = self.make()
        h.access(0, 0x2000)
        assert h.access(1, 0x2000 + (1 << 40)).level == "memory"
        assert h.l1s[0].stats.accesses == 1
        assert h.l1s[1].stats.accesses == 1
